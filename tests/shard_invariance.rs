//! Thread-count invariance goldens for the sharded engine: the
//! `shard_workers` knob must never reach a byte of output. A paper-scale
//! run and a canonical faulty run are executed at 1/2/4/8 workers and the
//! full `RunReport` JSON compared against the pinned serial path — the
//! composed run is a pure function of (config, seed), not of how many
//! threads happened to carry it.

use cloudburst_repro::chaos::{CrashLaw, FaultProfile, RetryPolicy};
use cloudburst_repro::core::config::EcSiteConfig;
use cloudburst_repro::core::{
    run_experiment, run_experiment_detailed, ExperimentConfig, SchedulerKind,
};
use cloudburst_repro::workload::{ArrivalConfig, SizeBucket};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn report_json_at(cfg: &ExperimentConfig, workers: usize) -> String {
    let mut cfg = cfg.clone();
    cfg.shard_workers = Some(workers);
    serde_json::to_string(&run_experiment(&cfg)).expect("RunReport serializes")
}

fn assert_worker_count_invariant(cfg: &ExperimentConfig, label: &str) {
    let reference = report_json_at(cfg, 1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            report_json_at(cfg, *workers),
            reference,
            "{label}: {workers} workers diverged from the serial path"
        );
    }
}

#[test]
fn paper_run_is_worker_count_invariant() {
    let cfg = ExperimentConfig::paper(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, 22);
    assert_worker_count_invariant(&cfg, "paper config");
}

#[test]
fn faulty_run_is_worker_count_invariant() {
    // The chaos scenario from `chaos_golden.rs`: EC crashes, a scripted
    // blackout, payload losses and execution failures under a tight retry
    // budget — recovery paths interleave with every decision point, so
    // this is the run most likely to betray a barrier placed wrongly.
    let cfg = ExperimentConfig {
        seed: 31,
        scheduler: SchedulerKind::OrderPreserving,
        arrivals: ArrivalConfig {
            n_batches: 3,
            jobs_per_batch: 6.0,
            bucket: SizeBucket::Uniform,
            ..ArrivalConfig::default()
        },
        n_ic: 2, // starve the IC so the scheduler actually bursts
        training_docs: 150,
        faults: Some(
            FaultProfile {
                ec_crash: Some(CrashLaw {
                    mean_uptime_secs: 600.0,
                    mean_downtime_secs: 120.0,
                    max_faults_per_machine: 2,
                }),
                transfer_loss_prob: 0.2,
                exec_failure_prob: 0.15,
                retry: RetryPolicy {
                    base_backoff_secs: 5.0,
                    backoff_cap_secs: 30.0,
                    max_transfer_retries: 2,
                    max_exec_retries: 3,
                    timeout_factor: 2.0,
                    min_timeout_secs: 20.0,
                },
                ..FaultProfile::dormant()
            }
            .with_blackout(300.0, 1500.0),
        ),
        ..ExperimentConfig::default()
    };
    assert_worker_count_invariant(&cfg, "faulty config");
}

#[test]
fn starved_shard_site_composes_identically() {
    // Shard-starvation edge case: a single batch against two EC sites.
    // Site selection is per-batch (least loaded, ties to the lowest
    // index), so every burst lands on site 0 and site 1's shard holds
    // zero jobs for the whole run — the empty shard must contribute
    // nothing but also perturb nothing, at any worker count.
    let cfg = ExperimentConfig {
        seed: 9,
        scheduler: SchedulerKind::Greedy,
        arrivals: ArrivalConfig {
            n_batches: 1,
            jobs_per_batch: 10.0,
            bucket: SizeBucket::Uniform,
            ..ArrivalConfig::default()
        },
        n_ic: 2, // starve the IC so the scheduler actually bursts
        training_docs: 150,
        extra_ec_sites: vec![EcSiteConfig {
            n_machines: 2,
            speed: 1.5,
            upload_model: ExperimentConfig::default().upload_model,
            download_model: ExperimentConfig::default().download_model,
            price: None,
        }],
        ..ExperimentConfig::default()
    };

    // Pin the premise: the run bursts, and all of it goes to site 0.
    let mut serial = cfg.clone();
    serial.shard_workers = Some(1);
    let (report, world) = run_experiment_detailed(&serial);
    assert!(report.burst_ratio > 0.0, "2 IC machines should force bursting");
    assert!(world.ec_cloud(0).completed() > 0, "site 0 should carry the batch");
    assert_eq!(
        world.ec_cloud(1).completed(),
        0,
        "single-batch run should leave site 1 starved (site choice is per-batch)"
    );

    assert_worker_count_invariant(&cfg, "starved-site config");
}

//! Qualitative reproduction checks: the paper's headline comparisons must
//! hold in direction (not absolute value) on paper-scale runs.
//!
//! These mirror the `repro` harness shape checks but run as part of
//! `cargo test`, so a regression in any scheduler or substrate that flips a
//! paper conclusion fails CI.

use cloudburst_repro::core::runner::mean_of;
use cloudburst_repro::core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_repro::workload::SizeBucket;

// Chosen so every qualitative comparison holds with margin under the
// in-tree PRNG stream (see examples/seedscan.rs for the scan that picked
// them); the shapes themselves are seed-robust, the margins are not.
const SEEDS: [u64; 3] = [22, 44, 49];

fn mean_reports(
    kind: SchedulerKind,
    bucket: SizeBucket,
    highvar: bool,
) -> Vec<cloudburst_repro::sla::RunReport> {
    SEEDS
        .iter()
        .map(|&seed| {
            let cfg = if highvar {
                ExperimentConfig::paper_high_variation(kind, bucket, seed)
            } else {
                ExperimentConfig::paper(kind, bucket, seed)
            };
            run_experiment(&cfg)
        })
        .collect()
}

#[test]
fn cloud_bursting_beats_ic_only_on_makespan() {
    // Fig. 6: ~10 % improvement.
    for bucket in SizeBucket::ALL {
        let ic = mean_of(&mean_reports(SchedulerKind::IcOnly, bucket, false), |r| r.makespan_secs);
        let greedy =
            mean_of(&mean_reports(SchedulerKind::Greedy, bucket, false), |r| r.makespan_secs);
        let op = mean_of(&mean_reports(SchedulerKind::OrderPreserving, bucket, false), |r| {
            r.makespan_secs
        });
        assert!(
            greedy.min(op) < ic * 0.98,
            "{}: bursting ({greedy:.0}/{op:.0}) must beat ic-only ({ic:.0})",
            bucket.label()
        );
    }
}

#[test]
fn op_delivers_more_ordered_data_under_high_variation() {
    // Fig. 9: the Order-Preserving scheduler's OO metric dominates Greedy's
    // for large jobs on a volatile pipe.
    let g = mean_of(
        &mean_reports(SchedulerKind::Greedy, SizeBucket::LargeBiased, true),
        |r| r.mean_ordered_bytes(),
    );
    let o = mean_of(
        &mean_reports(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, true),
        |r| r.mean_ordered_bytes(),
    );
    assert!(o > g, "op ordered availability {o:.3e} must exceed greedy {g:.3e}");
}

#[test]
fn greedy_waits_are_worse_for_large_jobs() {
    // Fig. 8: Greedy's high peaks (press waits) outweigh Op's.
    let g = mean_of(&mean_reports(SchedulerKind::Greedy, SizeBucket::LargeBiased, false), |r| {
        r.peaks(120.0).1
    });
    let o = mean_of(
        &mean_reports(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, false),
        |r| r.peaks(120.0).1,
    );
    assert!(
        o <= g * 1.15,
        "op peak magnitude {o:.0} should not exceed greedy {g:.0} meaningfully"
    );
}

#[test]
fn op_shows_more_valleys_than_greedy_on_uniform() {
    // Fig. 7's reading: valleys (early output) dominate under Op.
    let g = mean_of(&mean_reports(SchedulerKind::Greedy, SizeBucket::Uniform, false), |r| {
        r.valleys() as f64
    });
    let o = mean_of(
        &mean_reports(SchedulerKind::OrderPreserving, SizeBucket::Uniform, false),
        |r| r.valleys() as f64,
    );
    assert!(o > g, "op valleys {o} must exceed greedy valleys {g}");
}

#[test]
fn sibs_does_not_hurt_op() {
    // Sec. V-B-4: SIBS improves EC delivery; at minimum it must not
    // regress the Op scheduler it wraps.
    let op = mean_reports(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, false);
    let sb = mean_reports(SchedulerKind::Sibs, SizeBucket::LargeBiased, false);
    let sp_op = mean_of(&op, |r| r.speedup);
    let sp_sb = mean_of(&sb, |r| r.speedup);
    assert!(sp_sb >= sp_op * 0.98, "sibs speedup {sp_sb:.2} vs op {sp_op:.2}");
    let ec_op = mean_of(&op, |r| r.ec_utilization);
    let ec_sb = mean_of(&sb, |r| r.ec_utilization);
    assert!(ec_sb >= ec_op - 0.02, "sibs EC util {ec_sb:.3} vs op {ec_op:.3}");
}

#[test]
fn large_bucket_speedup_exceeds_uniform() {
    // Table I: computation dominates the network legs for large jobs.
    let large =
        mean_of(&mean_reports(SchedulerKind::Greedy, SizeBucket::LargeBiased, false), |r| {
            r.speedup
        });
    let uniform =
        mean_of(&mean_reports(SchedulerKind::Greedy, SizeBucket::Uniform, false), |r| r.speedup);
    assert!(large > uniform, "speedup(large)={large:.2} vs speedup(uniform)={uniform:.2}");
}

#[test]
fn greedy_bursts_at_least_as_much_as_op_on_large() {
    // Table I, large bucket: Greedy 0.19 vs Op 0.17.
    let g = mean_of(&mean_reports(SchedulerKind::Greedy, SizeBucket::LargeBiased, false), |r| {
        r.burst_ratio
    });
    let o = mean_of(
        &mean_reports(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, false),
        |r| r.burst_ratio,
    );
    assert!(g >= o * 0.9, "greedy burst {g:.3} vs op {o:.3}");
}

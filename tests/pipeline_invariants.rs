//! Cross-crate integration tests: structural invariants that must hold for
//! every scheduler on every workload, end to end through the full pipeline.

use cloudburst_repro::core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_repro::sla::RunReport;
use cloudburst_repro::workload::{ArrivalConfig, SizeBucket};

fn cfg(kind: SchedulerKind, bucket: SizeBucket, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        scheduler: kind,
        arrivals: ArrivalConfig {
            n_batches: 3,
            jobs_per_batch: 8.0,
            bucket,
            ..ArrivalConfig::default()
        },
        training_docs: 150,
        ..ExperimentConfig::default()
    }
}

fn check_invariants(r: &RunReport) {
    let ctx = format!("scheduler={} bucket={} seed={}", r.scheduler, r.bucket, r.seed);
    // Every job completed, once, at a positive time.
    assert_eq!(r.completion_times.len(), r.n_jobs, "{ctx}");
    assert!(r.n_jobs > 0, "{ctx}");
    // Makespan is the max completion.
    let max_ct = r.completion_times.iter().map(|t| t.as_secs_f64()).fold(0.0, f64::max);
    assert!((r.makespan_secs - max_ct).abs() < 1e-6, "{ctx}");
    // Utilizations and ratios are fractions.
    assert!((0.0..=1.0).contains(&r.ic_utilization), "{ctx}: ic={}", r.ic_utilization);
    assert!((0.0..=1.0).contains(&r.ec_utilization), "{ctx}: ec={}", r.ec_utilization);
    assert!((0.0..=1.0).contains(&r.burst_ratio), "{ctx}");
    for b in &r.burst_ratio_per_batch {
        assert!((0.0..=1.0).contains(b), "{ctx}");
    }
    // Speed-up can never exceed the total machine count (10 here).
    assert!(r.speedup > 0.0 && r.speedup <= 10.0 + 1e-9, "{ctx}: speedup={}", r.speedup);
    // Makespan can never beat perfectly parallel execution on all machines.
    assert!(
        r.makespan_secs >= r.sequential_secs / 10.0 * 0.999,
        "{ctx}: makespan {} vs bound {}",
        r.makespan_secs,
        r.sequential_secs / 10.0
    );
    // OO series is monotone non-decreasing, and the horizon extends past
    // the makespan so the final sample has every job ordered (tolerance 0
    // ⇒ eventually everything is in order once all jobs complete).
    for w in r.oo_series.windows(2) {
        assert!(w[1].o_t >= w[0].o_t, "{ctx}: OO series regressed");
    }
    let final_oo = r.final_ordered_bytes();
    assert!(final_oo > 0, "{ctx}: completed run must end with ordered output");
    // Bursted runs move bytes; IC-only runs move none.
    if r.burst_ratio == 0.0 {
        assert_eq!(r.uploaded_bytes, 0, "{ctx}");
        assert_eq!(r.downloaded_bytes, 0, "{ctx}");
    } else {
        assert!(r.uploaded_bytes > 0, "{ctx}");
        assert!(r.downloaded_bytes > 0, "{ctx}");
    }
    // Completion-delay series has one entry per job.
    assert_eq!(r.completion_delays.len(), r.n_jobs, "{ctx}");
}

#[test]
fn invariants_hold_for_every_scheduler_and_bucket() {
    for kind in [
        SchedulerKind::IcOnly,
        SchedulerKind::Greedy,
        SchedulerKind::OrderPreserving,
        SchedulerKind::OrderPreservingNoChunk,
        SchedulerKind::Sibs,
    ] {
        for bucket in SizeBucket::ALL {
            let r = run_experiment(&cfg(kind, bucket, 17));
            check_invariants(&r);
        }
    }
}

#[test]
fn invariants_hold_under_high_network_variation() {
    for kind in [SchedulerKind::Greedy, SchedulerKind::OrderPreserving, SchedulerKind::Sibs] {
        let mut c = cfg(kind, SizeBucket::LargeBiased, 23);
        c.upload_model = cloudburst_repro::net::BandwidthModel::high_variation(23);
        c.download_model = cloudburst_repro::net::BandwidthModel::high_variation(24);
        check_invariants(&run_experiment(&c));
    }
}

#[test]
fn invariants_hold_with_all_extensions_enabled() {
    let mut c = cfg(SchedulerKind::Sibs, SizeBucket::Uniform, 31);
    c.rescheduling = true;
    c.scaling = Some(cloudburst_repro::core::config::ScalingPolicy {
        min_instances: 1,
        max_instances: 2,
        period: cloudburst_repro::sim::SimDuration::from_mins(2),
    });
    c.extra_ec_sites = vec![cloudburst_repro::core::config::EcSiteConfig {
        n_machines: 1,
        speed: 1.0,
        upload_model: cloudburst_repro::net::BandwidthModel::Constant(150_000.0),
        download_model: cloudburst_repro::net::BandwidthModel::Constant(150_000.0),
        price: None,
    }];
    check_invariants(&run_experiment(&c));
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = run_experiment(&cfg(SchedulerKind::Sibs, SizeBucket::LargeBiased, 5));
    let b = run_experiment(&cfg(SchedulerKind::Sibs, SizeBucket::LargeBiased, 5));
    assert_eq!(a.completion_times, b.completion_times);
    assert_eq!(a.makespan_secs, b.makespan_secs);
    assert_eq!(a.burst_ratio_per_batch, b.burst_ratio_per_batch);
    assert_eq!(a.uploaded_bytes, b.uploaded_bytes);
    let c = run_experiment(&cfg(SchedulerKind::Sibs, SizeBucket::LargeBiased, 6));
    assert_ne!(a.completion_times, c.completion_times, "different seed, different run");
}

#[test]
fn tolerance_never_reduces_ordered_availability() {
    let mut last = 0.0;
    for tol in [0u64, 2, 4, 8] {
        let mut c = cfg(SchedulerKind::Greedy, SizeBucket::LargeBiased, 9);
        c.oo.tolerance = tol;
        let r = run_experiment(&c);
        let mean = r.mean_ordered_bytes();
        assert!(
            mean >= last - 1.0,
            "tolerance {tol} reduced mean ordered bytes: {mean} < {last}"
        );
        last = mean;
    }
}

#[test]
fn ic_only_completes_in_queue_dominated_order() {
    // With a single queue and 8 identical machines, IC-only execution
    // starts in FCFS order, so a job can finish at most ~one service time
    // after any later-started job — the delay series must be bounded by the
    // largest single service time.
    let r = run_experiment(&cfg(SchedulerKind::IcOnly, SizeBucket::Uniform, 13));
    let max_service = r.sequential_secs; // loose upper bound on any delay
    for d in &r.completion_delays {
        assert!(*d <= max_service, "delay {d} out of bounds");
    }
}

//! Integration of the live (real-thread) pipeline with the scheduling
//! stack: placements computed by the real scheduler execute correctly on
//! actual threads and channels.

use cloudburst_bench::WallClock;
use cloudburst_repro::core::live::{run_live, LiveConfig};
use cloudburst_repro::qrsm::{Method, QrsModel};
use cloudburst_repro::sched::{
    BurstScheduler, EstimateProvider, LoadModelBuf, OrderPreservingScheduler, Placement,
};
use cloudburst_repro::sim::{RngFactory, SimTime};
use cloudburst_repro::workload::arrival::training_corpus;
use cloudburst_repro::workload::{ArrivalConfig, BatchArrivals, GroundTruth, JobId, SizeBucket};

fn trained_estimates(seed: u64) -> EstimateProvider {
    let rngs = RngFactory::new(seed);
    let truth = GroundTruth::default();
    let corpus = training_corpus(&mut rngs.stream("train"), &truth, 200);
    let xs: Vec<Vec<f64>> = corpus.iter().map(|(f, _)| f.regressors()).collect();
    let ys: Vec<f64> = corpus.iter().map(|(_, t)| *t).collect();
    EstimateProvider::new(QrsModel::fit(&xs, &ys, Method::Ols).unwrap())
        .with_bandwidth_prior(250_000.0)
}

#[test]
fn scheduled_batch_runs_live_end_to_end() {
    let rngs = RngFactory::new(77);
    let truth = GroundTruth::default();
    let gen = BatchArrivals::new(ArrivalConfig {
        n_batches: 1,
        jobs_per_batch: 10.0,
        bucket: SizeBucket::Uniform,
        ..ArrivalConfig::default()
    });
    let jobs = gen.generate_flat(&rngs, &truth);
    let n = jobs.len();

    let est = trained_estimates(77);
    let mut load = LoadModelBuf::idle(SimTime::ZERO, 2, 2);
    load.ic_free_secs = vec![2_000.0; 2];
    load.outstanding_est_completions = vec![SimTime::from_secs(2_000)];
    let mut sched = OrderPreservingScheduler::default_with_seed(3);
    let schedule = sched.schedule_batch(jobs, &load.as_model(), &est);
    // Re-index into the final FCFS id space, as the engine does on enqueue
    // (chunks carry their parent's provisional id until this point).
    let indexed: Vec<_> = schedule
        .jobs
        .iter()
        .enumerate()
        .map(|(i, (j, p))| (j.with_id(JobId(i as u64)), *p))
        .collect();

    let cfg = LiveConfig { time_scale: 1e-5, n_ic: 2, n_ec: 2, bandwidth_bps: 250_000.0 };
    let outcome = run_live(&cfg, &indexed, &WallClock::start());

    assert_eq!(outcome.completions.len(), indexed.len());
    assert!(indexed.len() >= n, "chunking can only add jobs");
    // Each job completed exactly once, with the placement it was given.
    let mut seen = std::collections::BTreeSet::new();
    for c in &outcome.completions {
        assert!(seen.insert(c.id), "{} completed twice", c.id);
        let (_, expected) = indexed
            .iter()
            .find(|(j, _)| j.id == c.id)
            .expect("completion for a scheduled job");
        assert_eq!(c.placement, *expected);
    }
}

#[test]
fn live_ic_only_preserves_submission_order_per_worker() {
    // One IC worker, everything local: the live pipeline must be FCFS.
    let rngs = RngFactory::new(5);
    let truth = GroundTruth::default();
    let gen = BatchArrivals::new(ArrivalConfig {
        n_batches: 1,
        jobs_per_batch: 6.0,
        bucket: SizeBucket::SmallBiased,
        ..ArrivalConfig::default()
    });
    let jobs: Vec<_> = gen
        .generate_flat(&rngs, &truth)
        .into_iter()
        .map(|j| (j, Placement::Internal))
        .collect();
    let cfg = LiveConfig { time_scale: 1e-5, n_ic: 1, n_ec: 1, bandwidth_bps: 250_000.0 };
    let out = run_live(&cfg, &jobs, &WallClock::start());
    let order: Vec<JobId> = out.order();
    let expected: Vec<JobId> = jobs.iter().map(|(j, _)| j.id).collect();
    assert_eq!(order, expected);
}

//! Chaos golden tests: a seeded faulty run must be byte-reproducible —
//! across repeated runs *and* across a serialize → replay round trip of
//! its compiled `FaultPlan` — and the canonical mid-batch EC blackout
//! scenario must complete every job through the recovery path
//! (timeout → backoff retries → IC re-dispatch).

use proptest::prelude::*;

use cloudburst_repro::chaos::{CrashLaw, FaultPlan, FaultProfile, RetryPolicy};
use cloudburst_repro::core::{
    run_experiment, run_experiment_detailed, run_with_plan, ExperimentConfig, SchedulerKind,
};
use cloudburst_repro::sim::RngFactory;
use cloudburst_repro::workload::{ArrivalConfig, Batch, BatchArrivals, SizeBucket};

fn small_cfg(kind: SchedulerKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        scheduler: kind,
        arrivals: ArrivalConfig {
            n_batches: 3,
            jobs_per_batch: 6.0,
            bucket: SizeBucket::Uniform,
            ..ArrivalConfig::default()
        },
        n_ic: 2, // starve the IC so the schedulers actually burst
        training_docs: 150,
        ..ExperimentConfig::default()
    }
}

/// The full chaos menu: EC crashes, a scripted blackout, payload losses
/// and execution failures, with a tight retry budget so the recovery
/// machinery is exercised end to end.
fn chaotic_profile() -> FaultProfile {
    FaultProfile {
        ec_crash: Some(CrashLaw {
            mean_uptime_secs: 600.0,
            mean_downtime_secs: 120.0,
            max_faults_per_machine: 2,
        }),
        transfer_loss_prob: 0.2,
        exec_failure_prob: 0.15,
        retry: RetryPolicy {
            base_backoff_secs: 5.0,
            backoff_cap_secs: 30.0,
            max_transfer_retries: 2,
            max_exec_retries: 3,
            timeout_factor: 2.0,
            min_timeout_secs: 20.0,
        },
        ..FaultProfile::dormant()
    }
    .with_blackout(300.0, 1500.0)
}

fn batches_for(cfg: &ExperimentConfig) -> Vec<Batch> {
    BatchArrivals::new(cfg.arrivals.clone()).generate(&RngFactory::new(cfg.seed), &cfg.truth)
}

#[test]
fn seeded_faulty_run_is_byte_reproducible() {
    let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 31);
    cfg.faults = Some(chaotic_profile());
    let (r1, w1) = run_experiment_detailed(&cfg);
    let (r2, _) = run_experiment_detailed(&cfg);
    let j1 = serde_json::to_string(&r1).expect("report serializes");
    let j2 = serde_json::to_string(&r2).expect("report serializes");
    assert_eq!(j1, j2, "same profile + seed must reproduce the report byte-for-byte");
    assert_eq!(r1.completion_times.len(), r1.n_jobs, "faulty run lost jobs");
    assert!(
        r1.faults.recovery_actions() > 0,
        "the chaotic profile should force recovery work: {:?}",
        r1.faults
    );
    // The timeline record (every per-job stage stamp) must replay too.
    let m1 = w1.fault_metrics().expect("chaos armed").clone();
    assert_eq!(m1, r1.faults);
}

#[test]
fn fault_plan_replay_round_trips_byte_identically() {
    let mut cfg = small_cfg(SchedulerKind::Sibs, 47);
    cfg.faults = Some(chaotic_profile());
    let (r1, w1) = run_experiment_detailed(&cfg);
    let plan_json = w1.fault_plan().expect("chaos armed").to_json();
    let plan = FaultPlan::from_json(&plan_json).expect("plan parses");
    assert_eq!(plan.to_json(), plan_json, "plan JSON must round-trip exactly");
    // Replay from the deserialized plan (the profile is *not* recompiled).
    let (r2, w2) = run_with_plan(&cfg, batches_for(&cfg), Some(plan));
    assert_eq!(
        serde_json::to_string(&r1).expect("serializes"),
        serde_json::to_string(&r2).expect("serializes"),
        "replaying a serialized plan must reproduce the run byte-for-byte"
    );
    assert_eq!(
        format!("{:?}", w1.timelines()),
        format!("{:?}", w2.timelines()),
        "replay must reproduce every per-job stage stamp"
    );
}

#[test]
fn mid_batch_blackout_completes_all_jobs_via_redispatch() {
    // Blackout only: every EC link goes dark from t = 300 s (mid second
    // batch) to t = 2400 s — longer than the whole retry budget of any
    // transfer. In-flight uploads freeze, time out, retry into the same
    // dark window, exhaust the budget and re-dispatch to the IC — Eq. 1
    // slackness owns them again from there.
    let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 23);
    cfg.faults = Some(
        FaultProfile {
            retry: RetryPolicy {
                base_backoff_secs: 5.0,
                backoff_cap_secs: 20.0,
                max_transfer_retries: 1,
                max_exec_retries: 3,
                timeout_factor: 1.0,
                min_timeout_secs: 10.0,
            },
            ..FaultProfile::dormant()
        }
        .with_blackout(300.0, 2400.0),
    );
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs, "blackout run lost jobs");
    assert!(r.faults.transfer_timeouts > 0, "no transfer timed out: {:?}", r.faults);
    assert!(r.faults.transfer_retries > 0, "no retry was attempted: {:?}", r.faults);
    assert!(r.faults.redispatches > 0, "no job was re-dispatched: {:?}", r.faults);
    assert!((r.faults.blackout_secs - 2100.0).abs() < 1e-9, "{:?}", r.faults);

    // Fault attribution against the fault-free twin. Makespan can land a
    // hair *under* the twin's (re-dispatched jobs skip the network round
    // trip entirely), but the blackout must hurt in-order availability:
    // jobs stuck in timeout/retry churn deliver their output late.
    let mut clean = cfg.clone();
    clean.faults = None;
    let base = run_experiment(&clean);
    assert!(base.faults.is_clean());
    let attr = cloudburst_repro::sla::fault_attribution(&r, &base);
    assert!(attr.oo_mean_degradation > 0.0, "blackout left the OO metric unharmed: {attr:?}");
}

/// Golden byte-stability, mirroring `golden_determinism.rs` and the conform
/// golden-workspace test: the canonical chaos scenario (EC crashes + a
/// scripted blackout + losses/exec failures under a tight retry budget)
/// must reproduce the checked-in SLA report *file* byte for byte. Catches
/// cross-commit drift that the run-vs-run tests above cannot see.
///
/// Regenerate after an intentional engine/chaos change with:
/// `CHAOS_GOLDEN_BLESS=1 cargo test --test chaos_golden golden`.
#[test]
fn golden_chaos_report_is_byte_stable() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chaos_scenario.report.json");
    let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 31);
    cfg.faults = Some(chaotic_profile());
    let report = run_experiment(&cfg);
    let fresh = serde_json::to_string(&report).expect("report serializes");
    if std::env::var_os("CHAOS_GOLDEN_BLESS").is_some() {
        std::fs::write(path, format!("{fresh}\n")).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture exists (bless to create)");
    assert_eq!(
        fresh,
        golden.trim_end(),
        "chaos scenario report drifted from {path}; if intentional, re-bless"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite guard: a dormant profile (or an explicit zero-probability
    /// one) must leave the run byte-identical to `faults: None` — reports
    /// *and* per-job timelines — across all three burst schedulers.
    #[test]
    fn dormant_profile_is_byte_equivalent_to_no_faults(
        seed in 1u64..500,
        kind_idx in 0usize..3,
        n_ic in 2usize..6,
        rescheduling in any::<bool>(),
    ) {
        let kind = [SchedulerKind::Greedy, SchedulerKind::OrderPreserving, SchedulerKind::Sibs]
            [kind_idx];
        let mut clean = small_cfg(kind, seed);
        clean.n_ic = n_ic;
        clean.rescheduling = rescheduling;
        let mut dormant = clean.clone();
        dormant.faults = Some(FaultProfile::dormant());
        let (r1, w1) = run_experiment_detailed(&clean);
        let (r2, w2) = run_experiment_detailed(&dormant);
        prop_assert_eq!(
            serde_json::to_string(&r1).expect("serializes"),
            serde_json::to_string(&r2).expect("serializes"),
            "dormant chaos perturbed the report ({:?}, seed {})", kind, seed
        );
        prop_assert_eq!(
            format!("{:?}", w1.timelines()),
            format!("{:?}", w2.timelines()),
            "dormant chaos perturbed the event timeline ({:?}, seed {})", kind, seed
        );
        prop_assert!(r2.faults.is_clean());
    }
}

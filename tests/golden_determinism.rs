//! Golden determinism at full-system scale: a fixed seed must produce a
//! byte-identical `RunReport` JSON every time. A paper-scale run pushes
//! tens of thousands of events through a live set of a few dozen, so the
//! kernel's slab recycles every slot hundreds of times over — any ordering
//! leak from slot reuse would show up here as a diverging report.

use cloudburst_repro::core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_repro::workload::SizeBucket;

fn report_json(cfg: &ExperimentConfig) -> String {
    serde_json::to_string(&run_experiment(cfg)).expect("RunReport serializes")
}

#[test]
fn fixed_seed_reproduces_identical_report_json() {
    for kind in [SchedulerKind::Greedy, SchedulerKind::OrderPreserving, SchedulerKind::Sibs] {
        let cfg = ExperimentConfig::paper(kind, SizeBucket::LargeBiased, 22);
        assert_eq!(report_json(&cfg), report_json(&cfg), "{kind:?} diverged");
    }
}

#[test]
fn high_variation_run_is_reproducible_too() {
    let cfg = ExperimentConfig::paper_high_variation(
        SchedulerKind::OrderPreserving,
        SizeBucket::Uniform,
        44,
    );
    assert_eq!(report_json(&cfg), report_json(&cfg));
}

//! Property-based tests over the core data structures and invariants,
//! crossing crate boundaries (workload → sla/net/qrsm).

use proptest::prelude::*;

use cloudburst_repro::net::{BandwidthModel, Link, TransferId};
use cloudburst_repro::qrsm::{design::QuadraticDesign, fit, Matrix};
use cloudburst_repro::sim::{Sim, SimDuration, SimTime};
use cloudburst_repro::sla::{oo_series, CompletionRecord, OoConfig};
use cloudburst_repro::workload::chunk::{chunk_job, ChunkPolicy};
use cloudburst_repro::workload::{DocumentFeatures, Job, JobId, JobType};

fn job_of(size_bytes: u64, output_bytes: u64, service: f64) -> Job {
    Job {
        id: JobId(0),
        batch: 0,
        arrival: SimTime::ZERO,
        features: DocumentFeatures {
            size_bytes,
            pages: 50,
            images: 20,
            resolution_dpi: 600,
            color_fraction: 0.5,
            coverage: 0.5,
            text_ratio: 0.5,
            job_type: JobType::Marketing,
        },
        true_service_secs: service,
        output_bytes,
        parent: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue fires strictly in (time, insertion) order no matter
    /// the scheduling order.
    #[test]
    fn sim_fires_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<u64>, sim| {
                w.push(sim.now().as_micros());
            });
        }
        let mut seen = Vec::new();
        sim.run(&mut seen);
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }

    /// Chunking conserves input/output bytes and page/image counts exactly,
    /// for any job size and policy target.
    #[test]
    fn chunking_conserves_everything(
        size_mb in 1u64..300,
        out_frac in 0.1f64..0.9,
        target in 20.0f64..150.0,
    ) {
        let size = size_mb * 1_000_000;
        let output = (size as f64 * out_frac) as u64;
        let job = job_of(size, output, 600.0);
        let policy = ChunkPolicy { target_chunk_mb: target, ..ChunkPolicy::default() };
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let chunks = chunk_job(&job, &policy, &mut rng);
        prop_assert!(!chunks.is_empty());
        prop_assert_eq!(chunks.iter().map(|c| c.features.size_bytes).sum::<u64>(), size);
        prop_assert_eq!(chunks.iter().map(|c| c.output_bytes).sum::<u64>(), output);
        prop_assert_eq!(chunks.iter().map(|c| c.features.pages).sum::<u32>(), job.features.pages);
        if chunks.len() > 1 {
            prop_assert!(chunks.iter().all(|c| c.parent == Some(job.id)));
            // No chunk exceeds the target by more than the rounding slack.
            for c in &chunks {
                prop_assert!(c.size_mb() <= target + 1.0);
            }
        }
    }

    /// The fluid link conserves bytes and completes transfers in a finite
    /// number of wakes for any mix of sizes and thread counts.
    #[test]
    fn link_conserves_bytes(
        sizes in prop::collection::vec(1_000u64..10_000_000, 1..12),
        threads in prop::collection::vec(1u32..8, 12),
        seed in 0u64..1000,
    ) {
        let mut link = Link::new(BandwidthModel::high_variation(seed), 1.5, SimDuration::from_secs(30));
        for (i, &s) in sizes.iter().enumerate() {
            link.start(SimTime::ZERO, TransferId(i as u64), s, threads[i]);
        }
        let mut n = 0;
        let mut guard = 0;
        let mut last = SimTime::ZERO;
        let mut done = Vec::new();
        while let Some(w) = link.next_wake() {
            done.clear();
            link.advance_into(w, &mut done);
            for c in &done {
                prop_assert!(c.at >= last);
                last = c.at;
            }
            n += done.len();
            guard += 1;
            prop_assert!(guard < 100_000, "link failed to converge");
        }
        prop_assert_eq!(n, sizes.len());
        prop_assert_eq!(link.bytes_delivered(), sizes.iter().sum::<u64>());
        prop_assert_eq!(link.in_flight(), 0);
    }

    /// The OO metric is monotone in time and in tolerance for arbitrary
    /// completion patterns, and never counts more bytes than completed.
    #[test]
    fn oo_metric_monotonicity(
        completions in prop::collection::vec((0u64..40, 1u64..5_000, 1u64..1_000_000), 1..40),
    ) {
        // Dedup ids (each job completes once).
        let mut seen = std::collections::BTreeSet::new();
        let recs: Vec<CompletionRecord> = completions
            .iter()
            .filter(|(id, _, _)| seen.insert(*id))
            .map(|&(id, secs, bytes)| CompletionRecord {
                id,
                at: SimTime::from_secs(secs),
                bytes,
            })
            .collect();
        let total: u64 = recs.iter().map(|r| r.bytes).sum();
        let horizon = SimTime::from_secs(6_000);
        let mut prev_final = 0u64;
        for tol in 0..6 {
            let cfg = OoConfig { tolerance: tol, sample_interval: SimDuration::from_secs(60) };
            let series = oo_series(&recs, 40, horizon, cfg);
            for w in series.windows(2) {
                prop_assert!(w[1].o_t >= w[0].o_t, "time monotonicity violated");
            }
            let f = series.last().map_or(0, |s| s.o_t);
            prop_assert!(f >= prev_final, "tolerance monotonicity violated");
            prop_assert!(f <= total, "counted more bytes than completed");
            prev_final = f;
        }
    }

    /// OLS on noise-free quadratic data recovers predictions exactly
    /// (to numerical precision), for random coefficient vectors.
    #[test]
    fn qrsm_recovers_random_quadratics(
        coeffs in prop::collection::vec(-5.0f64..5.0, 6),
        probe in prop::collection::vec(-3.0f64..3.0, 2),
    ) {
        let d = QuadraticDesign::new(2);
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64 - 3.0, ((i * 3) % 11) as f64 * 0.5 - 2.0])
            .collect();
        let m: Matrix = d.design_matrix(&xs);
        let ys: Vec<f64> = xs.iter().map(|x| d.eval(&coeffs, x)).collect();
        let beta = fit::fit(&m, &ys, cloudburst_repro::qrsm::Method::Ols).unwrap();
        let pred = d.eval(&beta, &probe);
        let truth = d.eval(&coeffs, &probe);
        prop_assert!((pred - truth).abs() < 1e-6 * (1.0 + truth.abs()),
            "pred={pred} truth={truth}");
    }

    /// Completion-delay series: sum of positive deltas minus the in-order
    /// baseline equals the last completion time (telescoping identity).
    #[test]
    fn delay_series_telescopes(times in prop::collection::vec(1u64..100_000, 1..100)) {
        use cloudburst_repro::sla::metrics::completion_delay_series;
        let ts: Vec<SimTime> = times.iter().map(|&s| SimTime::from_secs(s)).collect();
        let deltas = completion_delay_series(&ts, SimTime::ZERO);
        // max over prefix = sum of positive deltas (running max increments).
        let pos_sum: f64 = deltas.iter().filter(|d| **d > 0.0).sum();
        let max_t = times.iter().max().copied().unwrap() as f64;
        prop_assert!((pos_sum - max_t).abs() < 1e-6, "pos_sum={pos_sum} max={max_t}");
    }
}

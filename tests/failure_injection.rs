//! Failure-injection integration tests: the pipeline must complete every
//! job (no deadlocks, no lost work) under hostile conditions — bandwidth
//! cliffs, starved pools, degenerate workloads — even when performance
//! legitimately collapses.

use cloudburst_repro::core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_repro::net::BandwidthModel;
use cloudburst_repro::sim::SimDuration;
use cloudburst_repro::workload::{ArrivalConfig, SizeBucket};

fn base(kind: SchedulerKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        scheduler: kind,
        arrivals: ArrivalConfig {
            n_batches: 2,
            jobs_per_batch: 6.0,
            bucket: SizeBucket::Uniform,
            ..ArrivalConfig::default()
        },
        training_docs: 150,
        ..ExperimentConfig::default()
    }
}

#[test]
fn bandwidth_cliff_mid_run_does_not_deadlock() {
    // The pipe collapses from 250 KB/s to ~2.5 KB/s twenty minutes in —
    // after the schedulers have committed bursts based on the fast pipe.
    let cliff = BandwidthModel::Trace {
        samples: vec![(0.0, 250_000.0), (1_200.0, 2_500.0)],
        period_secs: 0.0,
    };
    for kind in [SchedulerKind::Greedy, SchedulerKind::OrderPreserving, SchedulerKind::Sibs] {
        let mut cfg = base(kind, 3);
        cfg.n_ic = 2; // force bursting before the cliff
        cfg.upload_model = cliff.clone();
        cfg.download_model = cliff.clone();
        let r = run_experiment(&cfg);
        assert_eq!(r.completion_times.len(), r.n_jobs, "{kind:?} lost jobs");
        assert!(r.makespan_secs > 0.0);
    }
}

#[test]
fn dead_slow_pipe_from_the_start_still_completes() {
    // ~1 KB/s: a 100 MB upload takes over a day; the schedulers should
    // keep (almost) everything local, and anything bursted must still
    // finish.
    let mut cfg = base(SchedulerKind::Greedy, 5);
    cfg.upload_model = BandwidthModel::Constant(1_000.0);
    cfg.download_model = BandwidthModel::Constant(1_000.0);
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs);
    assert!(
        r.burst_ratio < 0.2,
        "a dead pipe should suppress bursting: {}",
        r.burst_ratio
    );
}

#[test]
fn single_machine_everywhere() {
    let mut cfg = base(SchedulerKind::OrderPreserving, 7);
    cfg.n_ic = 1;
    cfg.n_ec = 1;
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs);
    // With one machine per cloud, speed-up is bounded by 2.
    assert!(r.speedup <= 2.0 + 1e-9, "speedup {}", r.speedup);
}

#[test]
fn giant_jobs_only() {
    // Every job near the 300 MB cap with a long-latency, jittery pipe.
    let mut cfg = base(SchedulerKind::Sibs, 11);
    cfg.arrivals.bucket = SizeBucket::LargeBiased;
    cfg.last_hop_latency = SimDuration::from_secs(30);
    cfg.upload_model = BandwidthModel::high_variation(99);
    cfg.download_model = BandwidthModel::high_variation(98);
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs);
    for w in r.oo_series.windows(2) {
        assert!(w[1].o_t >= w[0].o_t);
    }
}

#[test]
fn probe_storm_does_not_starve_jobs() {
    // Probes every 30 s on a thin pipe compete with real transfers; jobs
    // must still drain.
    let mut cfg = base(SchedulerKind::Greedy, 13);
    cfg.n_ic = 2;
    cfg.probe_interval = Some(SimDuration::from_secs(30));
    cfg.upload_model = BandwidthModel::Constant(50_000.0);
    cfg.download_model = BandwidthModel::Constant(50_000.0);
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs);
}

#[test]
fn rescheduling_under_cliff_remains_consistent() {
    let cliff = BandwidthModel::Trace {
        samples: vec![(0.0, 300_000.0), (900.0, 5_000.0)],
        period_secs: 0.0,
    };
    let mut cfg = base(SchedulerKind::OrderPreserving, 17);
    cfg.n_ic = 2;
    cfg.rescheduling = true;
    cfg.upload_model = cliff.clone();
    cfg.download_model = cliff;
    let r = run_experiment(&cfg);
    assert_eq!(r.completion_times.len(), r.n_jobs);
    // Every job has exactly one completion record and one ticket.
    assert_eq!(r.tickets.len(), r.n_jobs);
}

#[test]
fn batch_turnarounds_are_reported_per_batch() {
    let cfg = base(SchedulerKind::Greedy, 19);
    let r = run_experiment(&cfg);
    assert_eq!(r.batch_turnaround_secs.len(), 2);
    for &t in &r.batch_turnaround_secs {
        assert!(t > 0.0);
    }
    // The whole-run makespan is at least every batch turnaround offset by
    // its arrival; in particular the last batch's turnaround is bounded by
    // the makespan.
    assert!(r.batch_turnaround_secs[0] <= r.makespan_secs + 1e-6);
}

//! The Order-Preserving scheduler (Algorithm 2).
//!
//! Two phases per batch:
//!
//! 1. **Variance reduction** (lines 3–10): walk the job list with a sliding
//!    size-deviation window `σ(i..i+x)`; when it exceeds the threshold,
//!    split the offending job with `pdfchunk` and splice the chunks back at
//!    its position.
//! 2. **Slack-gated bursting** (lines 11–17): burst a job only if its
//!    estimated EC completion `t_ec` fits inside its slack (Eq. 1–2) — the
//!    max estimated completion of everything ahead of it. Jobs bursted this
//!    way are never on the critical path, so the schedule is robust to
//!    bandwidth dips (Sec. IV-B).

use cloudburst_workload::chunk::{chunk_job_at, ChunkPolicy};
use cloudburst_workload::stats::window_stddev;
use cloudburst_workload::Job;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::{BatchSchedule, BurstScheduler, LoadModel, Placement, Planner};
use crate::estimates::EstimateProvider;

/// Algorithm 2: chunk for variance, then burst within slack.
#[derive(Clone, Debug)]
pub struct OrderPreservingScheduler {
    /// Chunking policy (window `x`, threshold `th`, target chunk size).
    pub chunk_policy: ChunkPolicy,
    /// Safety margin τ subtracted from the slack deadline (Sec. IV).
    pub tau_secs: f64,
    /// Set `false` to disable chunking (the `ablate-chunk` experiment).
    pub chunking_enabled: bool,
    /// Deterministic stream for chunk service-time noise.
    chunk_rng: StdRng,
}

impl OrderPreservingScheduler {
    /// Creates the scheduler with the given chunking policy and a seed for
    /// its (tiny) chunk-overhead noise stream.
    pub fn new(chunk_policy: ChunkPolicy, seed: u64) -> OrderPreservingScheduler {
        OrderPreservingScheduler {
            chunk_policy,
            tau_secs: 0.0,
            chunking_enabled: true,
            chunk_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Paper-default policy.
    pub fn default_with_seed(seed: u64) -> OrderPreservingScheduler {
        OrderPreservingScheduler::new(ChunkPolicy::default(), seed)
    }

    /// Disables the chunking phase (ablation).
    pub fn without_chunking(mut self) -> OrderPreservingScheduler {
        self.chunking_enabled = false;
        self
    }

    /// Algorithm 2 lines 3–10 over the batch. The queue-position fraction
    /// is computed against the *original* batch length so that chunk
    /// insertion does not shift later jobs' positions (non-uniform
    /// chunking stays stable under expansion).
    fn chunk_phase(&mut self, jobs: Vec<Job>) -> Vec<Job> {
        if !self.chunking_enabled {
            return jobs;
        }
        let denom = jobs.len().max(1) as f64;
        let mut list = jobs;
        let mut originals_seen = 0usize;
        let mut i = 0;
        while i < list.len() {
            let pos_frac = originals_seen as f64 / denom;
            let sizes: Vec<f64> = list.iter().map(|j| j.size_mb()).collect();
            let sigma = window_stddev(&sizes, i, self.chunk_policy.window);
            if self.chunk_policy.should_chunk_at(sigma, list[i].size_mb(), pos_frac) {
                let chunks =
                    chunk_job_at(&list[i], &self.chunk_policy, pos_frac, &mut self.chunk_rng);
                let added = chunks.len();
                list.splice(i..=i, chunks);
                i += added;
            } else {
                i += 1;
            }
            originals_seen += 1;
        }
        list
    }
}

impl BurstScheduler for OrderPreservingScheduler {
    fn name(&self) -> &'static str {
        if self.chunking_enabled {
            "op"
        } else {
            "op-nochunk"
        }
    }

    fn schedule_batch(
        &mut self,
        batch: Vec<Job>,
        load: &LoadModel<'_>,
        est: &EstimateProvider,
    ) -> BatchSchedule {
        let expanded = self.chunk_phase(batch);
        let mut planner = Planner::new(load, est);
        let mut jobs = Vec::with_capacity(expanded.len());
        for job in expanded {
            // Line 11–12: burst iff t_ec ≤ slack(J, i) (with margin τ).
            let placement = match planner.slack() {
                Some(slack) => {
                    let t_ec = planner.ft_ec(&job);
                    let deadline =
                        slack - cloudburst_sim::SimDuration::from_secs_f64(self.tau_secs);
                    if t_ec <= deadline {
                        Placement::External
                    } else {
                        Placement::Internal
                    }
                }
                // Head of an empty system: no cushion, run locally.
                None => Placement::Internal,
            };
            planner.commit(&job, placement);
            jobs.push((job, placement));
        }
        BatchSchedule { jobs, sibs: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LoadModelBuf;
    use crate::estimates::tests_support::{job_with_id, provider};
    use cloudburst_sim::SimTime;

    fn op() -> OrderPreservingScheduler {
        OrderPreservingScheduler::default_with_seed(7)
    }

    #[test]
    fn idle_system_stays_internal() {
        // Empty system: first job has no slack; subsequent jobs have slack
        // equal to a short IC drain that an EC round trip cannot beat.
        let est = provider();
        let batch: Vec<_> = (0..4).map(|i| job_with_id(i, 40)).collect();
        let buf = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
        let s = op().schedule_batch(batch, &buf.as_model(), &est);
        assert_eq!(s.n_bursted(), 0);
    }

    #[test]
    fn deep_backlog_creates_slack_and_bursts() {
        // A deep IC backlog gives later jobs a big cushion: their EC round
        // trips fit, so they burst.
        let est = provider();
        let batch: Vec<_> = (0..8).map(|i| job_with_id(i, 60)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 2, 2);
        buf.ic_free_secs = vec![4_000.0, 4_000.0];
        buf.outstanding_est_completions = vec![SimTime::from_secs(4_000)];
        let s = op().schedule_batch(batch, &buf.as_model(), &est);
        assert!(s.n_bursted() > 0, "deep backlog should trigger bursting");
    }

    #[test]
    fn bursted_jobs_satisfy_eq2_under_own_estimates() {
        // Property: for every EC placement, replaying the planner must show
        // t_ec ≤ slack at decision time.
        let est = provider();
        let batch: Vec<_> = (0..10).map(|i| job_with_id(i, 30 + (i % 5) * 50)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 2, 2);
        buf.ic_free_secs = vec![3_000.0, 3_500.0];
        buf.outstanding_est_completions = vec![SimTime::from_secs(3_500)];
        let s = op().schedule_batch(batch.clone(), &buf.as_model(), &est);

        // Replay with an identical planner.
        let mut planner = Planner::new(&buf.as_model(), &est);
        for (job, placement) in &s.jobs {
            if *placement == Placement::External {
                let slack = planner.slack().expect("bursted job must have predecessors");
                let t_ec = planner.ft_ec(job);
                assert!(t_ec <= slack, "Eq. 2 violated: t_ec={t_ec:?} slack={slack:?}");
            }
            planner.commit(job, *placement);
        }
    }

    #[test]
    fn chunking_splits_large_jobs_in_variable_batches() {
        let est = provider();
        // Small jobs around a 290 MB monster: high window σ.
        let batch =
            vec![job_with_id(0, 5), job_with_id(1, 290), job_with_id(2, 8), job_with_id(3, 6)];
        let buf = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
        let s = op().schedule_batch(batch, &buf.as_model(), &est);
        assert!(s.jobs.len() > 4, "the 290 MB job should be chunked");
        let n_chunks = s.jobs.iter().filter(|(j, _)| j.is_chunk()).count();
        assert_eq!(n_chunks, 4, "ceil(290/80) = 4 chunks");
    }

    #[test]
    fn without_chunking_passes_jobs_through() {
        let est = provider();
        let batch = vec![job_with_id(0, 5), job_with_id(1, 290), job_with_id(2, 8)];
        let buf = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
        let mut sched = op().without_chunking();
        assert_eq!(sched.name(), "op-nochunk");
        let s = sched.schedule_batch(batch, &buf.as_model(), &est);
        assert_eq!(s.jobs.len(), 3);
    }

    #[test]
    fn tau_margin_suppresses_marginal_bursts() {
        let est = provider();
        let batch: Vec<_> = (0..8).map(|i| job_with_id(i, 60)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 2, 2);
        buf.ic_free_secs = vec![2_000.0, 2_000.0];
        buf.outstanding_est_completions = vec![SimTime::from_secs(2_000)];
        let mut relaxed = op();
        let burst_relaxed = relaxed.schedule_batch(batch.clone(), &buf.as_model(), &est).n_bursted();
        let mut strict = op();
        strict.tau_secs = 1e9;
        let burst_strict = strict.schedule_batch(batch, &buf.as_model(), &est).n_bursted();
        assert_eq!(burst_strict, 0, "infinite τ forbids bursting");
        assert!(burst_relaxed >= burst_strict);
    }
}

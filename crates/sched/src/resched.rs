//! Idle-triggered rescheduling (Sec. IV-D).
//!
//! Estimation errors leave resources idle: an overestimated IC drain bursts
//! too much (EC backlog while IC idles), an underestimate strands work in
//! the IC while the pipe idles. The paper sketches two mitigations, which
//! we implement as decision helpers the engine invokes on idle events:
//!
//! * **Pull-back** — "when a resource in IC becomes free it picks up a job
//!   from the head of the EC queue such that the remaining time for it to
//!   complete is greater than the time it would take to re-execute the same
//!   in the internal cloud."
//! * **Push-out** — "when the EC upload queue is idle and IC has jobs
//!   waiting to execute, then we scan the IC wait queue from the last and
//!   check if there is any job that satisfies the slack criteria."

use cloudburst_sim::{SimDuration, SimTime};

/// The Eq. 1 slack deadline a queued job inherits from the work ahead of
/// it: `now + ahead_max` when there is a cushion, `None` for the head of
/// an idle pool (no work ahead — pushing it out can only delay it). One
/// shared `#[inline]` helper so the engine's production push-out path and
/// its `#[cfg(test)]` rescan oracle cannot drift apart.
#[inline]
pub fn eq1_slack(now: SimTime, ahead_max_secs: f64) -> Option<SimTime> {
    if ahead_max_secs > 0.0 {
        Some(now + SimDuration::from_secs_f64(ahead_max_secs))
    } else {
        None
    }
}

/// One not-yet-finished EC-assigned job, as the pull-back check sees it.
#[derive(Clone, Copy, Debug)]
pub struct PullBackCandidate {
    /// Estimated seconds until this job's result would be available from
    /// the EC (upload remainder + queue + exec + download).
    pub est_remaining_ec_secs: f64,
    /// Estimated seconds to re-execute it locally on the freed machine.
    pub est_ic_reexec_secs: f64,
    /// True if the job's input is still uploading (not yet running
    /// remotely) — only these can be pulled back without wasting EC work.
    pub not_yet_running: bool,
}

/// Picks the job to pull back when an IC machine frees: the first (closest
/// to the EC queue head) candidate whose remaining EC time exceeds a local
/// re-execution and which has not started running remotely. Returns its
/// index.
pub fn pull_back_candidate(candidates: &[PullBackCandidate]) -> Option<usize> {
    candidates
        .iter()
        .position(|c| c.not_yet_running && c.est_remaining_ec_secs > c.est_ic_reexec_secs)
}

/// One IC-queued job, as the push-out check sees it.
#[derive(Clone, Copy, Debug)]
pub struct PushOutCandidate {
    /// Eq. 1 slack anchor for this job (max estimated completion of work
    /// ahead of it); `None` for the queue head.
    pub slack: Option<SimTime>,
    /// Estimated EC round-trip duration (upload + exec + download), seconds.
    pub round_trip_secs: f64,
}

/// Picks the job to push out when the upload pipe idles: scanning the IC
/// wait queue **from the tail**, the first job satisfying the slack
/// criterion (Eq. 2) at time `now`. Returns its index in the wait queue.
pub fn push_out_candidate(now: SimTime, queue: &[PushOutCandidate]) -> Option<usize> {
    for (i, c) in queue.iter().enumerate().rev() {
        if let Some(slack) = c.slack {
            let eta = now + cloudburst_sim::SimDuration::from_secs_f64(c.round_trip_secs);
            if eta <= slack {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_back_prefers_head_and_requires_gain() {
        let cands = [
            PullBackCandidate {
                est_remaining_ec_secs: 100.0,
                est_ic_reexec_secs: 200.0,
                not_yet_running: true,
            },
            PullBackCandidate {
                est_remaining_ec_secs: 500.0,
                est_ic_reexec_secs: 200.0,
                not_yet_running: true,
            },
        ];
        // Head job is faster left in the EC; second gains from pulling back.
        assert_eq!(pull_back_candidate(&cands), Some(1));
    }

    #[test]
    fn pull_back_skips_running_jobs() {
        let cands = [PullBackCandidate {
            est_remaining_ec_secs: 900.0,
            est_ic_reexec_secs: 100.0,
            not_yet_running: false,
        }];
        assert_eq!(pull_back_candidate(&cands), None);
        assert_eq!(pull_back_candidate(&[]), None);
    }

    #[test]
    fn push_out_scans_from_tail() {
        let t = |s| SimTime::from_secs(s);
        let queue = [
            PushOutCandidate { slack: None, round_trip_secs: 100.0 },
            PushOutCandidate { slack: Some(t(1_000)), round_trip_secs: 100.0 },
            PushOutCandidate { slack: Some(t(2_000)), round_trip_secs: 100.0 },
        ];
        // Both 1 and 2 qualify at now = 0; the tail scan returns 2.
        assert_eq!(push_out_candidate(SimTime::ZERO, &queue), Some(2));
    }

    #[test]
    fn push_out_respects_slack_deadline() {
        let t = |s| SimTime::from_secs(s);
        let queue = [
            PushOutCandidate { slack: Some(t(50)), round_trip_secs: 100.0 },
            PushOutCandidate { slack: Some(t(90)), round_trip_secs: 100.0 },
        ];
        assert_eq!(push_out_candidate(SimTime::ZERO, &queue), None);
        // Later slack qualifies once the round trip fits.
        let queue2 = [PushOutCandidate { slack: Some(t(150)), round_trip_secs: 100.0 }];
        assert_eq!(push_out_candidate(SimTime::ZERO, &queue2), Some(0));
        assert_eq!(push_out_candidate(t(60), &queue2), None, "too late now");
    }

    #[test]
    fn head_job_never_pushes_out() {
        let queue = [PushOutCandidate { slack: None, round_trip_secs: 1.0 }];
        assert_eq!(push_out_candidate(SimTime::ZERO, &queue), None);
    }
}

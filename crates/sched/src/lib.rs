//! `cloudburst-sched` — the three autonomic cloud-bursting schedulers
//! (Sec. IV of the paper) plus the IC-only baseline and the rescheduling
//! extensions sketched in Sec. IV-D.
//!
//! Schedulers are *traffic-oblivious*: they see only the current system
//! state (machine availability, queue backlogs) through estimated
//! quantities — QRSM execution-time predictions and time-of-day bandwidth
//! predictions — never the ground truth the simulation engine executes.
//!
//! * [`api`] — the [`BurstScheduler`] trait, placement decisions, and the
//!   [`LoadModel`] snapshot the engine hands to schedulers.
//! * [`estimates`] — the [`EstimateProvider`] bundling the QRSM and the
//!   bandwidth predictors into per-job estimates.
//! * [`freetime`] — the indexed free-time tracker and incremental
//!   outstanding-completions pool backing the engine's sub-linear
//!   decision loop.
//! * [`drain`] — the depth-flat hybrid FCFS drain: fluid water-fill of
//!   the deep queue prefix, exact tail-window replay on top.
//! * [`greedy`] — Algorithm 1: place each job where it finishes earliest.
//! * [`order_preserving`] — Algorithm 2: chunk for variance reduction, then
//!   burst only jobs whose EC round trip fits their slack (Eq. 2).
//! * [`sibs`] — Algorithm 3 on top of Op: size-interval bandwidth splitting.
//! * [`ic_only`] — the baseline that never bursts.
//! * [`resched`] — pull-back / push-out rescheduling triggered on idle
//!   events (the paper's Sec. IV-D mitigation for estimation errors).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod api;
pub mod drain;
pub mod estimates;
pub mod freetime;
pub mod greedy;
pub mod ic_only;
pub mod order_preserving;
pub mod resched;
pub mod sibs;

pub use api::{BatchSchedule, BurstScheduler, LoadModel, LoadModelBuf, Placement};
pub use drain::{fluid_fill_level, FluidScratch, DRAIN_WINDOW};
pub use freetime::{FreeTimeIndex, OutstandingSet};
pub use resched::eq1_slack;
pub use estimates::{EstimateProvider, ProcTimeModel};
pub use greedy::GreedyScheduler;
pub use ic_only::IcOnlyScheduler;
pub use order_preserving::OrderPreservingScheduler;
pub use sibs::SibsScheduler;

//! An indexed min-structure over machine free-times.
//!
//! The engine's decision path repeatedly asks "which machine frees
//! earliest?" while replaying an FCFS drain: the naive form is a linear
//! `min_by` scan per queued job, `O(queue × machines)` per decision. The
//! [`FreeTimeIndex`] is a flat tournament (segment) tree over the
//! free-time array: find-min is `O(1)`, committing a job onto the earliest
//! machine is `O(log machines)`, and a rebuild from a fresh running-state
//! snapshot is `O(machines)`.
//!
//! **Tie-breaking contract.** `Iterator::min_by` returns the *first*
//! element among equal minima, so every consumer replaced by this index
//! historically resolved ties toward the lowest machine index. Nodes hold
//! `(value-bits, machine-index)` packed into one integer key, so the
//! tournament minimum resolves value ties toward the lowest index by
//! construction — reports stay byte-identical to the linear scan (see the
//! equivalence tests and the engine's `#[cfg(test)]` rescan oracles).

use cloudburst_sim::SimTime;

/// Sentinel leaf for power-of-two padding; compares as +∞.
const NO_LEAF: u32 = u32::MAX;

/// A tournament node: the winning free-time's IEEE-754 bits in the high
/// 64, the winning machine index in the low 32. Free-times are
/// non-negative, and non-negative doubles order identically to their bit
/// patterns, so one integer `min` per level gives both the smaller value
/// *and* — on equal values — the smaller machine index, which is exactly
/// `Iterator::min_by`'s first-of-equals contract. One load, one branchless
/// select per level; no data-dependent branches to mispredict.
fn pack(value: f64, idx: u32) -> u128 {
    debug_assert!(!value.is_sign_negative(), "free-times are non-negative");
    ((value.to_bits() as u128) << 64) | idx as u128
}

/// Padding key: +∞ free-time, `NO_LEAF` index — loses to any real leaf.
const PAD_KEY: u128 = ((f64::INFINITY.to_bits() as u128) << 64) | NO_LEAF as u128;

/// Tournament tree over per-machine free-times (seconds).
#[derive(Clone, Debug, Default)]
pub struct FreeTimeIndex {
    /// Current free-time per machine, indexed by machine id.
    vals: Vec<f64>,
    /// Power-of-two leaf count (`>= vals.len()`).
    base: usize,
    /// `2 × base` packed winner keys; `tree[1]` is the root, leaves start
    /// at `base`.
    tree: Vec<u128>,
}

impl FreeTimeIndex {
    /// An empty index; call [`FreeTimeIndex::reset_from`] before use.
    pub fn new() -> FreeTimeIndex {
        FreeTimeIndex::default()
    }

    /// Number of machines currently indexed.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no machines are indexed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The tracked free-times, indexed by machine id.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Free-time of one machine.
    pub fn value(&self, idx: usize) -> f64 {
        self.vals[idx]
    }

    /// Rebuilds the index from a fresh free-time snapshot, reusing the
    /// existing storage (allocates only when the machine count grows past
    /// any previous capacity).
    pub fn reset_from(&mut self, free: &[f64]) {
        self.vals.clear();
        self.vals.extend_from_slice(free);
        let base = free.len().next_power_of_two().max(1);
        self.base = base;
        self.tree.clear();
        self.tree.resize(2 * base, PAD_KEY);
        for (i, &v) in free.iter().enumerate() {
            self.tree[base + i] = pack(v, i as u32);
        }
        for node in (1..base).rev() {
            self.combine(node);
        }
    }

    /// The earliest-free machine: lowest index among equal minima (the
    /// `Iterator::min_by` first-of-equals contract).
    pub fn min_index(&self) -> usize {
        debug_assert!(!self.vals.is_empty(), "min of an empty index");
        self.tree[1] as u32 as usize
    }

    /// Sets one machine's free-time and repairs the tournament path.
    pub fn set(&mut self, idx: usize, value: f64) {
        self.vals[idx] = value;
        self.tree[self.base + idx] = pack(value, idx as u32);
        let mut node = (self.base + idx) / 2;
        while node >= 1 {
            self.combine(node);
            node /= 2;
        }
    }

    /// FCFS commit: adds `cost` seconds onto the earliest-free machine
    /// (ties to the lowest index) and returns that machine's index. The
    /// arithmetic is exactly the linear scan's `free[idx] += cost`.
    // conform::hot_root
    pub fn fcfs_commit(&mut self, cost: f64) -> usize {
        let idx = self.min_index();
        let v = self.vals[idx] + cost;
        self.set(idx, v);
        idx
    }

    /// Tournament combine: the packed-key integer minimum (see [`pack`]).
    /// Padding (+∞, `NO_LEAF`) loses to any real leaf.
    fn combine(&mut self, node: usize) {
        let l = 2 * node;
        self.tree[node] = self.tree[l].min(self.tree[l + 1]);
    }
}

/// The incrementally maintained pool of outstanding estimated completions
/// (the `T_i` slack anchors of Eq. 1), replacing the per-decision rebuild
/// from the engine's `est_completion` table.
///
/// Jobs enter at admission and leave at completion via constant-time
/// swap-remove; the stored order is therefore *not* job-id order, which is
/// safe because the only consumer is the slack anchor `max(T_i)` — an
/// order-independent reduction ([`crate::api::Planner::slack`]).
#[derive(Clone, Debug, Default)]
pub struct OutstandingSet {
    /// Outstanding completion estimates, unordered.
    vals: Vec<SimTime>,
    /// Job id backing each slot of `vals` (to repair `pos` on swap-remove).
    job_at: Vec<u64>,
    /// Slot of each job id in `vals`; `usize::MAX` once completed.
    pos: Vec<usize>,
}

/// Sentinel for "job no longer outstanding".
const GONE: usize = usize::MAX;

impl OutstandingSet {
    /// An empty pool.
    pub fn new() -> OutstandingSet {
        OutstandingSet::default()
    }

    /// Number of outstanding jobs.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The outstanding completion estimates, in no particular order.
    pub fn values(&self) -> &[SimTime] {
        &self.vals
    }

    /// Registers job `id`'s completion estimate at admission. Ids must be
    /// registered in increasing dense order (the engine's FCFS id space).
    pub fn insert(&mut self, id: u64, est_completion: SimTime) {
        assert_eq!(id as usize, self.pos.len(), "ids must arrive densely in order");
        self.pos.push(self.vals.len());
        self.vals.push(est_completion);
        self.job_at.push(id);
    }

    /// Re-registers (or revises) job `id`'s estimate after a fault
    /// re-dispatch: a job stranded on a crashed machine or dead link
    /// re-enters the outstanding pool with a fresh `T_i` anchor — its old
    /// estimate was rescinded the moment the fault made it unmeetable.
    /// Updates in place when the job is still outstanding.
    pub fn reinstate(&mut self, id: u64, est_completion: SimTime) {
        let slot = self.pos[id as usize];
        if slot != GONE {
            self.vals[slot] = est_completion;
            return;
        }
        self.pos[id as usize] = self.vals.len();
        self.vals.push(est_completion);
        self.job_at.push(id);
    }

    /// Removes job `id` when its result lands. No-op if already removed.
    pub fn remove(&mut self, id: u64) {
        let slot = self.pos[id as usize];
        if slot == GONE {
            return;
        }
        self.pos[id as usize] = GONE;
        self.vals.swap_remove(slot);
        self.job_at.swap_remove(slot);
        if slot < self.vals.len() {
            self.pos[self.job_at[slot] as usize] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear-scan oracle the index replaces.
    fn linear_commit(free: &mut [f64], cost: f64) -> usize {
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("machines exist");
        free[idx] += cost;
        idx
    }

    #[test]
    fn min_breaks_ties_to_lowest_index() {
        let mut ix = FreeTimeIndex::new();
        ix.reset_from(&[5.0, 3.0, 3.0, 7.0]);
        assert_eq!(ix.min_index(), 1);
        ix.set(1, 3.5);
        assert_eq!(ix.min_index(), 2);
        ix.set(0, 3.5);
        assert_eq!(ix.min_index(), 2);
        ix.set(2, 9.0);
        assert_eq!(ix.min_index(), 0, "equal 3.5s: lowest index wins");
    }

    #[test]
    fn fcfs_commit_matches_linear_scan_exactly() {
        // Deterministic pseudo-random drains over awkward pool sizes
        // (non-powers of two included).
        for m in [1usize, 2, 3, 5, 8, 13, 64, 100] {
            let mut free: Vec<f64> = (0..m).map(|i| ((i * 37) % 11) as f64 * 0.5).collect();
            let mut ix = FreeTimeIndex::new();
            ix.reset_from(&free);
            let mut state = 0x9e37_79b9_u64;
            for step in 0..400 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let cost = ((state >> 33) % 1000) as f64 / 7.0;
                let want_idx = linear_commit(&mut free, cost);
                let got_idx = ix.fcfs_commit(cost);
                assert_eq!(got_idx, want_idx, "m={m} step={step}");
                // Bitwise equality, not approximate: the engine's golden
                // reports depend on identical f64 arithmetic.
                assert_eq!(ix.values(), &free[..], "m={m} step={step}");
            }
        }
    }

    #[test]
    fn reset_reuses_storage_across_sizes() {
        let mut ix = FreeTimeIndex::new();
        ix.reset_from(&[1.0, 2.0, 3.0]);
        assert_eq!(ix.len(), 3);
        ix.reset_from(&[4.0]);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.min_index(), 0);
        ix.reset_from(&[]);
        assert!(ix.is_empty());
    }

    #[test]
    fn outstanding_set_tracks_insert_remove() {
        let t = SimTime::from_secs;
        let mut s = OutstandingSet::new();
        assert!(s.is_empty());
        s.insert(0, t(10));
        s.insert(1, t(30));
        s.insert(2, t(20));
        assert_eq!(s.len(), 3);
        assert_eq!(s.values().iter().copied().max(), Some(t(30)));
        s.remove(1);
        assert_eq!(s.values().iter().copied().max(), Some(t(20)));
        s.remove(1); // idempotent
        s.remove(0);
        s.remove(2);
        assert!(s.is_empty());
        s.insert(3, t(99));
        assert_eq!(s.values(), &[t(99)]);
    }

    #[test]
    fn reinstate_revises_or_reinserts() {
        let t = SimTime::from_secs;
        let mut s = OutstandingSet::new();
        s.insert(0, t(10));
        s.insert(1, t(20));
        // Still outstanding: estimate revised in place.
        s.reinstate(0, t(50));
        assert_eq!(s.len(), 2);
        assert_eq!(s.values().iter().copied().max(), Some(t(50)));
        // Completed then re-dispatched: re-enters the pool.
        s.remove(1);
        assert_eq!(s.len(), 1);
        s.reinstate(1, t(70));
        assert_eq!(s.len(), 2);
        assert_eq!(s.values().iter().copied().max(), Some(t(70)));
        // Normal completion still removes it.
        s.remove(1);
        assert_eq!(s.values(), &[t(50)]);
    }

    #[test]
    fn outstanding_set_matches_rebuilt_pool_under_churn() {
        // Oracle: the old per-decision rebuild from an Option table.
        let t = SimTime::from_secs;
        let mut table: Vec<Option<SimTime>> = Vec::new();
        let mut s = OutstandingSet::new();
        let mut state = 7u64;
        for id in 0..500u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let est = t(1 + (state >> 40));
            table.push(Some(est));
            s.insert(id, est);
            // Complete a pseudo-random earlier job half the time.
            if state.is_multiple_of(2) {
                let victim = (state >> 8) % (id + 1);
                table[victim as usize] = None;
                s.remove(victim);
            }
            let mut want: Vec<SimTime> = table.iter().flatten().copied().collect();
            let mut got: Vec<SimTime> = s.values().to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "id={id}");
        }
    }
}

//! Depth-flat FCFS drain: fluid prefix, exact tail window.
//!
//! [`FreeTimeIndex`](crate::FreeTimeIndex) made one drain *commit* cheap
//! (`O(log machines)`), but a decision still replayed the whole queue —
//! `O(queue × log machines)` — so decision throughput fell linearly with
//! backlog. An *exact* incremental drain cannot exist under the engine's
//! semantics: the per-machine bases shift every decision as `now` advances
//! (and f64 drain arithmetic does not commute with that shift), and a
//! mid-queue removal re-routes every later job's argmin assignment. What
//! can be flat is a *hybrid*:
//!
//! * the first `queue − DRAIN_WINDOW` jobs — work so far ahead that its
//!   machine-level granularity cannot matter to any decision — drain as a
//!   **fluid**: their total estimated cost (an integer-tick aggregate the
//!   [`Cloud`](../../cloudburst_cluster/struct.Cloud.html) maintains in
//!   O(1) per queue mutation) water-fills the live machines up to one
//!   common level λ;
//! * the last [`DRAIN_WINDOW`] jobs replay **exactly** as before, on top
//!   of the filled bases, through the tournament index.
//!
//! At or below the window the hybrid *is* the original full replay,
//! bit for bit — every paper-scale run, golden fixture, and repro
//! experiment is untouched. Beyond it, one decision costs
//! `O(machines log machines + DRAIN_WINDOW log machines)`, independent of
//! queue depth.
//!
//! λ is also the Eq. 1 anchor re-base: the push-out slack anchor
//! `ahead_max` of the whole (depth-unbounded) prefix collapses into the
//! single scalar `max(live base max, λ)`, so the anchor moving is an O(1)
//! re-base instead of a re-key of every queued entry.
//!
//! **Determinism.** The fill sorts base *values* via `f64::total_cmp`
//! (free-times are never NaN, and equal values contribute identically to
//! the prefix sums regardless of tie order), and the level itself is the
//! pure left-to-right fold [`fluid_fill_level`] — shared verbatim by the
//! engine's production path and its `#[cfg(test)]` rescan oracles so the
//! two cannot drift.

/// Number of queue-tail jobs the hybrid drain replays exactly. Sized an
/// order of magnitude above every paper-scale scenario (≈ 15–60 jobs per
/// batch over 7 batches, ≲ 450 queued even with chunking), so behaviour
/// below megascale is bit-identical to the pre-windowed engine.
pub const DRAIN_WINDOW: usize = 512;

/// The water-fill level λ: the smallest level with
/// `Σ_i max(0, λ − base_i) = total_secs` over `sorted_bases` (ascending).
/// Pure left-to-right fold — one shared arithmetic sequence for the
/// production fill and the rescan oracles. `sorted_bases` must be
/// non-empty, sorted, and NaN-free.
#[inline]
pub fn fluid_fill_level(sorted_bases: &[f64], total_secs: f64) -> f64 {
    debug_assert!(!sorted_bases.is_empty(), "water-fill needs a live machine");
    let n = sorted_bases.len();
    let mut prefix = 0.0f64;
    for k in 0..n {
        debug_assert!(k == 0 || sorted_bases[k - 1] <= sorted_bases[k], "bases must be sorted");
        prefix += sorted_bases[k];
        // Level if exactly machines 0..=k fill: valid once it no longer
        // spills over the next base (or there is no next base).
        let level = (total_secs + prefix) / (k + 1) as f64;
        if k + 1 == n || level <= sorted_bases[k + 1] {
            return level;
        }
    }
    unreachable!("the k + 1 == n arm always returns")
}

/// Reusable scratch for the fluid prefix fill — persistent on the engine
/// world so steady-state decisions stay allocation-free once warm.
#[derive(Clone, Debug, Default)]
pub struct FluidScratch {
    /// Live base values, sorted ascending for the level sweep.
    bases: Vec<f64>,
}

impl FluidScratch {
    /// An empty scratch.
    pub fn new() -> FluidScratch {
        FluidScratch::default()
    }

    /// Water-fills `total_secs` of fluid work onto the live entries of
    /// `free` (those `< dead_threshold`): every live entry below the
    /// resulting level λ is raised to exactly λ; entries at or above λ,
    /// and dead sentinels, are untouched. Returns `Some(λ)`, or `None` —
    /// with `free` unmodified — when no live entry exists (the caller
    /// falls back to the exact replay). `O(live log live)` from the sort;
    /// allocation-free once the scratch has warmed to the pool size.
    ///
    /// A pathological `total_secs` can push λ past `dead_threshold`, at
    /// which point filled machines read as dead to live-max filters —
    /// conservative (no cushion is claimed from them), never unsound.
    // conform::hot_root
    pub fn fill(&mut self, free: &mut [f64], total_secs: f64, dead_threshold: f64) -> Option<f64> {
        self.bases.clear();
        self.bases.extend(free.iter().copied().filter(|v| *v < dead_threshold));
        if self.bases.is_empty() {
            return None;
        }
        self.bases.sort_unstable_by(f64::total_cmp);
        let level = fluid_fill_level(&self.bases, total_secs);
        for v in free.iter_mut() {
            if *v < dead_threshold && *v < level {
                *v = level;
            }
        }
        Some(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bisection reference for the water-fill level.
    fn level_by_bisection(bases: &[f64], total: f64) -> f64 {
        let poured = |level: f64| -> f64 {
            bases.iter().map(|b| (level - b).max(0.0)).sum()
        };
        let (mut lo, mut hi) = (bases[0], bases[bases.len() - 1] + total + 1.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if poured(mid) < total {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    #[test]
    fn level_matches_hand_cases() {
        // One machine: all fluid lands on it.
        assert_eq!(fluid_fill_level(&[3.0], 5.0), 8.0);
        // Fill the low machine up to the next base, then share.
        assert_eq!(fluid_fill_level(&[0.0, 10.0], 1.0), 1.0);
        assert_eq!(fluid_fill_level(&[0.0, 1.0], 5.0), 3.0);
        // Zero fluid: the level sits at the lowest base (a no-op fill).
        assert_eq!(fluid_fill_level(&[2.0, 7.0], 0.0), 2.0);
        assert_eq!(fluid_fill_level(&[2.0, 2.0], 0.0), 2.0);
    }

    #[test]
    fn fill_raises_only_live_entries_below_level() {
        const DEAD: f64 = 1e9;
        let mut free = vec![1.0, DEAD, 4.0, 0.0];
        let mut fs = FluidScratch::new();
        let level = fs.fill(&mut free, 7.0, DEAD).expect("live machines exist");
        assert_eq!(level, 4.0);
        assert_eq!(free, vec![4.0, DEAD, 4.0, 4.0]);
        // Entries above the level are untouched.
        let mut free2 = vec![0.0, 9.0];
        let l2 = fs.fill(&mut free2, 2.0, DEAD).unwrap();
        assert_eq!(l2, 2.0);
        assert_eq!(free2, vec![2.0, 9.0]);
    }

    #[test]
    fn fill_with_no_live_machines_is_none_and_untouched() {
        const DEAD: f64 = 1e9;
        let mut free = vec![DEAD, DEAD];
        assert_eq!(FluidScratch::new().fill(&mut free, 100.0, DEAD), None);
        assert_eq!(free, vec![DEAD, DEAD]);
    }

    #[test]
    fn fill_is_deterministic_bitwise() {
        const DEAD: f64 = 1e9;
        let base = vec![0.3, 1.7, DEAD, 0.3, 22.1, 5.5];
        let mut a = base.clone();
        let mut b = base.clone();
        let la = FluidScratch::new().fill(&mut a, 123.456, DEAD);
        let lb = FluidScratch::new().fill(&mut b, 123.456, DEAD);
        assert_eq!(la.map(f64::to_bits), lb.map(f64::to_bits));
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    proptest! {
        #[test]
        fn level_conserves_fluid_and_matches_bisection(
            mut bases in proptest::collection::vec(0.0f64..1000.0, 1..40),
            total in 0.0f64..10_000.0,
        ) {
            bases.sort_unstable_by(f64::total_cmp);
            let level = fluid_fill_level(&bases, total);
            // Conservation: the poured volume equals the total.
            let poured: f64 = bases.iter().map(|b| (level - b).max(0.0)).sum();
            prop_assert!((poured - total).abs() <= 1e-6 * total.max(1.0),
                "poured {poured} vs total {total}");
            // And the closed form agrees with a bisection solve.
            let reference = level_by_bisection(&bases, total);
            prop_assert!((level - reference).abs() <= 1e-6 * level.abs().max(1.0),
                "level {level} vs bisection {reference}");
            // The level never sits below the lowest base.
            prop_assert!(level >= bases[0]);
        }
    }
}

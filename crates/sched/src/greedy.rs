//! The Greedy scheduler (Algorithm 1).
//!
//! For each job in batch order, estimate `ft^ic` and `ft^ec` and place the
//! job wherever it is expected to complete earliest. Ties go to the IC
//! (line 4's `t_ic ≤ t_ec`). Simple, but bursted jobs can land on the
//! critical path, making the schedule fragile to estimation errors and
//! bandwidth dips (Sec. IV-D).

use cloudburst_workload::Job;

use crate::api::{BatchSchedule, BurstScheduler, LoadModel, Placement, Planner};
use crate::estimates::EstimateProvider;

/// Algorithm 1: job-level earliest-finish-time placement.
#[derive(Clone, Debug, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Creates the scheduler.
    pub fn new() -> GreedyScheduler {
        GreedyScheduler
    }
}

impl BurstScheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn schedule_batch(
        &mut self,
        batch: Vec<Job>,
        load: &LoadModel<'_>,
        est: &EstimateProvider,
    ) -> BatchSchedule {
        let mut planner = Planner::new(load, est);
        let mut jobs = Vec::with_capacity(batch.len());
        for job in batch {
            let t_ic = planner.ft_ic(&job);
            let t_ec = planner.ft_ec(&job);
            // Line 4: t_ic ≤ t_ec → IC, else EC.
            let placement = if t_ic <= t_ec { Placement::Internal } else { Placement::External };
            planner.commit(&job, placement);
            jobs.push((job, placement));
        }
        BatchSchedule { jobs, sibs: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LoadModelBuf;
    use crate::estimates::tests_support::{job_with_id, provider};
    use cloudburst_sim::SimTime;

    #[test]
    fn idle_system_keeps_jobs_internal() {
        // With all machines idle, ft_ic = exec while ft_ec adds transfers:
        // nothing bursts.
        let est = provider();
        let batch: Vec<_> = (0..4).map(|i| job_with_id(i, 60)).collect();
        let buf = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
        let s = GreedyScheduler::new().schedule_batch(batch, &buf.as_model(), &est);
        assert_eq!(s.n_bursted(), 0);
        assert_eq!(s.jobs.len(), 4);
    }

    #[test]
    fn loaded_ic_pushes_overflow_to_ec() {
        // One IC machine with a deep backlog: later jobs finish earlier via
        // the EC round trip.
        let est = provider();
        let batch: Vec<_> = (0..6).map(|i| job_with_id(i, 40)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 1, 2);
        buf.ic_free_secs = vec![20_000.0];
        let s = GreedyScheduler::new().schedule_batch(batch, &buf.as_model(), &est);
        assert_eq!(s.n_bursted(), 6, "everything beats a 20k-second backlog");
    }

    #[test]
    fn placement_is_recursive_not_independent() {
        // With a moderately loaded IC, the first jobs fill the EC pipe until
        // bursting stops paying off — the planner's commits must make later
        // decisions differ from earlier ones.
        let est = provider();
        let batch: Vec<_> = (0..10).map(|i| job_with_id(i, 80)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 2, 1);
        buf.ic_free_secs = vec![1_500.0, 1_500.0];
        let s = GreedyScheduler::new().schedule_batch(batch, &buf.as_model(), &est);
        let placements: Vec<_> = s.jobs.iter().map(|(_, p)| *p).collect();
        let n_ec = s.n_bursted();
        assert!(n_ec > 0, "some jobs should burst: {placements:?}");
        assert!(n_ec < 10, "not all jobs should burst: {placements:?}");
    }

    #[test]
    fn order_is_preserved() {
        let est = provider();
        let batch: Vec<_> = (0..5).map(|i| job_with_id(i, 30 + i * 10)).collect();
        let ids: Vec<_> = batch.iter().map(|j| j.id).collect();
        let buf = LoadModelBuf::idle(SimTime::ZERO, 2, 1);
        let s = GreedyScheduler::new().schedule_batch(batch, &buf.as_model(), &est);
        let out_ids: Vec<_> = s.jobs.iter().map(|(j, _)| j.id).collect();
        assert_eq!(ids, out_ids);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(GreedyScheduler::new().name(), "greedy");
    }
}

//! Scheduler-facing types: placement decisions, the system-state snapshot,
//! and the planning helper that turns estimates into finish times.

use cloudburst_net::SibsBounds;
use cloudburst_sim::{SimDuration, SimTime};
use cloudburst_workload::Job;
use serde::{Deserialize, Serialize};

use crate::estimates::EstimateProvider;

/// Where a job was placed (the decision variable `d_i` of Sec. II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Run in the internal cloud.
    Internal,
    /// Burst to the external cloud.
    External,
}

/// Snapshot of system state the engine hands to a scheduler at a decision
/// point. All quantities are *estimates or observables* — never ground
/// truth.
///
/// The slice fields *borrow* engine-owned (or [`LoadModelBuf`]-owned)
/// storage: building a snapshot per decision is allocation-free on the
/// engine's steady-state path.
#[derive(Clone, Copy, Debug)]
pub struct LoadModel<'a> {
    /// Decision instant.
    pub now: SimTime,
    /// Estimated seconds until each IC machine is free, including its
    /// queued share (0 = idle). One entry per machine.
    pub ic_free_secs: &'a [f64],
    /// Same for the EC machines.
    pub ec_free_secs: &'a [f64],
    /// Bytes queued ahead in the upload direction.
    pub upload_backlog_bytes: u64,
    /// Bytes queued ahead in the download direction.
    pub download_backlog_bytes: u64,
    /// Estimated completion instants of every previously scheduled,
    /// not-yet-finished job (the scheduler's own past estimates) — the
    /// `T_i` pool for slack computation across batch boundaries. Unordered.
    pub outstanding_est_completions: &'a [SimTime],
}

impl LoadModel<'_> {
    /// `iload` of Algorithm 3: the average estimated seconds of compute
    /// already committed per IC machine.
    pub fn ic_initial_load_secs(&self) -> f64 {
        if self.ic_free_secs.is_empty() {
            return 0.0;
        }
        self.ic_free_secs.iter().sum::<f64>() / self.ic_free_secs.len() as f64
    }
}

/// Owned backing storage for a [`LoadModel`]. The engine keeps one of
/// these and refreshes it in place each decision; tests build one, tweak
/// the fields, and call [`LoadModelBuf::as_model`].
#[derive(Clone, Debug, Default)]
pub struct LoadModelBuf {
    /// Decision instant.
    pub now: SimTime,
    /// Per-IC-machine estimated seconds until free.
    pub ic_free_secs: Vec<f64>,
    /// Per-EC-machine estimated seconds until free.
    pub ec_free_secs: Vec<f64>,
    /// Bytes queued ahead in the upload direction.
    pub upload_backlog_bytes: u64,
    /// Bytes queued ahead in the download direction.
    pub download_backlog_bytes: u64,
    /// Outstanding estimated completion instants, unordered.
    pub outstanding_est_completions: Vec<SimTime>,
}

impl LoadModelBuf {
    /// An idle system with the given pool sizes (convenient for tests).
    pub fn idle(now: SimTime, n_ic: usize, n_ec: usize) -> LoadModelBuf {
        LoadModelBuf {
            now,
            ic_free_secs: vec![0.0; n_ic],
            ec_free_secs: vec![0.0; n_ec],
            upload_backlog_bytes: 0,
            download_backlog_bytes: 0,
            outstanding_est_completions: Vec::new(),
        }
    }

    /// The borrowed snapshot view over this storage.
    pub fn as_model(&self) -> LoadModel<'_> {
        LoadModel {
            now: self.now,
            ic_free_secs: &self.ic_free_secs,
            ec_free_secs: &self.ec_free_secs,
            upload_backlog_bytes: self.upload_backlog_bytes,
            download_backlog_bytes: self.download_backlog_bytes,
            outstanding_est_completions: &self.outstanding_est_completions,
        }
    }
}

/// The outcome of scheduling one batch.
#[derive(Clone, Debug)]
pub struct BatchSchedule {
    /// Jobs (possibly expanded by chunking) in queue order, with their
    /// placements. Ids are provisional; the engine re-indexes on enqueue.
    pub jobs: Vec<(Job, Placement)>,
    /// Size-interval bounds, when the scheduler uses SIBS upload queues.
    pub sibs: Option<SibsBounds>,
}

impl BatchSchedule {
    /// Number of jobs bursted to the EC.
    pub fn n_bursted(&self) -> usize {
        self.jobs.iter().filter(|(_, p)| *p == Placement::External).count()
    }
}

/// A cloud-bursting scheduler: turns a batch plus a state snapshot into
/// placements (Sec. IV: "when, where and how much to burst out").
pub trait BurstScheduler {
    /// Short label used in reports ("greedy", "op", "op+sibs", "ic-only").
    fn name(&self) -> &'static str;

    /// Schedules one arriving batch. May split jobs (chunking); must return
    /// every input job (or its chunks) exactly once, preserving queue order.
    fn schedule_batch(
        &mut self,
        batch: Vec<Job>,
        load: &LoadModel<'_>,
        est: &EstimateProvider,
    ) -> BatchSchedule;

    /// Engine hook: the current `(small, medium, large)` upload-queue byte
    /// backlogs, refreshed before each batch. Only SIBS cares; the default
    /// ignores it.
    fn set_upload_queue_state(&mut self, _queued: (u64, u64, u64)) {}
}

/// Incremental finish-time planner shared by the schedulers.
///
/// Wraps a [`LoadModel`] and *commits* each placement as it is decided, so
/// job `i+1`'s estimates see job `i`'s load — the recursive structure of
/// Algorithms 1 and 2.
#[derive(Clone, Debug)]
pub struct Planner<'a> {
    est: &'a EstimateProvider,
    now: SimTime,
    ic_free: Vec<f64>,
    ec_free: Vec<f64>,
    upload_backlog_secs: f64,
    /// Eq. 1's slack anchor: `max` estimated completion over everything
    /// scheduled and unfinished, including commitments made through this
    /// planner. Maintained as a running max — `max` is order-independent,
    /// so folding on construction and on each commit is exactly the old
    /// full-pool rescan, without holding (or re-scanning) the pool itself:
    /// the per-job `slack()` call in Algorithm 2's batch loop was the last
    /// `O(outstanding)` step on the decision path at megascale.
    slack_anchor: Option<SimTime>,
}

impl<'a> Planner<'a> {
    /// Builds a planner over the current load snapshot. The planner owns
    /// its working copies — it runs once per *batch*, not per decision, so
    /// these clones are off the steady-state hot path.
    pub fn new(load: &LoadModel<'_>, est: &'a EstimateProvider) -> Planner<'a> {
        let upload_backlog_secs = if load.upload_backlog_bytes > 0 {
            est.upload_secs(load.now, load.upload_backlog_bytes)
        } else {
            0.0
        };
        Planner {
            est,
            now: load.now,
            ic_free: load.ic_free_secs.to_vec(),
            ec_free: load.ec_free_secs.to_vec(),
            upload_backlog_secs,
            slack_anchor: load.outstanding_est_completions.iter().copied().max(),
        }
    }

    /// `ft^ic(i, S)`: estimated completion instant if `job` were scheduled
    /// in the IC right now.
    pub fn ft_ic(&self, job: &Job) -> SimTime {
        let exec = self.est.exec_secs_ic(job);
        let free = self.ic_free.iter().copied().fold(f64::INFINITY, f64::min);
        self.now + SimDuration::from_secs_f64(free + exec)
    }

    /// `ft^ec(i, S)`: estimated completion instant if `job` were bursted
    /// right now — upload-queue wait, upload, EC queue wait, remote
    /// execution, result download.
    pub fn ft_ec(&self, job: &Job) -> SimTime {
        let (wait, up, exec, down) = self.est.round_trip_parts(self.now, job, self.upload_backlog_secs);
        let arrive_ec = wait + up;
        let ec_free = self.ec_free.iter().copied().fold(f64::INFINITY, f64::min);
        let start_ec = arrive_ec.max(ec_free);
        self.now + SimDuration::from_secs_f64(start_ec + exec + down)
    }

    /// The EC round-trip *duration* components for a burst starting now,
    /// `(upload_wait, upload, exec, download)` — inputs to Eq. 2.
    pub fn round_trip_parts(&self, job: &Job) -> (f64, f64, f64, f64) {
        self.est.round_trip_parts(self.now, job, self.upload_backlog_secs)
    }

    /// Eq. 1: the slack anchor — max estimated completion of all work ahead
    /// of the next job. `None` when nothing is ahead.
    pub fn slack(&self) -> Option<SimTime> {
        self.slack_anchor
    }

    /// Commits `job` to the given placement, updating the planned load and
    /// the estimated-completion pool. Returns the job's estimated
    /// completion instant.
    pub fn commit(&mut self, job: &Job, placement: Placement) -> SimTime {
        let ft = match placement {
            Placement::Internal => {
                let ft = self.ft_ic(job);
                let exec = self.est.exec_secs_ic(job);
                let (idx, _) = self
                    .ic_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN load"))
                    .expect("IC has machines");
                self.ic_free[idx] += exec;
                ft
            }
            Placement::External => {
                let ft = self.ft_ec(job);
                let (wait, up, exec, _down) = self.round_trip_parts(job);
                let arrive_ec = wait + up;
                self.upload_backlog_secs += up;
                let (idx, _) = self
                    .ec_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN load"))
                    .expect("EC has machines");
                self.ec_free[idx] = self.ec_free[idx].max(arrive_ec) + exec;
                ft
            }
        };
        self.slack_anchor = Some(self.slack_anchor.map_or(ft, |a| a.max(ft)));
        ft
    }

    /// Decision instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current planned upload backlog in seconds.
    pub fn upload_backlog_secs(&self) -> f64 {
        self.upload_backlog_secs
    }

    /// Planned seconds until each IC machine frees.
    pub fn ic_free_secs(&self) -> &[f64] {
        &self.ic_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimates::tests_support::provider_and_jobs;

    #[test]
    fn ft_ic_uses_earliest_free_machine() {
        let (est, jobs) = provider_and_jobs(&[50, 50]);
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 2, 1);
        buf.ic_free_secs = vec![100.0, 10.0];
        let planner = Planner::new(&buf.as_model(), &est);
        let ft = planner.ft_ic(&jobs[0]);
        let exec = est.exec_secs(&jobs[0]);
        assert!((ft.as_secs_f64() - (10.0 + exec)).abs() < 1e-6);
    }

    #[test]
    fn commit_internal_loads_the_machine() {
        let (est, jobs) = provider_and_jobs(&[50, 50]);
        let buf = LoadModelBuf::idle(SimTime::ZERO, 1, 1);
        let mut planner = Planner::new(&buf.as_model(), &est);
        let ft1 = planner.commit(&jobs[0], Placement::Internal);
        let ft2 = planner.ft_ic(&jobs[1]);
        assert!(ft2 > ft1, "second job queues behind the first");
    }

    #[test]
    fn ft_ec_includes_all_four_legs() {
        let (est, jobs) = provider_and_jobs(&[100]);
        let buf = LoadModelBuf::idle(SimTime::ZERO, 1, 1);
        let planner = Planner::new(&buf.as_model(), &est);
        let (wait, up, exec, down) = planner.round_trip_parts(&jobs[0]);
        assert_eq!(wait, 0.0);
        let ft = planner.ft_ec(&jobs[0]);
        assert!((ft.as_secs_f64() - (up + exec + down)).abs() < 1e-6);
    }

    #[test]
    fn commit_external_grows_upload_backlog() {
        let (est, jobs) = provider_and_jobs(&[100, 100]);
        let buf = LoadModelBuf::idle(SimTime::ZERO, 1, 2);
        let mut planner = Planner::new(&buf.as_model(), &est);
        assert_eq!(planner.upload_backlog_secs(), 0.0);
        planner.commit(&jobs[0], Placement::External);
        assert!(planner.upload_backlog_secs() > 0.0);
        // Second burst sees the first upload ahead of it.
        let ft2 = planner.ft_ec(&jobs[1]);
        let mut fresh = Planner::new(&buf.as_model(), &est);
        let ft2_fresh = fresh.ft_ec(&jobs[1]);
        assert!(ft2 > ft2_fresh);
        let _ = &mut fresh;
    }

    #[test]
    fn slack_tracks_commitments_and_outstanding_work() {
        let (est, jobs) = provider_and_jobs(&[50, 50]);
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 4, 1);
        assert!(Planner::new(&buf.as_model(), &est).slack().is_none());
        buf.outstanding_est_completions = vec![SimTime::from_secs(500)];
        let mut planner = Planner::new(&buf.as_model(), &est);
        assert_eq!(planner.slack(), Some(SimTime::from_secs(500)));
        let ft = planner.commit(&jobs[0], Placement::Internal);
        assert_eq!(planner.slack(), Some(ft.max(SimTime::from_secs(500))));
        let _ = jobs;
    }

    #[test]
    fn idle_load_model_helpers() {
        let buf = LoadModelBuf::idle(SimTime::from_secs(5), 8, 2);
        let load = buf.as_model();
        assert_eq!(load.ic_free_secs.len(), 8);
        assert_eq!(load.ic_initial_load_secs(), 0.0);
        let loaded = LoadModelBuf {
            ic_free_secs: vec![10.0, 30.0],
            ..LoadModelBuf::idle(SimTime::ZERO, 2, 1)
        };
        assert_eq!(loaded.as_model().ic_initial_load_secs(), 20.0);
    }
}

//! Order-Preserving scheduling with Size-Interval Bandwidth Splitting
//! (Algorithm 3 layered on Algorithm 2).
//!
//! Placements are exactly the Order-Preserving scheduler's; additionally
//! the batch's burst candidates are analysed per Algorithm 3 to produce the
//! size-interval bounds `(s_bound, m_bound)` that the engine uses to route
//! uploads through the small/medium/large queues. Isolating small uploads
//! from large ones raises the EC arrival rate and hence EC utilization
//! (Sec. V-B-4: EC 44 % → ~58 % on the large bucket).

use cloudburst_net::queues::SibsCandidate;
use cloudburst_net::sibs_bounds;
use cloudburst_workload::Job;

use crate::api::{BatchSchedule, BurstScheduler, LoadModel, Planner};
use crate::estimates::EstimateProvider;
use crate::order_preserving::OrderPreservingScheduler;

/// Algorithm 3: Op placements plus size-interval upload bounds.
#[derive(Clone, Debug)]
pub struct SibsScheduler {
    inner: OrderPreservingScheduler,
    /// Bytes currently queued in the (small, medium, large) upload queues —
    /// refreshed by the engine before each batch via
    /// [`SibsScheduler::set_queued_bytes`].
    queued_bytes: (u64, u64, u64),
}

impl SibsScheduler {
    /// Wraps an Order-Preserving scheduler.
    pub fn new(inner: OrderPreservingScheduler) -> SibsScheduler {
        SibsScheduler { inner, queued_bytes: (0, 0, 0) }
    }

    /// Paper-default configuration.
    pub fn default_with_seed(seed: u64) -> SibsScheduler {
        SibsScheduler::new(OrderPreservingScheduler::default_with_seed(seed))
    }

    /// Engine hook: the current `s_up/m_up/l_up` byte backlogs (Algorithm 3
    /// inputs).
    pub fn set_queued_bytes(&mut self, queued: (u64, u64, u64)) {
        self.queued_bytes = queued;
    }
}

impl BurstScheduler for SibsScheduler {
    fn name(&self) -> &'static str {
        "op+sibs"
    }

    fn set_upload_queue_state(&mut self, queued: (u64, u64, u64)) {
        self.set_queued_bytes(queued);
    }

    fn schedule_batch(
        &mut self,
        batch: Vec<Job>,
        load: &LoadModel<'_>,
        est: &EstimateProvider,
    ) -> BatchSchedule {
        let mut schedule = self.inner.schedule_batch(batch, load, est);
        // Algorithm 3 on the (chunk-expanded) batch: estimates under no
        // contention, IC initial load and processor count from the snapshot.
        let planner = Planner::new(load, est);
        let candidates: Vec<SibsCandidate> = schedule
            .jobs
            .iter()
            .map(|(job, _)| {
                let (_wait, up, exec, down) = planner.round_trip_parts(job);
                SibsCandidate {
                    size: job.input_bytes(),
                    t_up: up,
                    e_ec: exec,
                    t_down: down,
                    e_ic: est.exec_secs_ic(job),
                }
            })
            .collect();
        schedule.sibs = sibs_bounds(
            &candidates,
            load.ic_initial_load_secs(),
            load.ic_free_secs.len().max(1),
            self.queued_bytes,
        );
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{LoadModelBuf, Placement};
    use crate::estimates::tests_support::{job_with_id, provider};
    use cloudburst_net::SizeClass;
    use cloudburst_sim::SimTime;

    fn loaded_model() -> LoadModelBuf {
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 4, 2);
        buf.ic_free_secs = vec![4_000.0; 4];
        buf.outstanding_est_completions = vec![SimTime::from_secs(4_000)];
        buf
    }

    #[test]
    fn placements_match_op() {
        let est = provider();
        let batch: Vec<_> = (0..8).map(|i| job_with_id(i, 20 + (i % 4) * 60)).collect();
        let load = loaded_model();
        let mut sibs = SibsScheduler::default_with_seed(3);
        let mut op = crate::order_preserving::OrderPreservingScheduler::default_with_seed(3);
        let a = sibs.schedule_batch(batch.clone(), &load.as_model(), &est);
        let b = op.schedule_batch(batch, &load.as_model(), &est);
        let pa: Vec<Placement> = a.jobs.iter().map(|(_, p)| *p).collect();
        let pb: Vec<Placement> = b.jobs.iter().map(|(_, p)| *p).collect();
        assert_eq!(pa, pb, "SIBS must not change placements, only routing");
    }

    #[test]
    fn bounds_appear_when_jobs_qualify() {
        let est = provider();
        let batch: Vec<_> = (0..9).map(|i| job_with_id(i, 10 + i * 30)).collect();
        let load = loaded_model();
        let mut sibs = SibsScheduler::default_with_seed(3);
        let s = sibs.schedule_batch(batch, &load.as_model(), &est);
        let bounds = s.sibs.expect("deep backlog yields burst candidates");
        assert!(bounds.s_bound <= bounds.m_bound);
        // The bounds classify the batch into non-empty small class at least.
        let n_small = s
            .jobs
            .iter()
            .filter(|(j, _)| bounds.classify(j.input_bytes()) == SizeClass::Small)
            .count();
        assert!(n_small > 0);
    }

    #[test]
    fn no_candidates_no_bounds() {
        let est = provider();
        let batch: Vec<_> = (0..3).map(|i| job_with_id(i, 30)).collect();
        // Idle system: EC completion never beats an empty IC → no candidates.
        let load = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
        let mut sibs = SibsScheduler::default_with_seed(3);
        let s = sibs.schedule_batch(batch, &load.as_model(), &est);
        assert!(s.sibs.is_none(), "defaults to a single interval");
        assert_eq!(sibs.name(), "op+sibs");
    }

    #[test]
    fn queued_bytes_shift_bounds() {
        let est = provider();
        let batch: Vec<_> = (0..9).map(|i| job_with_id(i, 10 + i * 30)).collect();
        let load = loaded_model();
        let mut balanced = SibsScheduler::default_with_seed(3);
        let b1 = balanced.schedule_batch(batch.clone(), &load.as_model(), &est).sibs.unwrap();
        let mut stuffed = SibsScheduler::default_with_seed(3);
        stuffed.set_queued_bytes((500_000_000, 0, 0));
        let b2 = stuffed.schedule_batch(batch, &load.as_model(), &est).sibs.unwrap();
        assert!(b2.s_bound <= b1.s_bound, "a full small queue shrinks its share");
    }
}

//! The estimate provider: every quantity a scheduler is allowed to see.
//!
//! Bundles the QRSM processing-time model (Sec. III-A-1) with the upload and
//! download bandwidth predictors and thread tuners (Sec. III-A-2). The
//! engine updates it from observations (completed executions feed the QRSM
//! window; completed transfers feed the EWMAs); schedulers query it.

use cloudburst_net::link::DEFAULT_KAPPA;
use cloudburst_net::{BandwidthEstimator, ThreadTuner};
use cloudburst_qrsm::{ClassedModel, QrsModel};
use cloudburst_sim::SimTime;
use cloudburst_workload::Job;

/// The processing-time model behind the provider: one pooled QRSM, or the
/// multi-job-class extension (per-class models with a pooled fallback).
#[derive(Clone, Debug)]
pub enum ProcTimeModel {
    /// A single response surface for all classes (the paper's evaluation).
    Pooled(QrsModel),
    /// Per-class specializations (conclusion / future work).
    PerClass(ClassedModel),
}

impl ProcTimeModel {
    /// Predicted standard-machine seconds for a job of `class`.
    pub fn predict(&self, class: u64, x: &[f64]) -> f64 {
        match self {
            ProcTimeModel::Pooled(m) => m.predict(x),
            ProcTimeModel::PerClass(m) => m.predict(class, x),
        }
    }

    /// Routes an observed `(class, features, seconds)` into the model(s).
    pub fn observe(&mut self, class: u64, x: &[f64], y: f64) {
        match self {
            ProcTimeModel::Pooled(m) => {
                m.observe(x, y);
            }
            ProcTimeModel::PerClass(m) => m.observe(class, x, y),
        }
    }

    /// Routes an observation like [`ProcTimeModel::observe`] but defers the
    /// coefficient refit to the next [`ProcTimeModel::flush_refits`]. The
    /// sliding-window rank-1 update lands immediately; the `O(terms³)`
    /// solve runs once at the barrier where predictions are next read,
    /// bitwise identical to eager per-observation refits at that point
    /// (see `QrsModel::observe_queued`).
    pub fn observe_queued(&mut self, class: u64, x: &[f64], y: f64) {
        match self {
            ProcTimeModel::Pooled(m) => m.observe_queued(x, y),
            ProcTimeModel::PerClass(m) => m.observe_queued(class, x, y),
        }
    }

    /// Flushes any refits deferred by [`ProcTimeModel::observe_queued`].
    /// One branch when nothing is pending. Returns `true` if a refit ran.
    pub fn flush_refits(&mut self) -> bool {
        match self {
            ProcTimeModel::Pooled(m) => m.flush_refit(),
            ProcTimeModel::PerClass(m) => m.flush_refits(),
        }
    }

    /// Training RMSE of the model that serves `class` (ticket margins).
    pub fn rmse_for(&self, class: u64) -> f64 {
        match self {
            ProcTimeModel::Pooled(m) => m.rmse(),
            ProcTimeModel::PerClass(m) => m.rmse_for(class),
        }
    }

    /// Pooled-level training RMSE.
    pub fn rmse(&self) -> f64 {
        match self {
            ProcTimeModel::Pooled(m) => m.rmse(),
            ProcTimeModel::PerClass(m) => m.pooled().rmse(),
        }
    }
}

/// Scheduler-visible estimation models.
#[derive(Clone, Debug)]
pub struct EstimateProvider {
    /// Processing-time response surface (standard-machine seconds).
    pub qrsm: ProcTimeModel,
    /// Upload-direction bandwidth predictor.
    pub up: BandwidthEstimator,
    /// Download-direction bandwidth predictor.
    pub down: BandwidthEstimator,
    /// Upload thread tuner.
    pub up_tuner: ThreadTuner,
    /// Download thread tuner.
    pub down_tuner: ThreadTuner,
    /// Thread-saturation constant of the pipe model.
    pub kappa: f64,
    /// Assumed output/input size ratio for jobs that have not run yet (the
    /// true output size is only known at completion).
    pub output_ratio: f64,
    /// EC machine speed relative to a standard machine.
    pub ec_speed: f64,
    /// IC machine speed relative to a standard machine.
    pub ic_speed: f64,
}

impl EstimateProvider {
    /// Builds a provider around a trained pooled QRSM with paper-style
    /// defaults.
    pub fn new(qrsm: QrsModel) -> EstimateProvider {
        Self::with_model(ProcTimeModel::Pooled(qrsm))
    }

    /// Builds a provider around a per-class model (multi-class extension).
    pub fn with_classed(model: ClassedModel) -> EstimateProvider {
        Self::with_model(ProcTimeModel::PerClass(model))
    }

    /// Builds a provider around any processing-time model.
    pub fn with_model(qrsm: ProcTimeModel) -> EstimateProvider {
        EstimateProvider {
            qrsm,
            up: BandwidthEstimator::hourly(),
            down: BandwidthEstimator::hourly(),
            up_tuner: ThreadTuner::hourly(),
            down_tuner: ThreadTuner::hourly(),
            kappa: DEFAULT_KAPPA,
            output_ratio: 0.5,
            ec_speed: 1.0,
            ic_speed: 1.0,
        }
    }

    /// Seeds both bandwidth predictors with a prior mean rate (models the
    /// pre-run calibration probes).
    pub fn with_bandwidth_prior(mut self, bps: f64) -> EstimateProvider {
        self.up = self.up.with_prior(bps);
        self.down = self.down.with_prior(bps);
        self
    }

    /// Flushes deferred QRSM refits (see [`ProcTimeModel::flush_refits`]).
    /// Call before any prediction read that must see observations queued
    /// via [`ProcTimeModel::observe_queued`]; a no-op branch otherwise.
    pub fn flush_refits(&mut self) -> bool {
        self.qrsm.flush_refits()
    }

    /// Estimated execution seconds for `job` on a standard machine.
    /// Heap-allocation-free: the regressors live on the stack and the model
    /// evaluates term-by-term without materializing a design row.
    pub fn exec_secs(&self, job: &Job) -> f64 {
        self.qrsm.predict(job.features.job_type.code() as u64, &job.features.regressors_arr())
    }

    /// Estimated execution seconds on an IC machine.
    pub fn exec_secs_ic(&self, job: &Job) -> f64 {
        self.exec_secs(job) / self.ic_speed
    }

    /// Estimated execution seconds on an EC machine.
    pub fn exec_secs_ec(&self, job: &Job) -> f64 {
        self.exec_secs(job) / self.ec_speed
    }

    /// Estimated output size for a job that has not run.
    pub fn output_bytes(&self, job: &Job) -> u64 {
        (job.input_bytes() as f64 * self.output_ratio) as u64
    }

    /// Estimated seconds to upload `bytes` starting around `t`, at the
    /// currently tuned thread count (`s_i / l(t_i)` of Eq. 2).
    pub fn upload_secs(&self, t: SimTime, bytes: u64) -> f64 {
        let threads = self.up_tuner.current_best(t);
        self.up.predict_transfer_secs(t, bytes, threads, self.kappa)
    }

    /// Estimated seconds to download `bytes` starting around `t`
    /// (`o_i / l(t_i + t')` of Eq. 2).
    pub fn download_secs(&self, t: SimTime, bytes: u64) -> f64 {
        let threads = self.down_tuner.current_best(t);
        self.down.predict_transfer_secs(t, bytes, threads, self.kappa)
    }

    /// The full estimated EC round trip for a job if its upload started at
    /// `t` with `upload_backlog_secs` of queued work ahead of it:
    /// `(upload_wait, upload, exec, download)` seconds.
    pub fn round_trip_parts(
        &self,
        t: SimTime,
        job: &Job,
        upload_backlog_secs: f64,
    ) -> (f64, f64, f64, f64) {
        let up = self.upload_secs(t, job.input_bytes());
        let exec = self.exec_secs_ec(job);
        // Download is predicted at the time it will plausibly start.
        let dl_at = t + cloudburst_sim::SimDuration::from_secs_f64(upload_backlog_secs + up + exec);
        let down = self.download_secs(dl_at, self.output_bytes(job));
        (upload_backlog_secs, up, exec, down)
    }
}

/// Test-only fixtures shared across this crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use cloudburst_qrsm::Method;
    use cloudburst_sim::RngFactory;
    use cloudburst_workload::arrival::training_corpus;
    use cloudburst_workload::{DocumentFeatures, GroundTruth, JobId};

    /// An estimate provider with an accurate QRSM (trained on noiseless
    /// data) and a 250 KB/s bandwidth prior.
    pub(crate) fn provider() -> EstimateProvider {
        let rngs = RngFactory::new(99);
        let truth = GroundTruth::noiseless();
        let corpus = training_corpus(&mut rngs.stream("train"), &truth, 400);
        let xs: Vec<Vec<f64>> = corpus.iter().map(|(f, _)| f.regressors()).collect();
        let ys: Vec<f64> = corpus.iter().map(|(_, t)| *t).collect();
        let qrsm = QrsModel::fit(&xs, &ys, Method::Ols).unwrap();
        EstimateProvider::new(qrsm).with_bandwidth_prior(250_000.0)
    }

    /// A deterministic job of the given size (noiseless ground truth).
    pub(crate) fn job(size_mb: u64) -> Job {
        job_with_id(0, size_mb)
    }

    /// As [`job`], with an explicit id.
    pub(crate) fn job_with_id(id: u64, size_mb: u64) -> Job {
        let rngs = RngFactory::new(5 + id);
        let mut rng = rngs.stream("j");
        let f = DocumentFeatures::sample_any_type(&mut rng, size_mb * 1_000_000);
        Job {
            id: JobId(id),
            batch: 0,
            arrival: SimTime::ZERO,
            features: f,
            true_service_secs: GroundTruth::noiseless().mean_secs(&f),
            output_bytes: size_mb * 500_000,
            parent: None,
        }
    }

    /// A provider plus jobs of the given sizes (ids 0..n).
    pub(crate) fn provider_and_jobs(sizes_mb: &[u64]) -> (EstimateProvider, Vec<Job>) {
        let jobs = sizes_mb
            .iter()
            .enumerate()
            .map(|(i, &mb)| job_with_id(i as u64, mb))
            .collect();
        (provider(), jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimates::tests_support::{job, provider};

    #[test]
    fn exec_estimate_tracks_truth_on_noiseless_data() {
        let p = provider();
        let j = job(120);
        let est = p.exec_secs(&j);
        let truth = j.true_service_secs;
        assert!(
            (est / truth - 1.0).abs() < 0.05,
            "QRSM trained on noiseless quadratic data should be accurate: est={est} truth={truth}"
        );
    }

    #[test]
    fn transfer_estimates_scale_with_size() {
        let p = provider();
        let t = SimTime::ZERO;
        let up_small = p.upload_secs(t, 10_000_000);
        let up_large = p.upload_secs(t, 100_000_000);
        assert!((up_large / up_small - 10.0).abs() < 0.01);
        assert!(p.download_secs(t, 10_000_000) > 0.0);
    }

    #[test]
    fn round_trip_parts_compose() {
        let p = provider();
        let j = job(50);
        let (wait, up, exec, down) = p.round_trip_parts(SimTime::ZERO, &j, 120.0);
        assert_eq!(wait, 120.0);
        assert!(up > 0.0 && exec > 0.0 && down > 0.0);
        // Download of half the bytes at equal rates is about half the upload.
        assert!((down / up - 0.5).abs() < 0.1, "up={up} down={down}");
    }

    #[test]
    fn ec_speed_scales_remote_exec() {
        let mut p = provider();
        let j = job(80);
        let base = p.exec_secs_ec(&j);
        p.ec_speed = 2.0;
        assert!((p.exec_secs_ec(&j) - base / 2.0).abs() < 1e-9);
        assert_eq!(p.exec_secs_ic(&j), p.exec_secs(&j));
    }
}

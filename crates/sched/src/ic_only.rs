//! The IC-only baseline: never bursts. Used throughout the evaluation as
//! the reference point (Figs. 6 and 10).

use cloudburst_workload::Job;

use crate::api::{BatchSchedule, BurstScheduler, LoadModel, Placement};
use crate::estimates::EstimateProvider;

/// Baseline scheduler: every job runs in the internal cloud.
#[derive(Clone, Debug, Default)]
pub struct IcOnlyScheduler;

impl IcOnlyScheduler {
    /// Creates the scheduler.
    pub fn new() -> IcOnlyScheduler {
        IcOnlyScheduler
    }
}

impl BurstScheduler for IcOnlyScheduler {
    fn name(&self) -> &'static str {
        "ic-only"
    }

    fn schedule_batch(
        &mut self,
        batch: Vec<Job>,
        _load: &LoadModel<'_>,
        _est: &EstimateProvider,
    ) -> BatchSchedule {
        BatchSchedule {
            jobs: batch.into_iter().map(|j| (j, Placement::Internal)).collect(),
            sibs: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LoadModelBuf;
    use crate::estimates::tests_support::{job_with_id, provider};
    use cloudburst_sim::SimTime;

    #[test]
    fn never_bursts_even_under_extreme_load() {
        let est = provider();
        let batch: Vec<_> = (0..10).map(|i| job_with_id(i, 200)).collect();
        let mut buf = LoadModelBuf::idle(SimTime::ZERO, 1, 8);
        buf.ic_free_secs = vec![1e9];
        let s = IcOnlyScheduler::new().schedule_batch(batch, &buf.as_model(), &est);
        assert_eq!(s.n_bursted(), 0);
        assert_eq!(s.jobs.len(), 10);
        assert!(s.sibs.is_none());
        assert_eq!(IcOnlyScheduler::new().name(), "ic-only");
    }
}

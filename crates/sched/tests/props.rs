//! Property tests for the schedulers: completeness, order preservation,
//! slack-safety under the scheduler's own estimates, and baseline safety —
//! for randomized workloads and load states.

use proptest::prelude::*;

use cloudburst_qrsm::{Method, QrsModel};
use cloudburst_sched::api::Planner;
use cloudburst_sched::{
    BurstScheduler, EstimateProvider, FreeTimeIndex, GreedyScheduler, IcOnlyScheduler,
    LoadModelBuf, OrderPreservingScheduler, OutstandingSet, Placement, SibsScheduler,
};
use cloudburst_sim::{RngFactory, SimTime};
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::{ArrivalConfig, BatchArrivals, GroundTruth, Job, SizeBucket};

fn provider() -> EstimateProvider {
    let rngs = RngFactory::new(424242);
    let truth = GroundTruth::noiseless();
    let corpus = training_corpus(&mut rngs.stream("train"), &truth, 300);
    let xs: Vec<Vec<f64>> = corpus.iter().map(|(f, _)| f.regressors()).collect();
    let ys: Vec<f64> = corpus.iter().map(|(_, t)| *t).collect();
    EstimateProvider::new(QrsModel::fit(&xs, &ys, Method::Ols).expect("fit"))
        .with_bandwidth_prior(250_000.0)
}

fn batch_for(seed: u64, n: f64, bucket: SizeBucket) -> Vec<Job> {
    let gen = BatchArrivals::new(ArrivalConfig {
        n_batches: 1,
        jobs_per_batch: n,
        bucket,
        ..ArrivalConfig::default()
    });
    gen.generate_flat(&RngFactory::new(seed), &GroundTruth::default())
}

fn load_for(now_secs: u64, ic_backlog: f64, n_ic: usize, n_ec: usize) -> LoadModelBuf {
    let mut load = LoadModelBuf::idle(SimTime::from_secs(now_secs), n_ic, n_ec);
    load.ic_free_secs = vec![ic_backlog; n_ic];
    if ic_backlog > 0.0 {
        load.outstanding_est_completions =
            vec![SimTime::from_secs(now_secs) + cloudburst_sim::SimDuration::from_secs_f64(ic_backlog)];
    }
    load
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every scheduler returns every input job's bytes exactly once (chunk
    /// expansion conserves input size), preserving relative order of
    /// surviving originals.
    #[test]
    fn schedulers_conserve_the_batch(
        seed in any::<u64>(),
        backlog in 0.0f64..6_000.0,
        bucket_idx in 0usize..3,
    ) {
        let est = provider();
        let bucket = SizeBucket::ALL[bucket_idx];
        let batch = batch_for(seed, 8.0, bucket);
        let total: u64 = batch.iter().map(|j| j.input_bytes()).sum();
        let in_ids: Vec<_> = batch.iter().map(|j| j.id).collect();
        let load = load_for(0, backlog, 8, 2);

        let mut scheds: Vec<Box<dyn BurstScheduler>> = vec![
            Box::new(IcOnlyScheduler::new()),
            Box::new(GreedyScheduler::new()),
            Box::new(OrderPreservingScheduler::default_with_seed(1)),
            Box::new(SibsScheduler::default_with_seed(1)),
        ];
        for s in &mut scheds {
            let out = s.schedule_batch(batch.clone(), &load.as_model(), &est);
            let got: u64 = out.jobs.iter().map(|(j, _)| j.input_bytes()).sum();
            prop_assert_eq!(got, total, "{} lost bytes", s.name());
            // Original (unchunked) jobs appear in input order.
            let originals: Vec<_> =
                out.jobs.iter().filter(|(j, _)| !j.is_chunk()).map(|(j, _)| j.id).collect();
            let expected: Vec<_> = in_ids
                .iter()
                .copied()
                .filter(|id| originals.contains(id))
                .collect();
            prop_assert_eq!(originals, expected, "{} reordered the batch", s.name());
        }
    }

    /// IC-only never bursts; Greedy never places a job somewhere its own
    /// estimate says is strictly slower at decision time.
    #[test]
    fn greedy_is_locally_optimal(seed in any::<u64>(), backlog in 0.0f64..8_000.0) {
        let est = provider();
        let batch = batch_for(seed, 6.0, SizeBucket::Uniform);
        let load = load_for(0, backlog, 4, 2);
        let out = GreedyScheduler::new().schedule_batch(batch, &load.as_model(), &est);
        // Replay the planner; at each step the chosen side's finish time
        // must be ≤ the other side's.
        let mut planner = Planner::new(&load.as_model(), &est);
        for (job, placement) in &out.jobs {
            let t_ic = planner.ft_ic(job);
            let t_ec = planner.ft_ec(job);
            match placement {
                Placement::Internal => prop_assert!(t_ic <= t_ec),
                Placement::External => prop_assert!(t_ec < t_ic),
            }
            planner.commit(job, *placement);
        }
    }

    /// Op only bursts jobs whose round trip fits their slack under its own
    /// estimates (Eq. 2), whatever the workload and backlog.
    #[test]
    fn op_respects_eq2(seed in any::<u64>(), backlog in 0.0f64..8_000.0) {
        let est = provider();
        let batch = batch_for(seed, 8.0, SizeBucket::LargeBiased);
        let load = load_for(0, backlog, 4, 2);
        let out = OrderPreservingScheduler::default_with_seed(2)
            .schedule_batch(batch, &load.as_model(), &est);
        let mut planner = Planner::new(&load.as_model(), &est);
        for (job, placement) in &out.jobs {
            if *placement == Placement::External {
                let slack = planner.slack().expect("burst requires predecessors");
                prop_assert!(planner.ft_ec(job) <= slack, "Eq. 2 violated");
            }
            planner.commit(job, *placement);
        }
    }

    /// The tournament-tree free-time index replays an FCFS drain exactly
    /// like the linear `min_by` rescan it replaced: same machine choices,
    /// bitwise-identical free-time arrays.
    #[test]
    fn freetime_index_matches_linear_rescan(
        initial in proptest::collection::vec(0.0f64..10_000.0, 1..40),
        costs in proptest::collection::vec(0.0f64..500.0, 0..200),
        dupe_every in 1usize..6,
    ) {
        // Inject exact duplicates so the tie-break path is exercised.
        let mut free: Vec<f64> = initial;
        for i in (0..free.len()).step_by(dupe_every) {
            free[i] = free[0];
        }
        let mut ix = FreeTimeIndex::new();
        ix.reset_from(&free);
        for cost in costs {
            let (want_idx, _) = free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .expect("machines exist");
            free[want_idx] += cost;
            let got_idx = ix.fcfs_commit(cost);
            prop_assert_eq!(got_idx, want_idx);
            prop_assert_eq!(ix.values(), &free[..]);
        }
    }

    /// The incremental outstanding-completions pool holds exactly the same
    /// multiset as a from-scratch rebuild of the engine's Option table,
    /// under arbitrary admit/complete interleavings.
    #[test]
    fn outstanding_set_matches_table_rebuild(
        ops in proptest::collection::vec((any::<u32>(), 1u64..100_000), 1..300),
    ) {
        let mut table: Vec<Option<SimTime>> = Vec::new();
        let mut set = OutstandingSet::new();
        for (pick, est_secs) in ops {
            let est = SimTime::from_secs(est_secs);
            table.push(Some(est));
            set.insert((table.len() - 1) as u64, est);
            // Complete a pseudo-random (possibly already-done) job.
            let victim = pick as usize % table.len();
            if pick % 3 != 0 {
                table[victim] = None;
                set.remove(victim as u64);
            }
            let mut want: Vec<SimTime> = table.iter().flatten().copied().collect();
            let mut got: Vec<SimTime> = set.values().to_vec();
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, want);
            // The slack anchor — the one consumer — agrees too.
            prop_assert_eq!(
                set.values().iter().copied().max(),
                table.iter().flatten().copied().max()
            );
        }
    }

    /// SIBS placements equal Op placements for identical inputs; its bounds
    /// (when present) are ordered.
    #[test]
    fn sibs_wraps_op_faithfully(seed in any::<u64>(), backlog in 0.0f64..8_000.0) {
        let est = provider();
        let batch = batch_for(seed, 8.0, SizeBucket::Uniform);
        let load = load_for(0, backlog, 4, 2);
        let a = SibsScheduler::default_with_seed(3).schedule_batch(batch.clone(), &load.as_model(), &est);
        let b = OrderPreservingScheduler::default_with_seed(3)
            .schedule_batch(batch, &load.as_model(), &est);
        let pa: Vec<Placement> = a.jobs.iter().map(|(_, p)| *p).collect();
        let pb: Vec<Placement> = b.jobs.iter().map(|(_, p)| *p).collect();
        prop_assert_eq!(pa, pb);
        if let Some(bounds) = a.sibs {
            prop_assert!(bounds.s_bound <= bounds.m_bound);
        }
    }
}

//! SLA-side policies: penalty schedules, admission commitments, and the
//! broker's site-scoring discipline.

use serde::{Deserialize, Serialize};

use crate::money::Money;
use crate::price::PriceModel;

/// Micro-seconds in one hour of lateness.
const HOUR_MICROS: u64 = 3_600_000_000;

/// Financial penalty for completing a job after its deadline (Suleiman &
/// Basir's SLA cost curves, reduced to the three shapes the related work
/// actually fits).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PenaltySchedule {
    /// No penalty — lateness is tracked but costs nothing.
    Free,
    /// A fixed charge per late job, however late.
    Flat {
        /// Charge per deadline miss.
        usd: Money,
    },
    /// Linear in lateness: dollars per hour past the deadline, metered by
    /// the micro-second.
    PerHourLate {
        /// Charge per hour of lateness.
        usd_per_hour: Money,
    },
    /// Linear in lateness up to a per-job cap.
    CappedPerHour {
        /// Charge per hour of lateness.
        usd_per_hour: Money,
        /// Most one job's lateness can cost.
        cap: Money,
    },
}

impl PenaltySchedule {
    /// The penalty for finishing `lateness_micros` past the deadline
    /// (0 ⇒ on time ⇒ free).
    pub fn charge(&self, lateness_micros: u64) -> Money {
        if lateness_micros == 0 {
            return Money::ZERO;
        }
        match self {
            PenaltySchedule::Free => Money::ZERO,
            PenaltySchedule::Flat { usd } => *usd,
            PenaltySchedule::PerHourLate { usd_per_hour } => {
                usd_per_hour.mul_div(lateness_micros, HOUR_MICROS)
            }
            PenaltySchedule::CappedPerHour { usd_per_hour, cap } => {
                usd_per_hour.mul_div(lateness_micros, HOUR_MICROS).min(*cap)
            }
        }
    }

    /// True when no lateness can ever cost anything.
    pub fn is_free(&self) -> bool {
        match self {
            PenaltySchedule::Free => true,
            PenaltySchedule::Flat { usd } => usd.is_zero(),
            PenaltySchedule::PerHourLate { usd_per_hour } => usd_per_hour.is_zero(),
            PenaltySchedule::CappedPerHour { usd_per_hour, cap } => {
                usd_per_hour.is_zero() || cap.is_zero()
            }
        }
    }
}

/// What the engine promises at admission time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Admit every job; the ticket promise is advisory and a miss counts
    /// as ordinary lateness.
    AdmitAll,
    /// Commit-or-reject à la Azar et al.: at admission the engine either
    /// *commits* to the job's Eq. 1 deadline — arrival plus this
    /// turnaround budget — or rejects the job up front. Finishing a
    /// committed job late is a commitment violation, counted separately
    /// from ordinary lateness.
    CommitOrReject {
        /// Turnaround budget: the committed deadline is
        /// `arrival + max_turnaround_secs`.
        max_turnaround_secs: f64,
    },
}

/// How the multi-site broker picks an external site per bursted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrokerPolicy {
    /// The legacy pick: least upload-backlog + queued work, lowest index
    /// on ties — byte-identical to every pre-econ golden.
    EarliestRoundTrip,
    /// Score sites on estimated $-cost × deadline feasibility: hourly
    /// compute rate plus round-trip transfer cost for a reference job,
    /// plus the penalty exposure of the site's backlog delay. Falls back
    /// to the legacy key on exact ties, so the all-prices-equal degenerate
    /// case reproduces `EarliestRoundTrip` exactly.
    CostAware,
}

/// The experiment's economics section: pricing for the primary EC site
/// (extra sites carry their own price in `EcSiteConfig`), the penalty
/// schedule, the admission policy, and the broker discipline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EconConfig {
    /// Price of the primary EC site (`None` = free, like the IC).
    pub primary_price: Option<PriceModel>,
    /// Deadline-miss penalty schedule.
    pub penalty: PenaltySchedule,
    /// Admission commitment policy.
    pub admission: AdmissionPolicy,
    /// Broker site-selection discipline.
    pub broker: BrokerPolicy,
}

impl Default for EconConfig {
    fn default() -> Self {
        EconConfig::dormant()
    }
}

impl EconConfig {
    /// The do-nothing section: no prices, free penalties, admit-all, the
    /// legacy broker. The engine maps this to the same disarmed state as
    /// an absent section; a run with it is byte-identical to one without.
    pub fn dormant() -> EconConfig {
        EconConfig {
            primary_price: None,
            penalty: PenaltySchedule::Free,
            admission: AdmissionPolicy::AdmitAll,
            broker: BrokerPolicy::EarliestRoundTrip,
        }
    }

    /// True when this section can affect neither behavior nor accounting
    /// (site-local prices on `extra_ec_sites` are the engine's to check).
    pub fn is_dormant(&self) -> bool {
        self.primary_price.is_none()
            && self.penalty.is_free()
            && self.admission == AdmissionPolicy::AdmitAll
            && self.broker == BrokerPolicy::EarliestRoundTrip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_shapes_meter_lateness() {
        let hour = HOUR_MICROS;
        assert_eq!(PenaltySchedule::Free.charge(hour), Money::ZERO);
        let flat = PenaltySchedule::Flat { usd: Money::from_usd(5) };
        assert_eq!(flat.charge(0), Money::ZERO, "on time is free");
        assert_eq!(flat.charge(1), Money::from_usd(5), "any lateness pays the flat fee");
        let linear = PenaltySchedule::PerHourLate { usd_per_hour: Money::from_usd(2) };
        assert_eq!(linear.charge(hour / 2), Money::from_usd(1));
        assert_eq!(linear.charge(3 * hour), Money::from_usd(6));
        let capped = PenaltySchedule::CappedPerHour {
            usd_per_hour: Money::from_usd(2),
            cap: Money::from_usd(3),
        };
        assert_eq!(capped.charge(hour / 2), Money::from_usd(1), "below the cap: linear");
        assert_eq!(capped.charge(10 * hour), Money::from_usd(3), "capped");
    }

    #[test]
    fn is_free_sees_through_zero_rates() {
        assert!(PenaltySchedule::Free.is_free());
        assert!(PenaltySchedule::Flat { usd: Money::ZERO }.is_free());
        assert!(!PenaltySchedule::Flat { usd: Money(1) }.is_free());
        assert!(PenaltySchedule::PerHourLate { usd_per_hour: Money::ZERO }.is_free());
        assert!(PenaltySchedule::CappedPerHour {
            usd_per_hour: Money::from_usd(1),
            cap: Money::ZERO
        }
        .is_free());
    }

    #[test]
    fn dormant_config_is_dormant_and_armed_ones_are_not() {
        assert!(EconConfig::dormant().is_dormant());
        assert!(EconConfig::default().is_dormant());
        let priced = EconConfig {
            primary_price: Some(PriceModel::flat(Money::from_cents(10))),
            ..EconConfig::dormant()
        };
        assert!(!priced.is_dormant());
        let committing = EconConfig {
            admission: AdmissionPolicy::CommitOrReject { max_turnaround_secs: 900.0 },
            ..EconConfig::dormant()
        };
        assert!(!committing.is_dormant());
        let brokered = EconConfig { broker: BrokerPolicy::CostAware, ..EconConfig::dormant() };
        assert!(!brokered.is_dormant());
        let fined = EconConfig {
            penalty: PenaltySchedule::Flat { usd: Money::from_usd(1) },
            ..EconConfig::dormant()
        };
        assert!(!fined.is_dormant());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = EconConfig {
            primary_price: Some(PriceModel::flat(Money::from_cents(25))),
            penalty: PenaltySchedule::CappedPerHour {
                usd_per_hour: Money::from_usd(1),
                cap: Money::from_usd(10),
            },
            admission: AdmissionPolicy::CommitOrReject { max_turnaround_secs: 1200.0 },
            broker: BrokerPolicy::CostAware,
        };
        let js = serde_json::to_string(&cfg).unwrap();
        let back: EconConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(cfg, back);
    }
}

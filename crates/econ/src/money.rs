//! Integer micro-dollar arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An amount of money in integer micro-dollars (10⁻⁶ USD).
///
/// All arithmetic saturates: a billing bug can pin a total at the i64
/// range edge, but it can never panic mid-run or wrap into nonsense — the
/// same "abort-free accumulator" discipline the drain-cost ticks use.
/// Serializes transparently as the raw micro-dollar integer.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Money(pub i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// From whole micro-dollars.
    pub const fn from_micros(micros: i64) -> Money {
        Money(micros)
    }

    /// From whole dollars (saturating).
    pub const fn from_usd(usd: i64) -> Money {
        Money(usd.saturating_mul(1_000_000))
    }

    /// From whole cents (saturating).
    pub const fn from_cents(cents: i64) -> Money {
        Money(cents.saturating_mul(10_000))
    }

    /// The raw micro-dollar count.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Approximate dollar value — reporting/display only, never fed back
    /// into an accumulator.
    pub fn as_usd_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }

    /// `self × num / den`, exact in `i128`, floored, saturated into range.
    /// The workhorse behind per-second and per-byte metering: rates are
    /// quoted per hour / per GB and scaled by integer spans.
    pub fn mul_div(self, num: u64, den: u64) -> Money {
        if den == 0 {
            return Money::ZERO;
        }
        let wide = self.0 as i128 * num as i128 / den as i128;
        Money(clamp_i128(wide))
    }

    /// `self × n`, saturating.
    pub fn saturating_mul_u64(self, n: u64) -> Money {
        Money(clamp_i128(self.0 as i128 * n as i128))
    }

    /// True for exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn clamp_i128(wide: i128) -> i64 {
    if wide > i64::MAX as i128 {
        i64::MAX
    } else if wide < i64::MIN as i128 {
        i64::MIN
    } else {
        wide as i64
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        self.saturating_sub(rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Money::saturating_add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:06}", abs / 1_000_000, abs % 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Money::from_usd(3).micros(), 3_000_000);
        assert_eq!(Money::from_cents(150).micros(), 1_500_000);
        assert_eq!(Money::from_micros(7).micros(), 7);
        assert!(Money::ZERO.is_zero());
        assert!(!Money::from_usd(1).is_zero());
        assert_eq!(Money::from_usd(2).as_usd_f64(), 2.0);
    }

    #[test]
    fn arithmetic_saturates_instead_of_panicking() {
        let max = Money(i64::MAX);
        assert_eq!(max + Money::from_usd(1), max);
        assert_eq!(Money(i64::MIN) - Money::from_usd(1), Money(i64::MIN));
        assert_eq!(max.saturating_mul_u64(3), max);
        let mut acc = Money(i64::MAX - 1);
        acc += Money::from_usd(10);
        assert_eq!(acc, max);
    }

    #[test]
    fn mul_div_meters_exactly() {
        // $1.00/hour for 90 seconds = $0.025.
        let rate = Money::from_usd(1);
        assert_eq!(rate.mul_div(90, 3600), Money::from_micros(25_000));
        // Division by zero yields zero rather than aborting a run.
        assert_eq!(rate.mul_div(5, 0), Money::ZERO);
        // Floors, never rounds up: 1 micro$/hour over 1s = 0.
        assert_eq!(Money(1).mul_div(1, 3600), Money::ZERO);
    }

    #[test]
    fn sum_folds_saturating() {
        let total: Money = [Money::from_usd(1), Money::from_cents(50)].into_iter().sum();
        assert_eq!(total, Money::from_micros(1_500_000));
    }

    #[test]
    fn displays_as_dollars() {
        assert_eq!(Money::from_micros(1_234_567).to_string(), "$1.234567");
        assert_eq!(Money::from_micros(-25_000).to_string(), "-$0.025000");
    }

    #[test]
    fn serializes_transparently_as_integer() {
        let js = serde_json::to_string(&Money::from_cents(5)).unwrap();
        assert_eq!(js, "50000");
        let back: Money = serde_json::from_str(&js).unwrap();
        assert_eq!(back, Money::from_cents(5));
    }
}

//! Cost accounting: the run-level ledger and its windowed snapshots.

use serde::{Deserialize, Serialize};

use crate::money::Money;

/// Per-site slice of the ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCost {
    /// Compute dollars billed at this site.
    pub compute: Money,
    /// Transfer dollars billed to and from this site.
    pub transfer: Money,
    /// Execution attempts billed (retries included — failed attempts cost).
    pub execs_billed: u64,
    /// Whole machine-hours acquired under hourly rental (0 for metered
    /// billing).
    pub rental_hours: u64,
}

/// The run-level economics ledger, embedded in `RunReport`/`ServeReport`
/// when the econ layer is armed. Every dollar field is integer
/// micro-dollars; nothing here is ever a float.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostMetrics {
    /// Total compute dollars across all EC sites (the IC is free).
    pub compute: Money,
    /// Total transfer dollars (uploads + downloads, lost payloads
    /// included — the bytes moved either way).
    pub transfer: Money,
    /// Total SLA penalty dollars.
    pub penalty: Money,
    /// Jobs admitted under a hard deadline commitment.
    pub jobs_committed: u64,
    /// Jobs rejected up front by the admission policy.
    pub jobs_rejected: u64,
    /// Committed jobs that finished past their committed deadline.
    pub commitment_violations: u64,
    /// Uncommitted jobs that finished past their promised completion.
    pub late_completions: u64,
    /// Spot revocation cycles scheduled into the fault plan (static plan
    /// severity, like the chaos blackout budget).
    pub spot_revocations: u64,
    /// Per-site breakdown, primary EC first.
    pub per_site: Vec<SiteCost>,
}

impl CostMetrics {
    /// A zeroed ledger with `n_sites` per-site slots.
    pub fn with_sites(n_sites: usize) -> CostMetrics {
        CostMetrics { per_site: vec![SiteCost::default(); n_sites], ..CostMetrics::default() }
    }

    /// Net dollars: compute + transfer + penalties.
    pub fn net_cost(&self) -> Money {
        self.compute + self.transfer + self.penalty
    }

    /// Books a compute charge against `site`.
    pub fn add_compute(&mut self, site: usize, amount: Money) {
        self.compute += amount;
        if let Some(s) = self.per_site.get_mut(site) {
            s.compute += amount;
            s.execs_billed += 1;
        }
    }

    /// Books rental hours against `site` (the dollar side goes through
    /// [`CostMetrics::add_compute`]).
    pub fn add_rental_hours(&mut self, site: usize, hours: u64) {
        if let Some(s) = self.per_site.get_mut(site) {
            s.rental_hours += hours;
        }
    }

    /// Books a transfer charge against `site`.
    pub fn add_transfer(&mut self, site: usize, amount: Money) {
        self.transfer += amount;
        if let Some(s) = self.per_site.get_mut(site) {
            s.transfer += amount;
        }
    }

    /// The scalar snapshot used by the serving windows: totals only, a
    /// `Copy` value, so per-epoch observation allocates nothing.
    pub fn snapshot(&self) -> EconWindow {
        EconWindow {
            compute: self.compute,
            transfer: self.transfer,
            penalty: self.penalty,
            committed: self.jobs_committed,
            rejected: self.jobs_rejected,
            violations: self.commitment_violations,
            late: self.late_completions,
        }
    }
}

/// Scalar economics totals of one serving window (or a cumulative
/// snapshot; window rows are deltas between snapshots). `Copy`, so the
/// windowed series costs no allocation on the serve path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EconWindow {
    /// Compute dollars.
    pub compute: Money,
    /// Transfer dollars.
    pub transfer: Money,
    /// Penalty dollars.
    pub penalty: Money,
    /// Jobs committed.
    pub committed: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Commitment violations.
    pub violations: u64,
    /// Ordinary late completions.
    pub late: u64,
}

impl EconWindow {
    /// Field-wise `self − earlier` (saturating), turning two cumulative
    /// snapshots into one window's delta — the same telescoping discipline
    /// as `FaultMetrics::delta_since`.
    pub fn delta_since(&self, earlier: &EconWindow) -> EconWindow {
        EconWindow {
            compute: self.compute.saturating_sub(earlier.compute),
            transfer: self.transfer.saturating_sub(earlier.transfer),
            penalty: self.penalty.saturating_sub(earlier.penalty),
            committed: self.committed.saturating_sub(earlier.committed),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            violations: self.violations.saturating_sub(earlier.violations),
            late: self.late.saturating_sub(earlier.late),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_books_per_site_and_totals() {
        let mut m = CostMetrics::with_sites(2);
        m.add_compute(0, Money::from_usd(2));
        m.add_compute(1, Money::from_usd(1));
        m.add_transfer(1, Money::from_cents(30));
        m.add_rental_hours(0, 3);
        m.penalty += Money::from_cents(50);
        assert_eq!(m.compute, Money::from_usd(3));
        assert_eq!(m.transfer, Money::from_cents(30));
        assert_eq!(m.net_cost(), Money::from_micros(3_800_000));
        assert_eq!(m.per_site[0].compute, Money::from_usd(2));
        assert_eq!(m.per_site[0].execs_billed, 1);
        assert_eq!(m.per_site[0].rental_hours, 3);
        assert_eq!(m.per_site[1].transfer, Money::from_cents(30));
        // Out-of-range sites still hit the totals, never panic.
        m.add_compute(9, Money::from_usd(1));
        assert_eq!(m.compute, Money::from_usd(4));
    }

    #[test]
    fn snapshots_telescope_into_window_deltas() {
        let mut m = CostMetrics::with_sites(1);
        m.add_compute(0, Money::from_usd(1));
        m.jobs_committed = 2;
        let at_open = m.snapshot();
        m.add_compute(0, Money::from_usd(2));
        m.jobs_committed = 5;
        m.late_completions = 1;
        let at_close = m.snapshot();
        let delta = at_close.delta_since(&at_open);
        assert_eq!(delta.compute, Money::from_usd(2));
        assert_eq!(delta.committed, 3);
        assert_eq!(delta.late, 1);
        assert_eq!(delta.transfer, Money::ZERO);
        // Chaining windows telescopes back to the cumulative total.
        let total = at_open.delta_since(&EconWindow::default());
        assert_eq!(total.compute + delta.compute, at_close.compute);
    }

    #[test]
    fn round_trips_through_json() {
        let mut m = CostMetrics::with_sites(2);
        m.add_compute(0, Money::from_usd(1));
        m.jobs_rejected = 4;
        m.spot_revocations = 2;
        let js = serde_json::to_string(&m).unwrap();
        let back: CostMetrics = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
        let w = m.snapshot();
        let js = serde_json::to_string(&w).unwrap();
        let back: EconWindow = serde_json::from_str(&js).unwrap();
        assert_eq!(w, back);
    }
}

//! Per-site price models: what one occupied machine and one transferred
//! byte cost, under three billing disciplines.

use cloudburst_chaos::CrashLaw;
use serde::{Deserialize, Serialize};

use crate::money::Money;

/// Micro-seconds in one billing hour.
const HOUR_MICROS: u64 = 3_600_000_000;

/// Bytes in one billing gigabyte (decimal GB, the cloud convention).
const GB_BYTES: u64 = 1_000_000_000;

/// How one external site bills compute and transfer. All rates are integer
/// [`Money`]; every charge is metered in exact `i128` arithmetic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PriceModel {
    /// Flat pay-per-use: compute metered by the micro-second of machine
    /// occupancy at a fixed hourly rate.
    OnDemand {
        /// Compute rate per machine-hour.
        usd_per_machine_hour: Money,
        /// Transfer rate per decimal GB (both directions).
        usd_per_gb_transfer: Money,
    },
    /// Hour-granular rental à la Mäcker et al.: the first occupancy inside
    /// a wall-clock hour acquires the machine for that whole hour; further
    /// work in already-paid hours is free, and idle paid hours still cost.
    HourlyRental {
        /// Rent per machine-hour (whole hours only).
        usd_per_machine_hour: Money,
        /// Transfer rate per decimal GB (both directions).
        usd_per_gb_transfer: Money,
    },
    /// Spot market: an on-demand-style meter whose hourly rate follows an
    /// integer per-mille step trace, plus an optional revocation law the
    /// engine realizes through the chaos machinery (dedicated
    /// `"chaos/spot-revoke"` stream — revocations are ordinary machine
    /// crash/recover cycles in the fault plan).
    Spot {
        /// Base compute rate per machine-hour (trace multiplier 1000‰).
        base_usd_per_machine_hour: Money,
        /// Transfer rate per decimal GB (both directions).
        usd_per_gb_transfer: Money,
        /// Price trace: `(offset_secs, per-mille multiplier)` step samples
        /// sorted by offset, held constant between samples.
        multipliers: Vec<(f64, u32)>,
        /// Trace wrap-around period in seconds (0 = hold the last sample).
        period_secs: f64,
        /// Revocation law; `None` = never revoked.
        revocation: Option<CrashLaw>,
    },
}

impl PriceModel {
    /// A flat on-demand model with no transfer cost — the minimal way to
    /// arm cost accounting.
    pub fn flat(usd_per_machine_hour: Money) -> PriceModel {
        PriceModel::OnDemand { usd_per_machine_hour, usd_per_gb_transfer: Money::ZERO }
    }

    /// The spot revocation law, when this is a spot model with one.
    pub fn revocation_law(&self) -> Option<&CrashLaw> {
        match self {
            PriceModel::Spot { revocation, .. } => revocation.as_ref(),
            _ => None,
        }
    }

    /// The per-GB transfer rate.
    pub fn transfer_rate(&self) -> Money {
        match self {
            PriceModel::OnDemand { usd_per_gb_transfer, .. }
            | PriceModel::HourlyRental { usd_per_gb_transfer, .. }
            | PriceModel::Spot { usd_per_gb_transfer, .. } => *usd_per_gb_transfer,
        }
    }

    /// Charge for transferring `bytes` to or from this site.
    pub fn transfer_charge(&self, bytes: u64) -> Money {
        self.transfer_rate().mul_div(bytes, GB_BYTES)
    }

    /// The effective hourly compute rate at virtual instant `at_micros` —
    /// constant except for the spot trace.
    pub fn hourly_rate_at(&self, at_micros: u64) -> Money {
        match self {
            PriceModel::OnDemand { usd_per_machine_hour, .. }
            | PriceModel::HourlyRental { usd_per_machine_hour, .. } => *usd_per_machine_hour,
            PriceModel::Spot { base_usd_per_machine_hour, multipliers, period_secs, .. } => {
                let permille = spot_permille(multipliers, *period_secs, at_micros);
                base_usd_per_machine_hour.mul_div(permille as u64, 1000)
            }
        }
    }

    /// Charge for one execution span `[started, ended)` (micro-second
    /// virtual instants) on one machine of this site.
    ///
    /// `paid_until_hour` is the engine-owned per-machine rental high-water
    /// mark (first unpaid wall-clock hour index); on-demand and spot ignore
    /// it, hourly rental advances it and bills only newly acquired hours.
    /// Returns the newly incurred charge.
    pub fn exec_charge(&self, started_micros: u64, ended_micros: u64, paid_until_hour: &mut u64) -> Money {
        let ended = ended_micros.max(started_micros);
        match self {
            PriceModel::OnDemand { usd_per_machine_hour, .. } => {
                usd_per_machine_hour.mul_div(ended - started_micros, HOUR_MICROS)
            }
            PriceModel::HourlyRental { usd_per_machine_hour, .. } => {
                let first = started_micros / HOUR_MICROS;
                let last = ended.div_ceil(HOUR_MICROS).max(first + 1);
                let from = first.max(*paid_until_hour);
                if last <= from {
                    return Money::ZERO;
                }
                *paid_until_hour = last;
                usd_per_machine_hour.saturating_mul_u64(last - from)
            }
            PriceModel::Spot { .. } => {
                // Spot meters like on-demand at the rate quoted when the
                // execution started — the price the revocable capacity was
                // won at.
                self.hourly_rate_at(started_micros).mul_div(ended - started_micros, HOUR_MICROS)
            }
        }
    }
}

/// Per-mille multiplier of the spot trace at `at_micros`: last sample at or
/// before the (period-wrapped) offset, 1000‰ before the first sample or
/// for an empty trace. Binary search — same discipline as the bandwidth
/// trace lookup in `cloudburst-net`.
fn spot_permille(samples: &[(f64, u32)], period_secs: f64, at_micros: u64) -> u32 {
    if samples.is_empty() {
        return 1000;
    }
    let mut secs = at_micros as f64 / 1_000_000.0;
    if period_secs > 0.0 {
        secs %= period_secs;
    }
    let idx = samples.partition_point(|(at, _)| *at <= secs);
    if idx == 0 {
        1000
    } else {
        samples[idx - 1].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u64 = HOUR_MICROS;

    #[test]
    fn on_demand_meters_by_occupancy() {
        let m = PriceModel::OnDemand {
            usd_per_machine_hour: Money::from_usd(2),
            usd_per_gb_transfer: Money::from_cents(9),
        };
        let mut paid = 0u64;
        // 30 minutes = $1.
        assert_eq!(m.exec_charge(0, H / 2, &mut paid), Money::from_usd(1));
        assert_eq!(paid, 0, "on-demand never touches the rental mark");
        // Inverted spans clamp to zero.
        assert_eq!(m.exec_charge(H, 0, &mut paid), Money::ZERO);
        // 1 GB costs the per-GB rate; half a GB half of it.
        assert_eq!(m.transfer_charge(GB_BYTES), Money::from_cents(9));
        assert_eq!(m.transfer_charge(GB_BYTES / 2), Money::from_micros(45_000));
    }

    #[test]
    fn hourly_rental_acquires_whole_hours_once() {
        let m = PriceModel::HourlyRental {
            usd_per_machine_hour: Money::from_usd(3),
            usd_per_gb_transfer: Money::ZERO,
        };
        let mut paid = 0u64;
        // A 10-minute job in hour 0 rents the whole hour.
        assert_eq!(m.exec_charge(0, H / 6, &mut paid), Money::from_usd(3));
        assert_eq!(paid, 1);
        // A second job inside the already-paid hour is free.
        assert_eq!(m.exec_charge(H / 3, H / 2, &mut paid), Money::ZERO);
        assert_eq!(paid, 1);
        // A job spanning hours 1..3 rents two more.
        assert_eq!(m.exec_charge(H + 1, 3 * H - 1, &mut paid), Money::from_usd(6));
        assert_eq!(paid, 3);
        // A later machine-idle gap then a job in hour 5: hour 4 was never
        // acquired, so only hour 5 is billed.
        assert_eq!(m.exec_charge(5 * H, 5 * H + 1, &mut paid), Money::from_usd(3));
        assert_eq!(paid, 6);
    }

    #[test]
    fn spot_follows_the_permille_trace_at_start_time() {
        let m = PriceModel::Spot {
            base_usd_per_machine_hour: Money::from_usd(1),
            usd_per_gb_transfer: Money::ZERO,
            multipliers: vec![(0.0, 500), (3600.0, 2000)],
            period_secs: 7200.0,
            revocation: None,
        };
        // Hour 0: half price. A full hour costs $0.50.
        let mut paid = 0u64;
        assert_eq!(m.exec_charge(0, H, &mut paid), Money::from_micros(500_000));
        // Hour 1: double price, and the *start* instant prices the span
        // even if it ends in a cheaper period.
        assert_eq!(m.exec_charge(H, 2 * H, &mut paid), Money::from_usd(2));
        // Wraps with the period: hour 2 maps back to the cheap sample.
        assert_eq!(m.hourly_rate_at(2 * H), Money::from_micros(500_000));
        // Empty trace ⇒ base rate.
        let flat = PriceModel::Spot {
            base_usd_per_machine_hour: Money::from_usd(1),
            usd_per_gb_transfer: Money::ZERO,
            multipliers: Vec::new(),
            period_secs: 0.0,
            revocation: None,
        };
        assert_eq!(flat.hourly_rate_at(12345), Money::from_usd(1));
    }

    #[test]
    fn revocation_law_only_on_spot() {
        let law = CrashLaw {
            mean_uptime_secs: 3600.0,
            mean_downtime_secs: 900.0,
            max_faults_per_machine: 4,
        };
        let spot = PriceModel::Spot {
            base_usd_per_machine_hour: Money::from_usd(1),
            usd_per_gb_transfer: Money::ZERO,
            multipliers: Vec::new(),
            period_secs: 0.0,
            revocation: Some(law),
        };
        assert_eq!(spot.revocation_law(), Some(&law));
        assert_eq!(PriceModel::flat(Money::from_usd(1)).revocation_law(), None);
    }

    #[test]
    fn round_trips_through_json() {
        let models = vec![
            PriceModel::flat(Money::from_cents(12)),
            PriceModel::HourlyRental {
                usd_per_machine_hour: Money::from_usd(1),
                usd_per_gb_transfer: Money::from_cents(2),
            },
            PriceModel::Spot {
                base_usd_per_machine_hour: Money::from_cents(40),
                usd_per_gb_transfer: Money::from_cents(1),
                multipliers: vec![(0.0, 800), (1800.0, 1500)],
                period_secs: 3600.0,
                revocation: Some(CrashLaw {
                    mean_uptime_secs: 7200.0,
                    mean_downtime_secs: 600.0,
                    max_faults_per_machine: 2,
                }),
            },
        ];
        for m in models {
            let js = serde_json::to_string(&m).unwrap();
            let back: PriceModel = serde_json::from_str(&js).unwrap();
            assert_eq!(m, back);
        }
    }
}

//! `cloudburst-econ` — the deterministic economics layer of the burst
//! pipeline: pricing, penalties, commitments, and cost accounting.
//!
//! The paper optimizes SLAs against a single fixed-price external cloud;
//! this crate supplies the generalization the related work makes concrete:
//! financial penalty schedules for SLA violation (Suleiman & Basir) and
//! admission decisions that *commit* to deadlines at arrival rather than
//! discovering misses at the end (Azar et al.). It is plain data + pure
//! arithmetic — the engine owns all the state and calls in at its own
//! decision points, exactly like `cloudburst-chaos`:
//!
//! * **Integer money.** Every accumulator is a [`Money`] — `i64`
//!   micro-dollars with saturating arithmetic. Floats appear only at the
//!   boundary (a lateness span, a spot multiplier *input*), never in a
//!   running sum, so cost totals are bit-stable under any summation order.
//! * **Determinism.** A [`PriceModel::Spot`] realizes its revocation law
//!   through `cloudburst_chaos::sample_spot_revocations` on a dedicated
//!   RNG stream, so revocations stay a pure function of the seeded plan;
//!   the price trace itself is an integer per-mille step function.
//! * **Dormancy.** [`EconConfig::dormant`] describes "economics present
//!   but priced at zero with no policies armed"; the engine maps it to the
//!   same `None` state as an absent section, and a literal byte-identity
//!   test holds it to that.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod metrics;
mod money;
mod policy;
mod price;

pub use metrics::{CostMetrics, EconWindow, SiteCost};
pub use money::Money;
pub use policy::{AdmissionPolicy, BrokerPolicy, EconConfig, PenaltySchedule};
pub use price::PriceModel;

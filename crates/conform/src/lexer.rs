//! A minimal Rust lexer — just enough structure for rule matching.
//!
//! The linter deliberately avoids `syn` (vendored-deps policy: no new
//! dependencies), so this module provides the smallest token model the
//! rules need: identifiers, punctuation (with `::` fused), and opaque
//! literal/lifetime markers, each carrying a 1-based source line. Comments
//! (line, nested block) and every literal form (string, raw string, byte
//! string, char, numeric) are consumed so rules never match inside them.
//!
//! A post-pass marks tokens that belong to test-only items — an item
//! introduced by `#[cfg(test)]` (without `not`) or `#[test]` — so rules can
//! skip test code without understanding module structure.

/// Token kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; `::` is fused into one token.
    Punct,
    /// Any literal (string/char/number); the text is not retained.
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (empty for literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// True when the token is inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

impl Tok {
    fn new(kind: TokKind, text: String, line: u32) -> Tok {
        Tok { kind, text, line, in_test: false }
    }
}

/// Lexes `src` into a token stream with test items marked.
pub fn lex(src: &str) -> Vec<Tok> {
    let c: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out: Vec<Tok> = Vec::new();
    while i < c.len() {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if ch == '/' && i + 1 < c.len() {
            if c[i + 1] == '/' {
                while i < c.len() && c[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if c[i + 1] == '*' {
                let mut depth = 1usize;
                i += 2;
                while i < c.len() && depth > 0 {
                    if c[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if c[i] == '/' && i + 1 < c.len() && c[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if c[i] == '*' && i + 1 < c.len() && c[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Identifiers, keywords, and raw/byte string prefixes.
        if ch == '_' || ch.is_alphabetic() {
            let start = i;
            while i < c.len() && (c[i] == '_' || c[i].is_alphanumeric()) {
                i += 1;
            }
            let text: String = c[start..i].iter().collect();
            if matches!(text.as_str(), "r" | "b" | "br" | "rb")
                && i < c.len()
                && (c[i] == '"' || c[i] == '#')
            {
                // Possible raw / byte string: optional `#`s then a quote.
                let mut j = i;
                let mut hashes = 0usize;
                while j < c.len() && c[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // Raw identifier `r#ident`: keep the `r#` prefix in the
                // token text so `r#unsafe` (an identifier) can never match
                // the `unsafe` keyword in a rule.
                if text == "r"
                    && hashes == 1
                    && j < c.len()
                    && (c[j] == '_' || c[j].is_alphabetic())
                {
                    let ident_start = j;
                    while j < c.len() && (c[j] == '_' || c[j].is_alphanumeric()) {
                        j += 1;
                    }
                    let raw: String = c[ident_start..j].iter().collect();
                    out.push(Tok::new(TokKind::Ident, format!("r#{raw}"), line));
                    i = j;
                    continue;
                }
                if j < c.len() && c[j] == '"' {
                    let lit_line = line;
                    if text.contains('r') {
                        // Raw string: runs to `"` followed by `hashes` `#`s.
                        i = j + 1;
                        while i < c.len() {
                            if c[i] == '\n' {
                                line += 1;
                                i += 1;
                                continue;
                            }
                            if c[i] == '"' {
                                let mut k = i + 1;
                                let mut h = 0usize;
                                while k < c.len() && h < hashes && c[k] == '#' {
                                    h += 1;
                                    k += 1;
                                }
                                if h == hashes {
                                    i = k;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    } else {
                        // Plain byte string with escapes.
                        i = consume_quoted(&c, j, &mut line);
                    }
                    out.push(Tok::new(TokKind::Literal, String::new(), lit_line));
                    continue;
                }
            }
            out.push(Tok::new(TokKind::Ident, text, line));
            continue;
        }
        // String literal.
        if ch == '"' {
            let lit_line = line;
            i = consume_quoted(&c, i, &mut line);
            out.push(Tok::new(TokKind::Literal, String::new(), lit_line));
            continue;
        }
        // Lifetime or char literal.
        if ch == '\'' {
            let is_lifetime = i + 1 < c.len()
                && (c[i + 1] == '_' || c[i + 1].is_alphabetic())
                && !(i + 2 < c.len() && c[i + 2] == '\'');
            if is_lifetime {
                let start = i + 1;
                i += 1;
                while i < c.len() && (c[i] == '_' || c[i].is_alphanumeric()) {
                    i += 1;
                }
                out.push(Tok::new(TokKind::Lifetime, c[start..i].iter().collect(), line));
                continue;
            }
            i += 1;
            while i < c.len() {
                match c[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.push(Tok::new(TokKind::Literal, String::new(), line));
            continue;
        }
        // Numeric literal (good enough: digits, `_`, type suffixes, and a
        // fractional part — but never a `..` range or a method call dot).
        if ch.is_ascii_digit() {
            while i < c.len() && (c[i].is_alphanumeric() || c[i] == '_' || c[i] == '.') {
                if c[i] == '.' && (i + 1 >= c.len() || !c[i + 1].is_ascii_digit()) {
                    break;
                }
                i += 1;
            }
            out.push(Tok::new(TokKind::Literal, String::new(), line));
            continue;
        }
        // Punctuation; fuse `::`.
        if ch == ':' && i + 1 < c.len() && c[i + 1] == ':' {
            out.push(Tok::new(TokKind::Punct, "::".to_owned(), line));
            i += 2;
            continue;
        }
        out.push(Tok::new(TokKind::Punct, ch.to_string(), line));
        i += 1;
    }
    mark_test_items(&mut out);
    out
}

/// Consumes a `"`-delimited string starting at `i` (the opening quote),
/// honoring `\` escapes; returns the index past the closing quote.
fn consume_quoted(c: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < c.len() {
        match c[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item (the
/// attribute, any following attributes, and the item through its `;` or
/// balanced `{}` block) with `in_test = true`.
fn mark_test_items(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[") {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = {
            let (end, words) = attr_span(toks, i);
            let is_cfg_test = words.first().map(String::as_str) == Some("cfg")
                && words.iter().any(|w| w == "test")
                && !words.iter().any(|w| w == "not");
            let is_test_attr = words.len() == 1 && words[0] == "test";
            (end, is_cfg_test || is_test_attr)
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the test attr and the item.
        let mut k = attr_end;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            k = attr_span(toks, k).0;
        }
        // The item runs to a `;` at brace depth 0 or a balanced `{}` block.
        let mut depth = 0i32;
        let mut end = k;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for t in &mut toks[i..end] {
            t.in_test = true;
        }
        i = end;
    }
}

/// Given `i` at the `#` of an attribute, returns (index past the closing
/// `]`, identifier words inside the attribute).
fn attr_span(toks: &[Tok], i: usize) -> (usize, Vec<String>) {
    let mut j = i + 2;
    let mut depth = 1i32;
    let mut words = Vec::new();
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {
                if toks[j].kind == TokKind::Ident {
                    words.push(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    (j, words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() /* nested */ still comment */
            let s = "thread_rng()";
            let r = r#"unsafe"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap" || s == "Instant" || s == "unsafe"));
        assert!(ids.contains(&"let".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks.iter().all(|t| t.kind != TokKind::Literal));
    }

    #[test]
    fn lines_are_tracked_across_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = r#"
            pub fn prod() { helper(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
        "#;
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap tok");
        assert!(unwrap.in_test);
        let prod = toks.iter().find(|t| t.text == "prod").expect("prod tok");
        assert!(!prod.in_test);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn live() { q.unwrap(); }";
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap tok");
        assert!(!unwrap.in_test);
    }

    #[test]
    fn fused_path_separator() {
        let toks = lex("std::thread::spawn(f)");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(&texts[..5], &["std", "::", "thread", "::", "spawn"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_newlines() {
        // A `"#` inside an `r##"…"##` literal must not terminate it, and
        // line counting must survive the embedded newlines.
        let src = "let a = r##\"one \"# two\nthree \"# four\"##;\nlet after = 1;";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.text == "two" || t.text == "three"));
        let after = toks.iter().find(|t| t.text == "after").expect("after tok");
        assert_eq!(after.line, 3);
        // Zero-hash raw strings close on the first quote.
        let ids = idents("let r0 = r\"Instant\"; let tail = 2;");
        assert!(ids.contains(&"tail".to_owned()) && !ids.contains(&"Instant".to_owned()));
        // Byte raw strings take the same path.
        let ids = idents("let b1 = br#\"unsafe\"#; done();");
        assert!(ids.contains(&"done".to_owned()) && !ids.contains(&"unsafe".to_owned()));
    }

    #[test]
    fn raw_identifiers_do_not_alias_keywords() {
        // `r#unsafe` is a plain identifier, not the `unsafe` keyword; the
        // token keeps its `r#` prefix so keyword rules can never match it.
        let toks = lex("let r#unsafe = 1; fn r#match() {}");
        assert!(toks.iter().all(|t| t.text != "unsafe" && t.text != "match"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#unsafe"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#match"));
    }

    #[test]
    fn deeply_nested_block_comments_close_correctly() {
        let src = "/* a /* b /* c */ d */ e */ fn live() {} /* tail */";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn".to_owned(), "live".to_owned()]);
        // An adjacent close-then-open pair stays balanced.
        let ids = idents("/* x */ ok /* y /* z */ */ yes");
        assert_eq!(ids, vec!["ok".to_owned(), "yes".to_owned()]);
    }

    #[test]
    fn lifetime_char_ambiguity_matrix() {
        // Chars (escaped and not), byte chars, lifetimes, bounds, labels.
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let b = b'z'; \
                   let u = '\\u{1F600}'; 'outer: loop { break 'outer; } }";
        let toks = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer", "outer"]);
        // No char payload leaks out as an identifier.
        assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "x" && t.line == 0));
        let literals = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(literals, 4, "'x', '\\'', b'z', '\\u{{1F600}}'");
        // `'_` is a lifetime, not a char.
        let t = lex("fn g(v: &'_ u8) {}");
        assert!(t.iter().any(|x| x.kind == TokKind::Lifetime && x.text == "_"));
    }
}

//! The rule engine: determinism, hot-path, and conformance-header rules
//! evaluated over the token stream of one file.
//!
//! Rule ids are stable strings (they key waivers and sort the report):
//!
//! * `determinism/wall-clock` — `Instant` / `SystemTime` in deterministic
//!   library code. Wall-clock reads make replication runs diverge.
//! * `determinism/default-hasher` — `HashMap` / `HashSet` with the default
//!   (randomized) hasher; use `FxHashMap`/`FxHashSet` or a `BTreeMap`.
//! * `determinism/ambient-rng` — `thread_rng`, `rand::random`, `OsRng`,
//!   `from_entropy`: randomness not derived from the experiment seed.
//! * `determinism/thread-spawn` — `thread::spawn` or `crossbeam::scope`
//!   worker orchestration in deterministic crates; real threads belong to
//!   the orchestration layer and bins. The shard/runner coordinators that
//!   do fan work out live behind per-file waivers whose justifications
//!   state the determinism argument (order-invariant merge) — a waiver is
//!   mandatory per file, never a blanket relaxation of the rule.
//! * `hotpath/unsafe` — `unsafe` anywhere (library, bins, tests) outside
//!   an explicit waiver.
//! * `hotpath/unwrap-budget` — `.unwrap()` in library (non-bin, non-test)
//!   code above the per-crate budget from `conform.toml`.
//! * `hotpath/print` — `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in
//!   library code; library crates must stay silent.
//! * `hotpath/linear-scan` — `.min_by`/`.max_by`(`_key`) in hot-path
//!   library code outside `#[cfg(test)]`: a full-collection scan in the
//!   decision loop is exactly the O(queue) pattern the slack indexes
//!   retired. Survivors need a waiver justifying their boundedness.
//! * `hotpath/sort-in-loop` — `.sort()`/`.sort_by*`/`.sort_unstable*` in
//!   hot-path library code outside `#[cfg(test)]`: an O(n log n) resort
//!   inside the decision sweep dwarfs the O(log n) index structures it sits
//!   next to. Bounded sorts (machine-count-sized scratch) survive behind a
//!   waiver stating the bound.
//! * `conformance/lint-header` — every crate root must carry
//!   `#![forbid(unsafe_code)]`, `#![deny(rust_2018_idioms)]` and
//!   `#![deny(missing_debug_implementations)]`.

use crate::lexer::{Tok, TokKind};

/// Crates (directory names under `crates/`) whose library code must stay
/// deterministic: everything that runs inside the simulation clock.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["chaos", "cluster", "core", "econ", "net", "qrsm", "sched", "sim", "sla", "workload"];

/// Crates on the per-decision hot path, where a linear `min_by`/`max_by`
/// rescan of an unbounded collection re-introduces the O(queue) cost the
/// slack indexes retired.
pub const HOT_PATH_CRATES: &[&str] = &["cluster", "core", "net", "sched", "sim"];

/// Full-scan comparator methods flagged on the hot path.
const LINEAR_SCAN_METHODS: &[&str] = &["max_by", "max_by_key", "min_by", "min_by_key"];

/// Sorting methods flagged on the hot path.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_cached_key",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// How a file participates in the build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileContext {
    /// Library code (`src/` except `src/bin/`).
    Lib,
    /// Binary code (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration tests and benches (`tests/`, `benches/`).
    Test,
    /// Examples (`examples/`).
    Example,
}

/// Everything the rules need to know about one file.
#[derive(Clone, Debug)]
pub struct FileInfo {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Crate key: directory name under `crates/`, or `root`.
    pub crate_key: String,
    /// Build context.
    pub context: FileContext,
    /// True for `src/lib.rs` of a workspace crate (or the meta-crate).
    pub is_crate_root: bool,
}

impl FileInfo {
    fn deterministic(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_key.as_str())
    }
}

/// One diagnostic, before waivers are applied.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule id.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message, including the offending source line.
    pub message: String,
    /// For graph findings: the `name (file:line)` hops of the witness
    /// path from the root (or tainted boundary) to this sink. Empty for
    /// token-rule findings.
    pub witness: Vec<String>,
    /// Justification when a waiver suppressed the finding.
    pub waived: Option<String>,
}

/// A library-code `.unwrap()` call site: (path, line, snippet).
pub type UnwrapSite = (String, u32, String);

/// Raw per-file scan output: direct findings plus `unwrap()` sites, which
/// the caller aggregates per crate against the budget.
#[derive(Clone, Debug, Default)]
pub struct FileScan {
    /// Findings that stand on their own.
    pub findings: Vec<Finding>,
    /// Library-code `.unwrap()` call sites.
    pub unwrap_sites: Vec<UnwrapSite>,
}

/// Idents that name an ambient (seed-less) randomness source.
const AMBIENT_RNG_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy"];

/// Macro names library code must not invoke.
const PRINT_MACROS: &[&str] = &["dbg", "eprint", "eprintln", "print", "println"];

/// Scans one file's tokens against every applicable rule.
pub fn scan_tokens(info: &FileInfo, toks: &[Tok], lines: &[&str]) -> FileScan {
    let mut findings: Vec<Finding> = Vec::new();
    let mut unwrap_sites: Vec<UnwrapSite> = Vec::new();
    let snippet = |line: u32| -> String {
        let text = lines.get(line as usize - 1).map_or("", |l| l.trim());
        let mut s: String = text.chars().take(90).collect();
        if s.len() < text.len() {
            s.push('…');
        }
        s
    };
    let mut push = |rule: &'static str, line: u32, what: &str| {
        findings.push(Finding {
            rule,
            path: info.rel_path.clone(),
            line,
            message: format!("{what}: `{}`", snippet(line)),
            witness: Vec::new(),
            waived: None,
        });
    };

    let det_lib = info.deterministic() && info.context == FileContext::Lib;
    let lib = info.context == FileContext::Lib;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = |n: usize| -> &str { if i >= n { toks[i - n].text.as_str() } else { "" } };
        let next = |n: usize| -> &str {
            toks.get(i + n).map_or("", |t| t.text.as_str())
        };
        // hotpath/unsafe applies everywhere, test code included: unsafe in
        // a test is still unsafe code someone must audit.
        if t.text == "unsafe" {
            push("hotpath/unsafe", t.line, "`unsafe` outside the audited allowlist");
            continue;
        }
        if t.in_test {
            continue;
        }
        if det_lib {
            match t.text.as_str() {
                "Instant" | "SystemTime" => {
                    push("determinism/wall-clock", t.line, "wall-clock type in deterministic code");
                    continue;
                }
                "HashMap" | "HashSet" => {
                    push(
                        "determinism/default-hasher",
                        t.line,
                        "randomized default hasher (use FxHashMap/FxHashSet or BTreeMap)",
                    );
                    continue;
                }
                "spawn" if prev(1) == "::" && prev(2) == "thread" => {
                    push(
                        "determinism/thread-spawn",
                        t.line,
                        "thread::spawn outside the orchestration layer",
                    );
                    continue;
                }
                "scope" if prev(1) == "::" && prev(2) == "crossbeam" => {
                    push(
                        "determinism/thread-spawn",
                        t.line,
                        "crossbeam scoped workers in deterministic code (waive the coordinator with a determinism justification)",
                    );
                    continue;
                }
                "random" if prev(1) == "::" && prev(2) == "rand" => {
                    push("determinism/ambient-rng", t.line, "ambient randomness (seed it instead)");
                    continue;
                }
                id if AMBIENT_RNG_IDENTS.contains(&id) => {
                    push("determinism/ambient-rng", t.line, "ambient randomness (seed it instead)");
                    continue;
                }
                _ => {}
            }
        }
        if lib {
            if PRINT_MACROS.contains(&t.text.as_str()) && next(1) == "!" {
                push("hotpath/print", t.line, "console output from library code");
                continue;
            }
            if t.text == "unwrap" && prev(1) == "." && next(1) == "(" {
                unwrap_sites.push((info.rel_path.clone(), t.line, snippet(t.line)));
            }
            if HOT_PATH_CRATES.contains(&info.crate_key.as_str()) && prev(1) == "." {
                if LINEAR_SCAN_METHODS.contains(&t.text.as_str()) {
                    push(
                        "hotpath/linear-scan",
                        t.line,
                        "full-collection min_by/max_by scan on the hot path (waive with a boundedness justification)",
                    );
                    continue;
                }
                if SORT_METHODS.contains(&t.text.as_str()) && next(1) == "(" {
                    push(
                        "hotpath/sort-in-loop",
                        t.line,
                        "O(n log n) sort on the hot path (waive with a boundedness justification)",
                    );
                    continue;
                }
            }
        }
    }

    if info.is_crate_root {
        findings.extend(lint_header_findings(info, toks));
    }
    FileScan { findings, unwrap_sites }
}

/// Required crate-root inner attributes and the check for each.
fn lint_header_findings(info: &FileInfo, toks: &[Tok]) -> Vec<Finding> {
    let mut has_forbid_unsafe = false;
    let mut has_idioms = false;
    let mut has_debug_impls = false;
    // Walk inner attributes `#![...]`.
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "!" && toks[i + 2].text == "[" {
            let mut j = i + 3;
            let mut depth = 1i32;
            let mut words: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    w => {
                        if toks[j].kind == TokKind::Ident {
                            words.push(w);
                        }
                    }
                }
                j += 1;
            }
            match words.first().copied() {
                Some("forbid") if words.contains(&"unsafe_code") => has_forbid_unsafe = true,
                Some("deny") => {
                    has_idioms |= words.contains(&"rust_2018_idioms");
                    has_debug_impls |= words.contains(&"missing_debug_implementations");
                }
                _ => {}
            }
            i = j;
            continue;
        }
        i += 1;
    }
    let mut missing = Vec::new();
    if !has_forbid_unsafe {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !has_idioms {
        missing.push("#![deny(rust_2018_idioms)]");
    }
    if !has_debug_impls {
        missing.push("#![deny(missing_debug_implementations)]");
    }
    missing
        .into_iter()
        .map(|attr| Finding {
            rule: "conformance/lint-header",
            path: info.rel_path.clone(),
            line: 1,
            message: format!("crate root is missing `{attr}`"),
            witness: Vec::new(),
            waived: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_info(deterministic: bool) -> FileInfo {
        FileInfo {
            rel_path: "crates/x/src/lib.rs".to_owned(),
            crate_key: if deterministic { "sim".to_owned() } else { "bench".to_owned() },
            context: FileContext::Lib,
            is_crate_root: false,
        }
    }

    fn scan(info: &FileInfo, src: &str) -> FileScan {
        let toks = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        scan_tokens(info, &toks, &lines)
    }

    #[test]
    fn determinism_rules_only_bind_deterministic_crates() {
        let src = "use std::time::Instant;\nfn f() { let m = HashMap::new(); }";
        let det = scan(&lib_info(true), src);
        assert_eq!(det.findings.len(), 2);
        let free = scan(&lib_info(false), src);
        assert!(free.findings.is_empty());
    }

    #[test]
    fn unsafe_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { unsafe { core::hint::unreachable_unchecked() } }\n}";
        let s = scan(&lib_info(false), src);
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].rule, "hotpath/unsafe");
    }

    #[test]
    fn unwrap_sites_skip_test_code_and_bins() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g(y: Option<u8>) { y.unwrap(); } }";
        let s = scan(&lib_info(false), src);
        assert_eq!(s.unwrap_sites.len(), 1);
        let mut bin = lib_info(false);
        bin.context = FileContext::Bin;
        assert!(scan(&bin, src).unwrap_sites.is_empty());
    }

    #[test]
    fn print_macros_flagged_in_lib_only() {
        let src = "fn f() { println!(\"x\"); }";
        assert_eq!(scan(&lib_info(false), src).findings.len(), 1);
        let mut bin = lib_info(false);
        bin.context = FileContext::Bin;
        assert!(scan(&bin, src).findings.is_empty());
    }

    #[test]
    fn linear_scans_flagged_on_hot_path_lib_code_only() {
        let src = "fn f(v: &[f64]) { v.iter().min_by(|a, b| a.total_cmp(b)); }\n\
                   #[cfg(test)]\nmod t { fn g(v: &[u8]) { v.iter().max_by_key(|x| **x); } }";
        let mut hot = lib_info(true); // crate_key "sim" is hot-path
        let s = scan(&hot, src);
        assert_eq!(s.findings.len(), 1, "{:?}", s.findings);
        assert_eq!(s.findings[0].rule, "hotpath/linear-scan");
        // Test code, non-hot-path crates and bins are exempt.
        assert!(scan(&lib_info(false), src).findings.is_empty(), "bench is not hot-path");
        hot.context = FileContext::Bin;
        assert!(scan(&hot, src).findings.is_empty());
        // A bare ident `min_by` (no method dot) is not a scan.
        let free = "fn min_by() {}";
        assert!(scan(&lib_info(true), free).findings.is_empty());
    }

    #[test]
    fn sorts_flagged_on_hot_path_lib_code_only() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_unstable_by(f64::total_cmp); }\n\
                   fn g(v: &mut Vec<u8>) { v.sort(); }\n\
                   #[cfg(test)]\nmod t { fn h(v: &mut Vec<u8>) { v.sort_by_key(|x| *x); } }";
        let mut hot = lib_info(true); // crate_key "sim" is hot-path
        let s = scan(&hot, src);
        assert_eq!(s.findings.len(), 2, "{:?}", s.findings);
        assert!(s.findings.iter().all(|f| f.rule == "hotpath/sort-in-loop"));
        assert!(scan(&lib_info(false), src).findings.is_empty(), "bench is not hot-path");
        hot.context = FileContext::Test;
        assert!(scan(&hot, src).findings.is_empty(), "tests may sort");
        // A field access `x.sort` (no call parens) and a free fn named
        // `sort` are not sorts.
        assert!(scan(&lib_info(true), "fn sort() {}\nfn f(s: &S) { s.sort; }").findings.is_empty());
    }

    #[test]
    fn lint_header_checks_crate_roots() {
        let mut info = lib_info(false);
        info.is_crate_root = true;
        let missing = scan(&info, "pub fn f() {}\n");
        assert_eq!(missing.findings.len(), 3);
        let ok = scan(
            &info,
            "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms)]\n#![deny(missing_debug_implementations)]\n",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn combined_deny_attr_satisfies_both() {
        let mut info = lib_info(false);
        info.is_crate_root = true;
        let ok = scan(
            &info,
            "#![forbid(unsafe_code)]\n#![deny(rust_2018_idioms, missing_debug_implementations)]\n",
        );
        assert!(ok.findings.is_empty());
    }
}

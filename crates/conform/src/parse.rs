//! A lightweight item parser over the [`lexer`](crate::lexer) stream.
//!
//! The token rules see one line at a time; the graph analyses need to know
//! *which function* a call sits in and *what* it calls. This module
//! extracts exactly that — no types, no expressions, no borrow structure:
//!
//! * `fn` items with their enclosing `impl`/`trait` self type, definition
//!   line, and `#[cfg(test)]` scoping (inherited from the lexer's marks);
//! * call sites inside each body — `recv.method(..)` receiver calls and
//!   `a::B::c(..)` path calls (turbofish skipped), each with its source
//!   line;
//! * macro invocation sites (`name!…`), so `vec![]`, `format!` and the
//!   panic family are visible to the taint engine;
//! * `// conform::hot_root` marker comments: the annotation convention for
//!   decision-loop entry points. A marker binds to the next `fn` item that
//!   starts within [`HOT_ROOT_ATTACH_WINDOW`] lines (attributes and
//!   visibility may sit between), and an unbound marker is reported by the
//!   caller as a finding — a dangling annotation is a lie in the source.
//!
//! `debug_assert*` macro arguments are skipped entirely: they are compiled
//! out of release builds, so nothing inside them can put work or panics on
//! the shipped hot path.

use crate::lexer::{lex, Tok, TokKind};

/// A marker comment binds to a `fn` whose `fn` keyword starts at most this
/// many lines below it (room for `#[inline]`, visibility, one attribute).
pub const HOT_ROOT_ATTACH_WINDOW: u32 = 4;

/// The marker-comment text that declares a decision-loop entry point.
pub const HOT_ROOT_MARKER: &str = "conform::hot_root";

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written: `a::B::c(..)` → `["a", "B", "c"]`;
    /// receiver calls have exactly one segment.
    pub path: Vec<String>,
    /// True for `.name(..)` receiver (method) calls.
    pub method: bool,
    /// 1-based source line of the called name.
    pub line: u32,
    /// True when the call sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

impl CallSite {
    /// The called name (last path segment).
    pub fn name(&self) -> &str {
        self.path.last().map_or("", String::as_str)
    }

    /// The segment qualifying the name (`B` in `a::B::c`), if any.
    pub fn qualifier(&self) -> Option<&str> {
        (self.path.len() >= 2).then(|| self.path[self.path.len() - 2].as_str())
    }
}

/// One macro invocation site (`name!…`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacroSite {
    /// Macro name (without the `!`).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// True when the invocation sits inside a test item.
    pub in_test: bool,
}

/// One `fn` item with everything the graph builder needs.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type when defined inside `impl Ty`/`impl Tr for Ty`/`trait Ty`.
    pub self_ty: Option<String>,
    /// Crate key (directory under `crates/`, or `root`).
    pub crate_key: String,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the item is test-only.
    pub in_test: bool,
    /// True when a `// conform::hot_root` marker binds to this item.
    pub hot_root: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Macro invocation sites in the body, in source order.
    pub macros: Vec<MacroSite>,
}

impl FnItem {
    /// `Ty::name` or bare `name` — the display form used in witness paths.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Result of parsing one file: its functions plus any hot-root markers
/// that failed to bind to a `fn` (each is the marker's line).
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path of the parsed file.
    pub rel_path: String,
    /// Every `fn` item in the file.
    pub fns: Vec<FnItem>,
    /// Lines of `conform::hot_root` markers no `fn` claimed.
    pub unbound_markers: Vec<u32>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// Parses one source file into its [`FnItem`]s.
pub fn parse_file(crate_key: &str, rel_path: &str, src: &str) -> ParsedFile {
    let toks = lex(src);
    let markers = marker_lines(src);
    let mut p = Parser {
        toks: &toks,
        crate_key,
        rel_path,
        markers,
        marker_used: Vec::new(),
        fns: Vec::new(),
    };
    p.marker_used = vec![false; p.markers.len()];
    p.parse_items(0, toks.len(), None);
    let unbound = p
        .markers
        .iter()
        .zip(p.marker_used.iter())
        .filter(|(_, used)| !**used)
        .map(|(l, _)| *l)
        .collect();
    ParsedFile { rel_path: rel_path.to_owned(), fns: p.fns, unbound_markers: unbound }
}

/// 1-based lines of `// conform::hot_root` marker comments. The marker
/// must be the first word of the comment — prose that merely *mentions*
/// the marker (like this doc comment) is not an annotation.
fn marker_lines(src: &str) -> Vec<u32> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with("//")
                && t.trim_start_matches('/').trim_start_matches('!').trim_start().starts_with(HOT_ROOT_MARKER)
        })
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

struct Parser<'a> {
    toks: &'a [Tok],
    crate_key: &'a str,
    rel_path: &'a str,
    markers: Vec<u32>,
    marker_used: Vec<bool>,
    fns: Vec<FnItem>,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Walks items in `[start, end)`, descending into `mod`/`impl`/`trait`
    /// bodies; `self_ty` is the enclosing impl/trait type, if any.
    fn parse_items(&mut self, start: usize, end: usize, self_ty: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.text(i) {
                "fn" if self.is_ident(i + 1) => i = self.parse_fn(i, end, self_ty),
                "impl" => i = self.parse_impl(i, end),
                "trait" if self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_owned();
                    match self.find_body(i + 2, end) {
                        Some((open, close)) => {
                            self.parse_items(open + 1, close, Some(&name));
                            i = close + 1;
                        }
                        None => i = end,
                    }
                }
                "mod" if self.is_ident(i + 1) => {
                    if self.text(i + 2) == "{" {
                        match self.match_brace(i + 2, end) {
                            Some(close) => {
                                self.parse_items(i + 3, close, self_ty);
                                i = close + 1;
                            }
                            None => i = end,
                        }
                    } else {
                        i += 2; // `mod name;`
                    }
                }
                "{" => match self.match_brace(i, end) {
                    // A stray block at item level (const initializer etc.):
                    // skip it whole so its braces cannot desync the walk.
                    Some(close) => i = close + 1,
                    None => i = end,
                },
                _ => i += 1,
            }
        }
    }

    /// Parses `impl … {`: resolves the self type (the path after `for` in
    /// trait impls), then walks the body items under it.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        j = self.skip_angles(j, end);
        let (mut ty, mut j) = self.parse_type_path(j, end);
        // Scan to the body `{`, re-resolving after `for` (trait impls) and
        // skipping `where` clauses (brace-free by grammar).
        while j < end && self.text(j) != "{" {
            if self.text(j) == "for" {
                let (t2, j2) = self.parse_type_path(j + 1, end);
                ty = t2.or(ty);
                j = j2;
                continue;
            }
            if self.text(j) == "<" {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        match self.match_brace(j, end) {
            Some(close) => {
                let ty = ty.unwrap_or_default();
                self.parse_items(j + 1, close, if ty.is_empty() { None } else { Some(&ty) });
                close + 1
            }
            None => end,
        }
    }

    /// Parses a type path (`&mut a::B<T>` → `B`), returning the final type
    /// name and the index just past the path.
    fn parse_type_path(&self, mut j: usize, end: usize) -> (Option<String>, usize) {
        while j < end
            && (matches!(self.text(j), "&" | "*" | "(" | ")" | "!")
                || matches!(self.text(j), "mut" | "dyn" | "const")
                || self.toks[j].kind == TokKind::Lifetime)
        {
            j += 1;
        }
        let mut last: Option<String> = None;
        while j < end && self.is_ident(j) && !matches!(self.text(j), "for" | "where") {
            last = Some(self.text(j).to_owned());
            j += 1;
            if self.text(j) == "<" {
                j = self.skip_angles(j, end);
            }
            if self.text(j) == "::" {
                j += 1;
                continue;
            }
            break;
        }
        (last, j)
    }

    /// Skips a balanced `<…>` group starting at `j` (or returns `j` when
    /// not at `<`). Bails at `{`/`;` so malformed input cannot run away.
    fn skip_angles(&self, mut j: usize, end: usize) -> usize {
        if self.text(j) != "<" {
            return j;
        }
        let mut depth = 0i32;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                "{" | ";" => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Finds the next `{ … }` body from `from`, stopping at `;` (a
    /// body-less declaration). Returns (open, close) token indices.
    fn find_body(&self, from: usize, end: usize) -> Option<(usize, usize)> {
        let mut j = from;
        while j < end {
            match self.text(j) {
                "{" => return self.match_brace(j, end).map(|c| (j, c)),
                ";" => return None,
                "<" => {
                    j = self.skip_angles(j, end);
                    continue;
                }
                _ => j += 1,
            }
        }
        None
    }

    /// Index of the `}` matching the `{` at `open`.
    fn match_brace(&self, open: usize, end: usize) -> Option<usize> {
        if self.text(open) != "{" {
            return None;
        }
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            match self.text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parses the `fn` item starting at token `i` (the `fn` keyword) and
    /// returns the index just past it.
    fn parse_fn(&mut self, i: usize, end: usize, self_ty: Option<&str>) -> usize {
        let name = self.text(i + 1).to_owned();
        let fn_line = self.toks[i].line;
        let hot_root = self.claim_marker(fn_line);
        let Some((open, close)) = self.find_body(i + 2, end) else {
            // Declaration only (trait method signature): skip past it.
            let mut j = i + 2;
            while j < end && self.text(j) != ";" && self.text(j) != "{" {
                j += 1;
            }
            return j + 1;
        };
        let mut item = FnItem {
            name,
            self_ty: self_ty.map(str::to_owned),
            crate_key: self.crate_key.to_owned(),
            rel_path: self.rel_path.to_owned(),
            line: fn_line,
            in_test: self.toks[i].in_test,
            hot_root,
            calls: Vec::new(),
            macros: Vec::new(),
        };
        self.parse_body(open + 1, close, &mut item);
        self.fns.push(item);
        close + 1
    }

    /// Marks the closest unused marker within the attach window as used.
    fn claim_marker(&mut self, fn_line: u32) -> bool {
        for (k, m) in self.markers.iter().enumerate() {
            if !self.marker_used[k] && *m < fn_line && fn_line - *m <= HOT_ROOT_ATTACH_WINDOW {
                self.marker_used[k] = true;
                return true;
            }
        }
        false
    }

    /// Collects call and macro sites in `[start, end)`, recursing into
    /// nested items so their bodies are attributed to themselves.
    fn parse_body(&mut self, start: usize, end: usize, item: &mut FnItem) {
        let mut k = start;
        while k < end {
            match self.text(k) {
                "fn" if self.is_ident(k + 1) => {
                    let ty = item.self_ty.clone();
                    k = self.parse_fn(k, end, ty.as_deref());
                    continue;
                }
                "impl" => {
                    k = self.parse_impl(k, end);
                    continue;
                }
                _ => {}
            }
            let t = &self.toks[k];
            if t.kind != TokKind::Ident {
                k += 1;
                continue;
            }
            // Macro invocation.
            if self.text(k + 1) == "!" && self.is_macro_head(k) {
                let name = t.text.clone();
                let in_test = t.in_test;
                let line = t.line;
                // `debug_assert*` bodies vanish from release builds; skip
                // their argument tokens so nothing inside them taints.
                if name.starts_with("debug_assert") {
                    k = self.skip_macro_args(k + 2, end);
                } else {
                    item.macros.push(MacroSite { name, line, in_test });
                    k += 2;
                }
                continue;
            }
            // Call site: ident (turbofish?) `(`.
            let after = self.after_turbofish(k + 1, end);
            if self.text(after) == "(" && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                let (path, head, method) = self.call_path(k);
                item.calls.push(CallSite { path, method, line: self.toks[head].line, in_test: t.in_test });
            }
            k += 1;
        }
    }

    /// True when the ident at `k` heads a macro invocation rather than a
    /// `!=` comparison or a `!x` negation (`a != b` lexes as `a`, `!`, `=`).
    fn is_macro_head(&self, k: usize) -> bool {
        self.text(k + 2) != "="
    }

    /// Skips the delimiter group right after a macro's `!`, if any.
    fn skip_macro_args(&self, j: usize, end: usize) -> usize {
        let (open, close) = match self.text(j) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return j,
        };
        let mut depth = 0i32;
        let mut k = j;
        while k < end {
            let t = self.text(k);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        k
    }

    /// `j` just past an ident: skips a `::<…>` turbofish, returning the
    /// index of the token that decides call-ness.
    fn after_turbofish(&self, j: usize, end: usize) -> usize {
        if self.text(j) == "::" && self.text(j + 1) == "<" {
            return self.skip_angles(j + 1, end);
        }
        j
    }

    /// Builds the call path ending at the ident `k`, walking `ident::`
    /// pairs backwards (skipping interior `::<…>` turbofish groups, so
    /// `Vec::<f64>::with_capacity` keeps its `Vec` qualifier); reports
    /// whether a `.` makes it a receiver call.
    fn call_path(&self, k: usize) -> (Vec<String>, usize, bool) {
        let mut head = k;
        let mut segs = vec![self.toks[k].text.clone()];
        while head >= 2 && self.text(head - 1) == "::" {
            let mut j = head - 2;
            if self.text(j) == ">" {
                // Walk the `<…>` group backwards to its opening `<`.
                let mut depth = 0i32;
                loop {
                    match self.text(j) {
                        ">" => depth += 1,
                        "<" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if self.text(j) != "<" || j == 0 {
                    break;
                }
                j -= 1;
                if self.text(j) == "::" {
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
            }
            if !self.is_ident(j) {
                break;
            }
            head = j;
            segs.insert(0, self.toks[j].text.clone());
        }
        let method = head >= 1 && self.text(head - 1) == ".";
        (segs, head, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("sim", "crates/sim/src/sample.rs", src)
    }

    fn find<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} parsed"))
    }

    #[test]
    fn fns_with_impl_context_and_calls() {
        let src = r#"
            pub struct Pool;
            impl Pool {
                pub fn drain(&mut self, v: &[f64]) -> f64 {
                    self.refresh();
                    let lvl = fluid_fill_level(v, 1.0);
                    cloudburst_sched::eq1_slack(lvl, 2.0);
                    Vec::<f64>::with_capacity(8);
                    lvl
                }
                fn refresh(&mut self) {}
            }
            fn free_standing() { helper(3); }
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 3);
        let drain = find(&p, "drain");
        assert_eq!(drain.self_ty.as_deref(), Some("Pool"));
        let names: Vec<&str> = drain.calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["refresh", "fluid_fill_level", "eq1_slack", "with_capacity"]);
        assert!(drain.calls[0].method, "self.refresh() is a receiver call");
        assert!(!drain.calls[1].method);
        assert_eq!(drain.calls[2].path, vec!["cloudburst_sched", "eq1_slack"]);
        assert_eq!(drain.calls[3].qualifier(), Some("Vec"));
        assert_eq!(find(&p, "free_standing").self_ty, None);
    }

    #[test]
    fn trait_impls_resolve_the_for_type() {
        let src = "impl<T: Copy> Default for Ring<T> { fn default() -> Self { Ring::new() } }";
        let p = parse(src);
        let d = find(&p, "default");
        assert_eq!(d.self_ty.as_deref(), Some("Ring"));
        assert_eq!(d.calls[0].path, vec!["Ring", "new"]);
    }

    #[test]
    fn hot_root_markers_bind_through_attributes() {
        let src = "// conform::hot_root — decision entry\n#[inline]\npub fn sweep() { step(); }\n\
                   fn unmarked() {}\n// conform::hot_root\nstruct NotAFn;\n";
        let p = parse(src);
        assert!(find(&p, "sweep").hot_root);
        assert!(!find(&p, "unmarked").hot_root);
        assert_eq!(p.unbound_markers, vec![5], "marker above a struct dangles");
    }

    #[test]
    fn macros_recorded_and_debug_assert_args_skipped() {
        let src = r#"
            fn f(v: &mut Vec<u32>) {
                debug_assert!(v.iter().map(|x| alloc_heavy(*x)).count() > 0);
                assert!(v.len() < 10, "cap");
                v.push(1);
                let s = format!("x{}", 1);
                if v.len() != 2 { panic!("boom"); }
            }
        "#;
        let p = parse(src);
        let f = find(&p, "f");
        let macros: Vec<&str> = f.macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, vec!["assert", "format", "panic"]);
        assert!(
            f.calls.iter().all(|c| c.name() != "alloc_heavy"),
            "debug_assert args are release-dead and must not produce call sites"
        );
        assert!(f.calls.iter().any(|c| c.name() == "push" && c.method));
        // `v.len() != 2` must not read as a `len!` macro.
        assert!(f.calls.iter().filter(|c| c.name() == "len").count() >= 2);
    }

    #[test]
    fn nested_fns_own_their_bodies() {
        let src = "fn outer() { inner_call(); fn nested() { deep_call(); } outer_call(); }";
        let p = parse(src);
        let outer = find(&p, "outer");
        let names: Vec<&str> = outer.calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["inner_call", "outer_call"]);
        assert_eq!(find(&p, "nested").calls[0].name(), "deep_call");
    }

    #[test]
    fn cfg_test_items_mark_their_calls() {
        let src = "fn prod() { go(); }\n#[cfg(test)]\nmod t {\n  #[test]\n  fn t1() { check(); }\n}";
        let p = parse(src);
        assert!(!find(&p, "prod").in_test);
        let t1 = find(&p, "t1");
        assert!(t1.in_test && t1.calls[0].in_test);
    }

    #[test]
    fn turbofish_collect_is_one_call() {
        let src = "fn f(v: &[u8]) { let w = v.iter().copied().collect::<Vec<u8>>(); }";
        let p = parse(src);
        let names: Vec<&str> = find(&p, "f").calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["iter", "copied", "collect"]);
    }
}

//! Workspace walking, file classification, budget aggregation, waiver
//! application, and the final deterministic [`Report`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::graph;
use crate::lexer::lex;
use crate::parse::{parse_file, ParsedFile, HOT_ROOT_ATTACH_WINDOW, HOT_ROOT_MARKER};
use crate::report::Report;
use crate::rules::{scan_tokens, FileContext, FileInfo, Finding, UnwrapSite};
use crate::taint;

/// Errors from scanning a workspace tree.
#[derive(Debug)]
pub enum ScanError {
    /// An I/O failure, with the path it happened on.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

/// Directory names that are never scanned: build output and fixture corpora
/// (fixture files are rule test *data*, not workspace code).
const SKIP_DIRS: &[&str] = &["fixtures", "target"];

/// Scans the workspace rooted at `root` and applies `cfg`'s waivers and
/// budgets. `vendor/` is excluded: those crates are stand-ins for external
/// dependencies, policed by their upstreams, not by this repo's rules.
pub fn scan_workspace(root: &Path, cfg: &Config) -> Result<Report, ScanError> {
    let mut files: Vec<(PathBuf, FileInfo)> = Vec::new();

    // Meta-crate: src/, tests/, examples/ at the root.
    for dir in ["src", "tests", "examples"] {
        collect(root, &root.join(dir), "root", &mut files)?;
    }
    // Workspace crates under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| ScanError::Io(crates_dir.clone(), e))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let key = crate_dir
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            for dir in ["src", "tests", "benches", "examples"] {
                collect(root, &crate_dir.join(dir), &key, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));

    let mut findings: Vec<Finding> = Vec::new();
    // (crate key, sites) accumulated across the crate's library files.
    let mut unwrap_by_crate: Vec<(String, Vec<UnwrapSite>)> = Vec::new();
    // The graph corpus: every parsed fn from library files. Bins, tests
    // and examples stay out so reachability starts and ends in the code
    // the paper's invariants are about.
    let mut corpus_fns = Vec::new();
    for (abs, info) in &files {
        let src = fs::read_to_string(abs).map_err(|e| ScanError::Io(abs.clone(), e))?;
        let toks = lex(&src);
        let lines: Vec<&str> = src.lines().collect();
        let scan = scan_tokens(info, &toks, &lines);
        findings.extend(scan.findings);
        if !scan.unwrap_sites.is_empty() {
            match unwrap_by_crate.iter_mut().find(|(k, _)| k == &info.crate_key) {
                Some((_, sites)) => sites.extend(scan.unwrap_sites),
                None => unwrap_by_crate.push((info.crate_key.clone(), scan.unwrap_sites)),
            }
        }
        if info.context == FileContext::Lib {
            let parsed = parse_file(&info.crate_key, &info.rel_path, &src);
            findings.extend(dangling_marker_findings(&parsed));
            corpus_fns.extend(parsed.fns);
        }
    }

    // Graph analyses: alloc-reachable, panic-reachable, determinism taint.
    findings.extend(taint::analyze(&graph::build(corpus_fns), cfg));

    // Budget check: a crate over its unwrap budget reports every site, so
    // the diff pinpoints each candidate for conversion.
    unwrap_by_crate.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, sites) in unwrap_by_crate {
        let budget = cfg.unwrap_budget(&key);
        if sites.len() > budget {
            for (path, line, snippet) in sites.iter() {
                findings.push(Finding {
                    rule: "hotpath/unwrap-budget",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "crate `{key}` has {} library unwrap() calls (budget {budget}): `{snippet}`",
                        sites.len()
                    ),
                    witness: Vec::new(),
                    waived: None,
                });
            }
        }
    }

    // Waivers: rule + exact path, and the exact line when anchored. A
    // stale waiver is itself a finding — the allowlist must shrink when
    // the code it excuses goes away, and a drifted line anchor must be
    // re-audited, not silently re-aimed.
    let mut used = vec![false; cfg.waivers.len()];
    for f in &mut findings {
        for (w, hit) in cfg.waivers.iter().zip(used.iter_mut()) {
            if w.rule == f.rule && w.matches_site(&f.path, f.line) {
                f.waived = Some(w.justification.clone());
                *hit = true;
                break;
            }
        }
    }
    for (w, hit) in cfg.waivers.iter().zip(used.iter()) {
        if !hit {
            let message = match w.line {
                Some(l) => format!(
                    "waiver for `{}` anchored to line {l} matches nothing — the code moved; re-audit and re-anchor it",
                    w.rule
                ),
                None => format!("waiver for `{}` matches nothing — remove it", w.rule),
            };
            findings.push(Finding {
                rule: "conformance/unused-waiver",
                path: w.path.clone(),
                line: 0,
                message,
                witness: Vec::new(),
                waived: None,
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    Ok(Report { findings })
}

/// Findings for `// conform::hot_root` markers that bound to no `fn`
/// (more than [`HOT_ROOT_ATTACH_WINDOW`] lines above it, or a typo'd
/// placement): a root the analyzer silently ignored would fake a clean
/// report.
pub fn dangling_marker_findings(parsed: &ParsedFile) -> Vec<Finding> {
    parsed
        .unbound_markers
        .iter()
        .map(|&line| Finding {
            rule: "conformance/dangling-hot-root",
            path: parsed.rel_path.clone(),
            line,
            message: format!(
                "`{HOT_ROOT_MARKER}` marker binds to no `fn` within {HOT_ROOT_ATTACH_WINDOW} lines — the root is not being analyzed"
            ),
            witness: Vec::new(),
            waived: None,
        })
        .collect()
}

/// Recursively collects `.rs` files under `dir`, classifying each.
fn collect(
    root: &Path,
    dir: &Path,
    crate_key: &str,
    out: &mut Vec<(PathBuf, FileInfo)>,
) -> Result<(), ScanError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| ScanError::Io(dir.to_path_buf(), e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect(root, &path, crate_key, out)?;
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let context = classify(&rel);
        let is_crate_root = rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
        out.push((
            path,
            FileInfo {
                rel_path: rel,
                crate_key: crate_key.to_owned(),
                context,
                is_crate_root,
            },
        ));
    }
    Ok(())
}

/// Classifies a workspace-relative path into a [`FileContext`].
fn classify(rel: &str) -> FileContext {
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") {
        FileContext::Test
    } else if in_dir("examples") {
        FileContext::Example
    } else if in_dir("bin") || rel.ends_with("/main.rs") {
        FileContext::Bin
    } else {
        FileContext::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_contexts() {
        assert_eq!(classify("crates/sim/src/event.rs"), FileContext::Lib);
        assert_eq!(classify("crates/bench/src/bin/perfsmoke.rs"), FileContext::Bin);
        assert_eq!(classify("crates/conform/src/main.rs"), FileContext::Bin);
        assert_eq!(classify("crates/net/tests/props.rs"), FileContext::Test);
        assert_eq!(classify("crates/bench/benches/event_kernel.rs"), FileContext::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileContext::Example);
        assert_eq!(classify("tests/paper_shapes.rs"), FileContext::Test);
        assert_eq!(classify("src/lib.rs"), FileContext::Lib);
    }
}

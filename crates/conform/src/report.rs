//! Deterministic report rendering.
//!
//! Findings arrive sorted by `(rule, path, line, message)` and render one
//! per line, so two runs over the same tree produce byte-identical output
//! and CI diffs stay reviewable. Waived findings are printed (the waiver is
//! an audited fact, not an invisibility cloak) but do not affect the exit
//! status.

use crate::rules::Finding;

/// A finished conformance report.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings, sorted by `(rule, path, line, message)`.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of findings not covered by a waiver.
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_none()).count()
    }

    /// Renders the report as stable, line-oriented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(f.rule);
            out.push(' ');
            out.push_str(&f.path);
            if f.line > 0 {
                out.push_str(&format!(":{}", f.line));
            }
            out.push(' ');
            out.push_str(&f.message);
            if let Some(j) = &f.waived {
                out.push_str(&format!(" [waived: {j}]"));
            }
            out.push('\n');
        }
        let waived = self.findings.len() - self.unwaived();
        out.push_str(&format!(
            "cloudburst-conform: {} finding(s), {} waived, {} unwaived\n",
            self.findings.len(),
            waived,
            self.unwaived()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable_and_counts_waivers() {
        let r = Report {
            findings: vec![
                Finding {
                    rule: "determinism/wall-clock",
                    path: "crates/x/src/lib.rs".to_owned(),
                    line: 3,
                    message: "wall-clock type: `Instant::now()`".to_owned(),
                    waived: None,
                },
                Finding {
                    rule: "hotpath/unsafe",
                    path: "crates/y/tests/t.rs".to_owned(),
                    line: 7,
                    message: "`unsafe`: `unsafe impl X {}`".to_owned(),
                    waived: Some("audited".to_owned()),
                },
            ],
        };
        let text = r.render();
        assert!(text.contains("crates/x/src/lib.rs:3"));
        assert!(text.contains("[waived: audited]"));
        assert!(text.ends_with("2 finding(s), 1 waived, 1 unwaived\n"));
        assert_eq!(r.unwaived(), 1);
        assert_eq!(text, r.render(), "rendering must be deterministic");
    }
}

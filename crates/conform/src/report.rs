//! Deterministic report rendering — text and JSON.
//!
//! Findings arrive sorted by `(rule, path, line, message)` and render one
//! per line, so two runs over the same tree produce byte-identical output
//! and CI diffs stay reviewable. Waived findings are printed (the waiver is
//! an audited fact, not an invisibility cloak) but do not affect the exit
//! status. Graph findings additionally render their witness path — the
//! `root → … → sink` chain that makes the finding a checkable claim.
//!
//! The JSON form ([`Report::render_json`]) is hand-built (the linter is
//! dependency-free by policy) with a fixed key order, so it is as
//! byte-stable as the text form and CI can archive it next to the
//! `BENCH_*` artifacts.

use crate::rules::Finding;

/// A finished conformance report.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings, sorted by `(rule, path, line, message)`.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of findings not covered by a waiver.
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_none()).count()
    }

    /// Renders the report as stable, line-oriented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(f.rule);
            out.push(' ');
            out.push_str(&f.path);
            if f.line > 0 {
                out.push_str(&format!(":{}", f.line));
            }
            out.push(' ');
            out.push_str(&f.message);
            if let Some(j) = &f.waived {
                out.push_str(&format!(" [waived: {j}]"));
            }
            out.push('\n');
            if !f.witness.is_empty() {
                out.push_str("    via: ");
                out.push_str(&f.witness.join(" -> "));
                out.push('\n');
            }
        }
        let waived = self.findings.len() - self.unwaived();
        out.push_str(&format!(
            "cloudburst-conform: {} finding(s), {} waived, {} unwaived\n",
            self.findings.len(),
            waived,
            self.unwaived()
        ));
        out
    }

    /// Renders the report as deterministic JSON: fixed key order, findings
    /// in the same sort as the text form, `\n`-terminated.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str("\"witness\": [");
            for (k, hop) in f.witness.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(hop));
            }
            out.push_str("], ");
            match &f.waived {
                Some(j) => out.push_str(&format!("\"waived\": {}", json_str(j))),
                None => out.push_str("\"waived\": null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let waived = self.findings.len() - self.unwaived();
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"waived\": {waived},\n"));
        out.push_str(&format!("  \"unwaived\": {}\n", self.unwaived()));
        out.push_str("}\n");
        out
    }
}

/// Escapes a string per JSON: quotes, backslashes, and control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "determinism/wall-clock",
                    path: "crates/x/src/lib.rs".to_owned(),
                    line: 3,
                    message: "wall-clock type: `Instant::now()`".to_owned(),
                    witness: Vec::new(),
                    waived: None,
                },
                Finding {
                    rule: "hotpath/alloc-reachable",
                    path: "crates/x/src/lib.rs".to_owned(),
                    line: 9,
                    message: "allocating call `.push(..)` in `deep`".to_owned(),
                    witness: vec![
                        "sweep (crates/x/src/lib.rs:2)".to_owned(),
                        "deep (crates/x/src/lib.rs:8)".to_owned(),
                    ],
                    waived: None,
                },
                Finding {
                    rule: "hotpath/unsafe",
                    path: "crates/y/tests/t.rs".to_owned(),
                    line: 7,
                    message: "`unsafe`: `unsafe impl X {}`".to_owned(),
                    witness: Vec::new(),
                    waived: Some("audited".to_owned()),
                },
            ],
        }
    }

    #[test]
    fn render_is_stable_and_counts_waivers() {
        let r = sample();
        let text = r.render();
        assert!(text.contains("crates/x/src/lib.rs:3"));
        assert!(text.contains("[waived: audited]"));
        assert!(text.contains("    via: sweep (crates/x/src/lib.rs:2) -> deep (crates/x/src/lib.rs:8)\n"));
        assert!(text.ends_with("3 finding(s), 1 waived, 2 unwaived\n"));
        assert_eq!(r.unwaived(), 2);
        assert_eq!(text, r.render(), "rendering must be deterministic");
    }

    #[test]
    fn json_is_stable_and_carries_witness() {
        let r = sample();
        let json = r.render_json();
        assert_eq!(json, r.render_json(), "JSON must be byte-stable");
        assert!(json.contains("\"rule\": \"hotpath/alloc-reachable\""));
        assert!(json.contains("\"witness\": [\"sweep (crates/x/src/lib.rs:2)\", \"deep (crates/x/src/lib.rs:8)\"]"));
        assert!(json.contains("\"waived\": \"audited\""));
        assert!(json.contains("\"total\": 3"));
        assert!(json.contains("\"unwaived\": 2"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = Report { findings: Vec::new() };
        assert_eq!(
            r.render_json(),
            "{\n  \"findings\": [],\n  \"total\": 0,\n  \"waived\": 0,\n  \"unwaived\": 0\n}\n"
        );
    }
}

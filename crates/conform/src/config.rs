//! `conform.toml` — waivers and budgets, parsed in-tree.
//!
//! The file is a deliberately small TOML subset (no dependency on a TOML
//! crate): `[[waiver]]` array-of-tables entries with `rule`, `path`, a
//! mandatory non-empty `justification`, and an optional `line` anchor
//! (when present, the waiver applies only to findings on exactly that
//! line — a drifted anchor surfaces as `conformance/unused-waiver`
//! instead of silently blessing whatever moved there), plus a
//! `[budgets.unwrap]` table
//! mapping crate keys (directory names under `crates/`, or `root` for the
//! meta-crate) to the number of `unwrap()` calls their library code may
//! contain. Anything the parser does not recognize is an error — the file
//! is an audited allowlist, not a config dumping ground.

use std::fmt;

/// One waiver: suppresses findings of `rule` in `path` (workspace-relative
/// file), with a human justification that the report echoes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id, e.g. `determinism/default-hasher`.
    pub rule: String,
    /// Workspace-relative file path the waiver applies to.
    pub path: String,
    /// Optional line anchor: when set, the waiver only matches findings
    /// on exactly this 1-based line.
    pub line: Option<u32>,
    /// Why the finding is acceptable — mandatory and non-empty.
    pub justification: String,
}

impl Waiver {
    /// Whether this waiver covers a finding at `path:line` (the rule is
    /// matched separately by the caller).
    pub fn matches_site(&self, path: &str, line: u32) -> bool {
        self.path == path && self.line.is_none_or(|l| l == line)
    }
}

/// Parsed configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Config {
    /// All waivers, in file order.
    pub waivers: Vec<Waiver>,
    /// Per-crate `unwrap()` budgets for library code (default 0).
    pub unwrap_budgets: Vec<(String, usize)>,
}

impl Config {
    /// The unwrap budget for a crate key (0 when unlisted).
    pub fn unwrap_budget(&self, crate_key: &str) -> usize {
        self.unwrap_budgets
            .iter()
            .find(|(k, _)| k == crate_key)
            .map_or(0, |(_, n)| *n)
    }
}

/// Errors from parsing `conform.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A waiver is missing its justification (or it is empty).
    MissingJustification {
        /// Line the offending `[[waiver]]` starts on.
        line: usize,
    },
    /// A waiver is missing `rule` or `path`.
    IncompleteWaiver {
        /// Line the offending `[[waiver]]` starts on.
        line: usize,
    },
    /// Anything else the subset parser rejects.
    Parse {
        /// 1-based line of the offending text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingJustification { line } => {
                write!(f, "conform.toml:{line}: waiver has no justification — every waiver must say why")
            }
            ConfigError::IncompleteWaiver { line } => {
                write!(f, "conform.toml:{line}: waiver needs both `rule` and `path`")
            }
            ConfigError::Parse { line, msg } => write!(f, "conform.toml:{line}: {msg}"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Top,
    Waiver,
    UnwrapBudgets,
}

/// (start line, rule, path, line anchor, justification) of a waiver
/// being built.
type PendingWaiver = (usize, Option<String>, Option<String>, Option<u32>, Option<String>);

/// Parses the `conform.toml` subset.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::Top;
    let mut pending: Option<PendingWaiver> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            finish_waiver(&mut cfg, pending.take())?;
            pending = Some((lineno, None, None, None, None));
            section = Section::Waiver;
            continue;
        }
        if line == "[budgets.unwrap]" {
            finish_waiver(&mut cfg, pending.take())?;
            section = Section::UnwrapBudgets;
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError::Parse {
                line: lineno,
                msg: format!("unknown section {line}"),
            });
        }
        let (key, value) = split_kv(line, lineno)?;
        match section {
            Section::Top => {
                return Err(ConfigError::Parse {
                    line: lineno,
                    msg: format!("key `{key}` outside any section"),
                })
            }
            Section::Waiver => {
                let (_, rule, path, anchor, justification) =
                    pending.as_mut().expect("waiver section always has a pending entry");
                if key == "line" {
                    let n: u32 = value.parse().map_err(|_| ConfigError::Parse {
                        line: lineno,
                        msg: format!("waiver `line` must be a positive integer, got {value}"),
                    })?;
                    if n == 0 {
                        return Err(ConfigError::Parse {
                            line: lineno,
                            msg: "waiver `line` is 1-based; 0 is not a line".to_owned(),
                        });
                    }
                    *anchor = Some(n);
                    continue;
                }
                let value = parse_string(&value, lineno)?;
                match key.as_str() {
                    "rule" => *rule = Some(value),
                    "path" => *path = Some(value),
                    "justification" => *justification = Some(value),
                    _ => {
                        return Err(ConfigError::Parse {
                            line: lineno,
                            msg: format!("unknown waiver key `{key}`"),
                        })
                    }
                }
            }
            Section::UnwrapBudgets => {
                let n: usize = value.parse().map_err(|_| ConfigError::Parse {
                    line: lineno,
                    msg: format!("budget for `{key}` must be a non-negative integer"),
                })?;
                if cfg.unwrap_budgets.iter().any(|(k, _)| *k == key) {
                    return Err(ConfigError::Parse {
                        line: lineno,
                        msg: format!("duplicate budget for `{key}`"),
                    });
                }
                cfg.unwrap_budgets.push((key, n));
            }
        }
    }
    finish_waiver(&mut cfg, pending.take())?;
    Ok(cfg)
}

fn finish_waiver(cfg: &mut Config, pending: Option<PendingWaiver>) -> Result<(), ConfigError> {
    let Some((line, rule, path, anchor, justification)) = pending else {
        return Ok(());
    };
    let (Some(rule), Some(path)) = (rule, path) else {
        return Err(ConfigError::IncompleteWaiver { line });
    };
    match justification {
        Some(j) if !j.trim().is_empty() => {
            cfg.waivers.push(Waiver { rule, path, line: anchor, justification: j });
            Ok(())
        }
        _ => Err(ConfigError::MissingJustification { line }),
    }
}

fn split_kv(line: &str, lineno: usize) -> Result<(String, String), ConfigError> {
    let Some(eq) = line.find('=') else {
        return Err(ConfigError::Parse { line: lineno, msg: format!("expected `key = value`, got {line}") });
    };
    let key = line[..eq].trim().trim_matches('"').to_owned();
    let value = line[eq + 1..].trim().to_owned();
    if key.is_empty() || value.is_empty() {
        return Err(ConfigError::Parse { line: lineno, msg: "empty key or value".to_owned() });
    }
    Ok((key, value))
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(ConfigError::Parse {
            line: lineno,
            msg: format!("expected a double-quoted string, got {value}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_waivers_and_budgets() {
        let cfg = parse(
            r#"
# comment
[[waiver]]
rule = "hotpath/unsafe"
path = "crates/qrsm/tests/alloc_free.rs"
justification = "GlobalAlloc is an unsafe trait"

[budgets.unwrap]
net = 0
qrsm = 2
"#,
        )
        .expect("valid config parses");
        assert_eq!(cfg.waivers.len(), 1);
        assert_eq!(cfg.waivers[0].rule, "hotpath/unsafe");
        assert_eq!(cfg.unwrap_budget("qrsm"), 2);
        assert_eq!(cfg.unwrap_budget("net"), 0);
        assert_eq!(cfg.unwrap_budget("unlisted"), 0);
    }

    #[test]
    fn line_anchored_waiver_parses_and_matches_exactly() {
        let cfg = parse(
            "[[waiver]]\nrule = \"hotpath/linear-scan\"\npath = \"crates/sched/src/api.rs\"\n\
             line = 42\njustification = \"Planner argmin\"\n",
        )
        .expect("anchored waiver parses");
        let w = &cfg.waivers[0];
        assert_eq!(w.line, Some(42));
        assert!(w.matches_site("crates/sched/src/api.rs", 42));
        assert!(!w.matches_site("crates/sched/src/api.rs", 43), "anchor is exact");
        assert!(!w.matches_site("crates/sched/src/other.rs", 42));
    }

    #[test]
    fn unanchored_waiver_matches_any_line() {
        let w = Waiver {
            rule: "r".into(),
            path: "p.rs".into(),
            line: None,
            justification: "j".into(),
        };
        assert!(w.matches_site("p.rs", 1) && w.matches_site("p.rs", 9999));
    }

    #[test]
    fn bad_line_anchors_are_rejected() {
        let head = "[[waiver]]\nrule = \"r\"\npath = \"p\"\njustification = \"j\"\n";
        assert!(parse(&format!("{head}line = 0\n")).is_err(), "0 is not a 1-based line");
        assert!(parse(&format!("{head}line = \"7\"\n")).is_err(), "line is an integer, not a string");
        assert!(parse(&format!("{head}line = -3\n")).is_err());
    }

    #[test]
    fn waiver_without_justification_is_rejected() {
        let err = parse("[[waiver]]\nrule = \"hotpath/unsafe\"\npath = \"x.rs\"\n")
            .expect_err("missing justification must be rejected");
        assert_eq!(err, ConfigError::MissingJustification { line: 1 });
    }

    #[test]
    fn empty_justification_is_rejected() {
        let err = parse(
            "[[waiver]]\nrule = \"r\"\npath = \"p\"\njustification = \"  \"\n",
        )
        .expect_err("blank justification must be rejected");
        assert!(matches!(err, ConfigError::MissingJustification { .. }));
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(parse("[surprise]\n").is_err());
        assert!(parse("[[waiver]]\nfoo = \"bar\"\n").is_err());
        assert!(parse("stray = 1\n").is_err());
    }
}

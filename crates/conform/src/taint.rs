//! Transitive analyses over the call graph: the static half of the
//! repo's three headline invariants.
//!
//! * `hotpath/alloc-reachable` — no function reachable from a
//!   `// conform::hot_root` decision entry point may hit an allocating
//!   call: `.push(..)`, `.collect(..)`, `.to_vec(..)`, `Vec::new`,
//!   `*::with_capacity`, `Box::new`, `String::from`, `vec![]`,
//!   `format!`. Sink matching is *syntactic* (flagged whether or not the
//!   name also resolves to a workspace function), so a `Vec::push` can
//!   never hide behind a same-named workspace method. Pushes into
//!   recycled scratch are legal at steady state — those files carry
//!   waivers whose justifications name the scratch discipline, and the
//!   counting-allocator tests (`crates/core/tests/alloc_free*.rs`) stay
//!   the dynamic oracle of the claim.
//! * `hotpath/panic-reachable` — nothing reachable from a hot root may
//!   reach `panic!`/`unreachable!`/`assert!`/`assert_eq!`/`assert_ne!`/
//!   `todo!`/`unimplemented!` or `.unwrap()`/`.expect(..)` outside
//!   `#[cfg(test)]`; `expect("<invariant>")` survives only at graph
//!   leaves named in a waiver. (`debug_assert*` is release-dead and
//!   exempt by construction — the parser drops its argument tokens.)
//! * `determinism/taint` — spawning functions in a nondeterministic source
//!   file (one carrying a `determinism/thread-spawn` waiver: the shard /
//!   runner / live coordinators) taint every deterministic-crate caller
//!   that reaches them. A *source* is a fn in such a file whose body
//!   actually fans out (`crossbeam::scope`, `thread::spawn`, `.spawn(..)`)
//!   — pure helpers that merely live in the same file do not taint, so
//!   the waived file can still export innocent config/constructor code. A caller file carrying a `determinism/taint`
//!   waiver is a *justified boundary*: its finding renders waived and the
//!   taint is absorbed there; an unwaived caller propagates the taint
//!   upward, so a refactor that leaks `live.rs` helpers into the
//!   simulated path lights up every hop back to the first justified
//!   boundary.
//!
//! Every finding carries a witness path — `root → … → sink`, one
//! `name (file:line)` hop at a time — so a violation is a checkable
//! claim, not a verdict.

use std::collections::{BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::Graph;
use crate::rules::{Finding, DETERMINISTIC_CRATES};

/// Receiver-call names that allocate.
const ALLOC_METHODS: &[&str] = &["collect", "push", "to_vec"];

/// `Type::fn` path calls that allocate.
const ALLOC_TYPED: &[(&str, &str)] = &[("Box", "new"), ("String", "from"), ("Vec", "new")];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Macros that panic.
const PANIC_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "panic", "todo", "unimplemented", "unreachable"];

/// Receiver-call names that panic on their failure arm.
const PANIC_METHODS: &[&str] = &["expect", "unwrap"];

/// Runs all three graph analyses; findings are unsorted and unwaived
/// (the caller sorts and applies waivers).
pub fn analyze(graph: &Graph, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    hot_path_findings(graph, &mut findings);
    determinism_taint_findings(graph, cfg, &mut findings);
    findings
}

/// BFS parents from the hot roots: `parent[i] = (caller, call line)` on a
/// shortest witness path, roots have no parent. Deterministic because the
/// graph's functions and edge lists are `(path, line)`-ordered.
fn reach_parents(graph: &Graph) -> Vec<Option<Option<(usize, u32)>>> {
    // Outer Option: reached at all. Inner: parent edge (None for roots).
    let mut parent: Vec<Option<Option<(usize, u32)>>> = vec![None; graph.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for r in graph.hot_roots() {
        if !graph.fns[r].in_test {
            parent[r] = Some(None);
            queue.push_back(r);
        }
    }
    while let Some(i) = queue.pop_front() {
        for e in &graph.edges[i] {
            if e.in_test || parent[e.callee].is_some() {
                continue;
            }
            parent[e.callee] = Some(Some((i, e.line)));
            queue.push_back(e.callee);
        }
    }
    parent
}

/// Renders the witness chain root → … → `i` as `name (file:line)` hops.
fn witness_to(graph: &Graph, parent: &[Option<Option<(usize, u32)>>], i: usize) -> Vec<String> {
    let mut rev = Vec::new();
    let mut cur = i;
    loop {
        let f = &graph.fns[cur];
        rev.push(format!("{} ({}:{})", f.qualified_name(), f.rel_path, f.line));
        match parent[cur] {
            Some(Some((p, _))) => cur = p,
            _ => break,
        }
    }
    rev.reverse();
    rev
}

/// The two hot-path analyses share one reachability pass.
fn hot_path_findings(graph: &Graph, findings: &mut Vec<Finding>) {
    let parent = reach_parents(graph);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for i in 0..graph.fns.len() {
        if parent[i].is_none() {
            continue;
        }
        let f = &graph.fns[i];
        let witness = witness_to(graph, &parent, i);
        let root = witness.first().cloned().unwrap_or_default();
        let mut push = |rule: &'static str,
                        line: u32,
                        what: String,
                        seen: &mut BTreeSet<(String, u32, String)>| {
            if seen.insert((f.rel_path.clone(), line, what.clone())) {
                findings.push(Finding {
                    rule,
                    path: f.rel_path.clone(),
                    line,
                    message: format!("{what} in `{}`, reachable from hot root {root}", f.qualified_name()),
                    witness: witness.clone(),
                    waived: None,
                });
            }
        };
        for c in &f.calls {
            if c.in_test {
                continue;
            }
            let name = c.name();
            if c.method && ALLOC_METHODS.contains(&name) {
                push("hotpath/alloc-reachable", c.line, format!("allocating call `.{name}(..)`"), &mut seen);
            }
            if let Some(q) = c.qualifier() {
                if ALLOC_TYPED.contains(&(q, name))
                    || (name == "with_capacity" && q.starts_with(|ch: char| ch.is_ascii_uppercase()))
                {
                    push(
                        "hotpath/alloc-reachable",
                        c.line,
                        format!("allocating call `{q}::{name}`"),
                        &mut seen,
                    );
                }
            }
            if c.method && PANIC_METHODS.contains(&name) {
                push("hotpath/panic-reachable", c.line, format!("panicking call `.{name}(..)`"), &mut seen);
            }
        }
        for m in &f.macros {
            if m.in_test {
                continue;
            }
            if ALLOC_MACROS.contains(&m.name.as_str()) {
                push("hotpath/alloc-reachable", m.line, format!("allocating macro `{}!`", m.name), &mut seen);
            }
            if PANIC_MACROS.contains(&m.name.as_str()) {
                push("hotpath/panic-reachable", m.line, format!("panicking macro `{}!`", m.name), &mut seen);
            }
        }
    }
}

/// True when the fn's body fans work out to real threads.
fn spawns(f: &crate::parse::FnItem) -> bool {
    f.calls.iter().any(|c| {
        let n = c.name();
        (n == "spawn" && !c.in_test) || (n == "scope" && c.qualifier() == Some("crossbeam"))
    })
}

/// Backward taint from nondeterministic source files, absorbing at
/// justified (`determinism/taint`-waived) boundaries.
fn determinism_taint_findings(graph: &Graph, cfg: &Config, findings: &mut Vec<Finding>) {
    let source_files: BTreeSet<&str> = cfg
        .waivers
        .iter()
        .filter(|w| w.rule == "determinism/thread-spawn")
        .map(|w| w.path.as_str())
        .collect();
    if source_files.is_empty() {
        return;
    }
    let rev = graph.reverse_edges();
    let n = graph.fns.len();
    let mut tainted = vec![false; n];
    // Edge toward the source on the witness path: `(next fn, call line)`.
    let mut origin: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut reported = vec![false; n];
    let mut worklist: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.in_test && source_files.contains(f.rel_path.as_str()) && spawns(f) {
            tainted[i] = true;
            worklist.insert(i);
        }
    }
    while let Some(t) = worklist.pop_first() {
        for &(caller, line) in &rev[t] {
            let f = &graph.fns[caller];
            if f.in_test
                || tainted[caller]
                || reported[caller]
                || source_files.contains(f.rel_path.as_str())
                || !DETERMINISTIC_CRATES.contains(&f.crate_key.as_str())
            {
                continue;
            }
            // Witness: caller → t → … → the source-file fn.
            let mut witness = Vec::new();
            witness.push(format!("{} ({}:{})", f.qualified_name(), f.rel_path, f.line));
            let mut cur = t;
            loop {
                let g = &graph.fns[cur];
                witness.push(format!("{} ({}:{})", g.qualified_name(), g.rel_path, g.line));
                match origin[cur] {
                    Some((next, _)) => cur = next,
                    None => break,
                }
            }
            let src_path = &graph.fns[cur].rel_path;
            reported[caller] = true;
            findings.push(Finding {
                rule: "determinism/taint",
                path: f.rel_path.clone(),
                line,
                message: format!(
                    "`{}` reaches the nondeterministic source `{src_path}` via `{}` — a justified determinism/taint waiver must sit on every boundary",
                    f.qualified_name(),
                    graph.fns[t].qualified_name(),
                ),
                witness,
                waived: None,
            });
            let absorbed = cfg
                .waivers
                .iter()
                .any(|w| w.rule == "determinism/taint" && w.matches_site(&f.rel_path, line));
            if !absorbed {
                tainted[caller] = true;
                origin[caller] = Some((t, line));
                worklist.insert(caller);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse as parse_config;
    use crate::graph::build;
    use crate::parse::parse_file;

    fn analyze_files(files: &[(&str, &str, &str)], cfg: &Config) -> Vec<Finding> {
        let mut fns = Vec::new();
        for (key, path, src) in files {
            fns.extend(parse_file(key, path, src).fns);
        }
        let mut out = analyze(&build(fns), cfg);
        out.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
        out
    }

    #[test]
    fn alloc_reachable_walks_the_call_chain() {
        let cfg = Config::default();
        let src = "// conform::hot_root\npub fn sweep() { step(); }\n\
                   fn step() { deep(); }\n\
                   fn deep(v: &mut Vec<u8>) { v.push(1); }\n\
                   fn unreachable_alloc() { Vec::<u8>::new(); }";
        let f = analyze_files(&[("core", "crates/core/src/engine.rs", src)], &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hotpath/alloc-reachable");
        assert_eq!(f[0].line, 4);
        assert_eq!(
            f[0].witness,
            vec![
                "sweep (crates/core/src/engine.rs:2)",
                "step (crates/core/src/engine.rs:3)",
                "deep (crates/core/src/engine.rs:4)",
            ],
            "witness names the full root→sink chain"
        );
    }

    #[test]
    fn panic_reachable_flags_macros_and_expect_but_not_debug_assert() {
        let cfg = Config::default();
        let src = "// conform::hot_root\npub fn sweep(x: Option<u8>) { \
                   debug_assert!(x.is_some()); helper(x); }\n\
                   fn helper(x: Option<u8>) { x.expect(\"invariant\"); assert!(true); }";
        let f = analyze_files(&[("core", "crates/core/src/engine.rs", src)], &cfg);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["hotpath/panic-reachable", "hotpath/panic-reachable"], "{f:?}");
    }

    #[test]
    fn cfg_test_sinks_and_callees_are_invisible() {
        let cfg = Config::default();
        let src = "// conform::hot_root\npub fn sweep() { work(); }\nfn work() {}\n\
                   #[cfg(test)]\nmod t { fn oracle() { Vec::<u8>::new(); } }";
        let f = analyze_files(&[("core", "crates/core/src/engine.rs", src)], &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn taint_crosses_files_and_absorbs_at_waived_boundary() {
        let cfg = parse_config(
            r#"
[[waiver]]
rule = "determinism/thread-spawn"
path = "crates/sim/src/shard.rs"
justification = "order-invariant merge"

[[waiver]]
rule = "determinism/taint"
path = "crates/core/src/engine.rs"
justification = "calls the shard pool behind its order-invariant merge"
"#,
        )
        .expect("cfg parses");
        let files = [
            (
                "sim",
                "crates/sim/src/shard.rs",
                "pub struct ShardPool; impl ShardPool { \
                 pub fn map_ordered_into(&self) { crossbeam::scope(|s| {}); } \
                 pub fn pure_helper() {} }",
            ),
            (
                "core",
                "crates/core/src/engine.rs",
                "pub fn admit(p: &ShardPool) { p.map_ordered_into(); }",
            ),
            ("core", "crates/core/src/timeline.rs", "pub fn outer() { admit_shim(); }"),
        ];
        let f = analyze_files(&files, &cfg);
        // engine.rs crosses the boundary but is waiver-absorbed: one
        // finding, and timeline.rs (which does not reach it) stays clean.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "determinism/taint");
        assert_eq!(f[0].path, "crates/core/src/engine.rs");
        assert_eq!(f[0].witness.len(), 2);
    }

    #[test]
    fn unwaived_taint_propagates_to_the_next_hop() {
        let cfg = parse_config(
            "[[waiver]]\nrule = \"determinism/thread-spawn\"\npath = \"crates/core/src/live.rs\"\n\
             justification = \"the nondeterministic half\"\n",
        )
        .expect("cfg parses");
        let files = [
            ("core", "crates/core/src/live.rs", "pub fn pace() { std::thread::spawn(|| {}); }"),
            ("core", "crates/core/src/engine.rs", "pub fn leak() { pace(); }"),
            ("core", "crates/core/src/timeline.rs", "pub fn caller() { leak(); }"),
            ("bench", "crates/bench/src/run.rs", "pub fn free_crate() { pace(); }"),
        ];
        let f = analyze_files(&files, &cfg);
        // engine.rs leaks (unwaived) so the taint cascades to timeline.rs;
        // bench is not a deterministic crate and stays exempt.
        let paths: Vec<&str> = f.iter().map(|x| x.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["crates/core/src/engine.rs", "crates/core/src/timeline.rs"],
            "{f:?}"
        );
        assert_eq!(f[1].witness.len(), 3, "timeline → leak → pace: {:?}", f[1].witness);
    }
}

//! The workspace call graph: symbol index + path resolution over the
//! [`parse`](crate::parse) items.
//!
//! Resolution is deliberately *name-shaped*, tuned to this workspace's
//! idioms rather than full Rust name resolution:
//!
//! * `Type::method(..)` (uppercase qualifier) resolves to `fn method`
//!   items inside `impl Type`/`impl Tr for Type` blocks, any crate —
//!   workspace type names are unique enough that this is precise;
//!   `Self::method` uses the caller's own impl type;
//! * `recv.method(..)` receiver calls resolve to **every** workspace impl
//!   fn named `method` — an over-approximation (the receiver's type is
//!   unknown), which for reachability analyses errs on the safe side:
//!   a function is never missing from the reachable set, it can only be
//!   conservatively included;
//! * `path::to::helper(..)` / bare `helper(..)` resolve to free functions
//!   named `helper`; a `cloudburst_<crate>` or `crate::` segment narrows
//!   the candidate set to that crate.
//!
//! Calls that resolve to nothing are std/vendored calls — invisible as
//! edges, but still visible to the taint engine's *syntactic* sink
//! matching, which is what catches `Vec::push` & friends.
//!
//! Functions and edges are held in `(rel_path, line)` order, so every
//! traversal downstream is deterministic and the report byte-stable.

use std::collections::BTreeMap;

use crate::parse::{CallSite, FnItem};

/// One resolved call edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the callee in [`Graph::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// True when the call site itself is inside test-only code.
    pub in_test: bool,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All functions, sorted by `(rel_path, line)`.
    pub fns: Vec<FnItem>,
    /// Outgoing edges per function (same index space as `fns`).
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    /// Indices of hot-root functions, in deterministic order.
    pub fn hot_roots(&self) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| self.fns[i].hot_root).collect()
    }

    /// Incoming edges: for each function, the `(caller, line)` pairs that
    /// call it (test-only call sites excluded).
    pub fn reverse_edges(&self) -> Vec<Vec<(usize, u32)>> {
        let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.fns.len()];
        for (caller, out) in self.edges.iter().enumerate() {
            for e in out {
                if !e.in_test {
                    rev[e.callee].push((caller, e.line));
                }
            }
        }
        rev
    }
}

/// Builds the graph from every parsed function in the analysis corpus.
pub fn build(mut fns: Vec<FnItem>) -> Graph {
    fns.sort_by(|a, b| (&a.rel_path, a.line, &a.name).cmp(&(&b.rel_path, b.line, &b.name)));

    // Symbol index. BTreeMaps keep candidate lists in deterministic order.
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.in_test {
            continue; // test fns are never call targets of production code
        }
        match &f.self_ty {
            Some(ty) => {
                typed.entry((ty.as_str(), f.name.as_str())).or_default().push(i);
                methods.entry(f.name.as_str()).or_default().push(i);
            }
            None => free.entry(f.name.as_str()).or_default().push(i),
        }
    }

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        let mut out: Vec<Edge> = Vec::new();
        for call in &f.calls {
            for &callee in resolve(call, f, &typed, &methods, &free) {
                if callee == i {
                    continue; // self-recursion adds nothing to reachability
                }
                if !out.iter().any(|e| e.callee == callee) {
                    out.push(Edge { callee, line: call.line, in_test: call.in_test });
                }
            }
        }
        edges[i] = out;
    }
    Graph { fns, edges }
}

/// Empty candidate list, usable as a `&Vec<usize>` return.
const NO_CANDIDATES: &Vec<usize> = &Vec::new();

/// Resolves one call site to candidate callee indices.
fn resolve<'g>(
    call: &'g CallSite,
    caller: &'g FnItem,
    typed: &'g BTreeMap<(&str, &str), Vec<usize>>,
    methods: &'g BTreeMap<&str, Vec<usize>>,
    free: &'g BTreeMap<&str, Vec<usize>>,
) -> &'g Vec<usize> {
    let name = call.name();
    if call.method {
        return methods.get(name).unwrap_or(NO_CANDIDATES);
    }
    if let Some(q) = call.qualifier() {
        if q == "Self" {
            return caller
                .self_ty
                .as_deref()
                .and_then(|ty| typed.get(&(ty, name)))
                .unwrap_or(NO_CANDIDATES);
        }
        if q.starts_with(|c: char| c.is_ascii_uppercase()) {
            return typed.get(&(q, name)).unwrap_or(NO_CANDIDATES);
        }
    }
    free.get(name).unwrap_or(NO_CANDIDATES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph_of(files: &[(&str, &str, &str)]) -> Graph {
        let mut fns = Vec::new();
        for (key, path, src) in files {
            fns.extend(parse_file(key, path, src).fns);
        }
        build(fns)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("fn {name}"))
    }

    #[test]
    fn typed_method_and_free_calls_resolve_across_crates() {
        let g = graph_of(&[
            (
                "core",
                "crates/core/src/engine.rs",
                "fn sweep(w: &mut World) { w.index.fcfs_commit(1.0); eq1_slack(0.0, 1.0); \
                 FreeTimeIndex::rebuild(); }",
            ),
            (
                "sched",
                "crates/sched/src/freetime.rs",
                "pub struct FreeTimeIndex; impl FreeTimeIndex { \
                 pub fn fcfs_commit(&mut self, v: f64) -> usize { 0 } \
                 pub fn rebuild() {} }\n\
                 pub fn eq1_slack(now: f64, anchor: f64) -> f64 { now + anchor }",
            ),
        ]);
        let sweep = idx(&g, "sweep");
        let callees: Vec<&str> =
            g.edges[sweep].iter().map(|e| g.fns[e.callee].name.as_str()).collect();
        assert_eq!(callees, vec!["fcfs_commit", "eq1_slack", "rebuild"]);
    }

    #[test]
    fn unresolved_std_calls_produce_no_edges() {
        let g = graph_of(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f(v: &mut Vec<u8>) { v.push(1); let s = String::from(\"x\"); }",
        )]);
        assert!(g.edges[idx(&g, "f")].is_empty());
    }

    #[test]
    fn test_only_fns_are_not_targets_and_test_calls_not_reverse_edges() {
        let g = graph_of(&[(
            "sim",
            "crates/sim/src/a.rs",
            "pub fn prod() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\nmod t { fn oracle() { helper(); } }",
        )]);
        let helper = idx(&g, "helper");
        let rev = g.reverse_edges();
        assert_eq!(rev[helper].len(), 1, "only prod's call counts");
        assert_eq!(g.fns[rev[helper][0].0].name, "prod");
    }

    #[test]
    fn hot_roots_surface_in_order() {
        let g = graph_of(&[(
            "core",
            "crates/core/src/engine.rs",
            "// conform::hot_root\npub fn a() {}\nfn mid() {}\n// conform::hot_root\npub fn b() {}",
        )]);
        let roots: Vec<&str> = g.hot_roots().iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert_eq!(roots, vec!["a", "b"]);
    }
}

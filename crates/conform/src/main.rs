//! The `cloudburst-conform` binary: scan the workspace, print the
//! deterministic report, exit nonzero on any unwaived finding.
//!
//! ```text
//! cargo run -p cloudburst-conform [-- --root <dir>] [--config <file>] [--json]
//! ```
//!
//! `--json` prints the machine-readable report (same deterministic sort,
//! fixed key order) instead of the text form; exit codes are identical.
//!
//! Exit codes: 0 clean (or fully waived), 1 unwaived findings, 2 config or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cloudburst-conform: cannot resolve root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("conform.toml"));

    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cloudburst-conform: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match cloudburst_conform::parse_config(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cloudburst-conform: {e}");
            return ExitCode::from(2);
        }
    };
    match cloudburst_conform::scan_workspace(&root, &config) {
        Ok(report) => {
            print!("{}", if json { report.render_json() } else { report.render() });
            if report.unwaived() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cloudburst-conform: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cloudburst-conform: {msg}");
    eprintln!("usage: cloudburst-conform [--root <dir>] [--config <file>] [--json]");
    ExitCode::from(2)
}

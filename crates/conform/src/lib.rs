//! `cloudburst-conform` — the in-tree determinism & hot-path conformance
//! linter.
//!
//! The reproduction's headline guarantees — byte-identical replication of
//! the paper's figure runs, zero-allocation QRSM observe/predict/refit, a
//! deterministic event kernel — die silently: one `Instant::now()` or
//! default-hashed `HashMap` in a sim-facing crate and replication drifts
//! the way an SLA-driven scheduler drifts off its contracted metrics. This
//! crate machine-checks those invariants as a workspace gate:
//!
//! ```text
//! cargo run -p cloudburst-conform          # scan the workspace, exit ≠ 0 on findings
//! ```
//!
//! Structure:
//!
//! * [`lexer`] — a minimal Rust lexer (no `syn`; the linter is
//!   dependency-free by policy) producing line-tagged tokens with
//!   comments/literals stripped and `#[cfg(test)]` items marked;
//! * [`parse`] — item parser over the token stream: `fn`/`impl`/`mod`
//!   items, call and macro sites, `// conform::hot_root` marker binding;
//! * [`graph`] — the cross-crate call graph (name-shaped resolution);
//! * [`taint`] — transitive analyses over the graph: alloc-reachable,
//!   panic-reachable, determinism taint — each finding carries a witness
//!   path root → … → sink;
//! * [`rules`] — the token-level determinism, hot-path and
//!   conformance-header rules;
//! * [`config`] — the `conform.toml` waiver/budget file, where every
//!   waiver must carry a justification and may be line-anchored;
//! * [`scan`] — workspace walking, per-crate unwrap budgets, waiver
//!   application, stale-waiver detection;
//! * [`report`] — deterministic `(rule, path, line)`-sorted rendering,
//!   text and `--json`.
//!
//! See DESIGN.md §8 for the rule catalogue and how to add a rule.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;
pub mod taint;

pub use config::{parse as parse_config, Config, ConfigError, Waiver};
pub use report::Report;
pub use rules::{FileContext, FileInfo, Finding, DETERMINISTIC_CRATES};
pub use scan::{scan_workspace, ScanError};

/// Convenience for tests and fixtures: scans one in-memory source file as
/// `crate_key`/`context`, with budgets and waivers from `cfg`.
pub fn scan_str(
    cfg: &Config,
    crate_key: &str,
    context: FileContext,
    rel_path: &str,
    src: &str,
    is_crate_root: bool,
) -> Vec<Finding> {
    let info = FileInfo {
        rel_path: rel_path.to_owned(),
        crate_key: crate_key.to_owned(),
        context,
        is_crate_root,
    };
    let toks = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let scan = rules::scan_tokens(&info, &toks, &lines);
    let mut findings = scan.findings;
    let budget = cfg.unwrap_budget(crate_key);
    if scan.unwrap_sites.len() > budget {
        for (path, line, snippet) in &scan.unwrap_sites {
            findings.push(Finding {
                rule: "hotpath/unwrap-budget",
                path: path.clone(),
                line: *line,
                message: format!(
                    "crate `{crate_key}` has {} library unwrap() calls (budget {budget}): `{snippet}`",
                    scan.unwrap_sites.len()
                ),
                witness: Vec::new(),
                waived: None,
            });
        }
    }
    // Library fixtures also get the graph analyses, so a single file can
    // exercise alloc-reachable / panic-reachable / determinism-taint.
    if context == FileContext::Lib {
        let parsed = parse::parse_file(crate_key, rel_path, src);
        findings.extend(scan::dangling_marker_findings(&parsed));
        findings.extend(taint::analyze(&graph::build(parsed.fns), cfg));
    }
    for f in &mut findings {
        if let Some(w) =
            cfg.waivers.iter().find(|w| w.rule == f.rule && w.matches_site(&f.path, f.line))
        {
            f.waived = Some(w.justification.clone());
        }
    }
    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
    });
    findings
}

// Violates hotpath/unsafe: pointer arithmetic outside the audited
// allowlist. The rule fires in test code too.
pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

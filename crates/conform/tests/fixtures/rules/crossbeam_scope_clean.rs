// Clean: the per-item work runs inline, in input order; parallel fan-out
// goes through a waived coordinator (e.g. `ShardPool`) instead of ad-hoc
// scoped threads.
pub fn fan_out_inline(items: &[u64], f: impl Fn(u64)) {
    for &it in items {
        f(it);
    }
}

// Violates hotpath/unwrap-budget (with the default budget of 0): a bare
// unwrap in library code panics with no invariant on record.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

// Clean: the invariant is spelled out with expect(); unwraps inside
// #[cfg(test)] never count against the budget either.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_exempt() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}

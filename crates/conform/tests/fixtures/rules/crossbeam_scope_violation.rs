// Violates determinism/thread-spawn: crossbeam scoped workers are still OS
// threads — a fan-out coordinator in a deterministic crate needs a per-file
// waiver whose justification states the order-invariant merge argument.
pub fn fan_out(items: &[u64], f: impl Fn(u64) + Sync) {
    crossbeam::scope(|scope| {
        for &it in items {
            scope.spawn(|_| f(it));
        }
    })
    .expect("worker panicked");
}

//! Fixture: no sort in release code; the sorting oracle lives in
//! `#[cfg(test)]`, where the rule does not bind.

pub fn peak(xs: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &x in xs {
        if x > best {
            best = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::peak;

    #[test]
    fn sorting_oracle_is_test_only() {
        let mut v = [2.0, 9.0, 4.0];
        v.sort_unstable_by(f64::total_cmp);
        assert!((peak(&v) - 9.0).abs() < 1e-12);
    }
}

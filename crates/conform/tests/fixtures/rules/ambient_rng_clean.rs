// Clean: all randomness flows from an explicit experiment seed.
use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}

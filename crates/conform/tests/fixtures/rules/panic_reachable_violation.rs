//! Fixture: a hot root whose call cone reaches a panicking macro in
//! release code.

// conform::hot_root
pub fn decide(slots: &mut [u64], job: u64) {
    place(slots, job);
}

fn place(slots: &mut [u64], job: u64) {
    assert!(!slots.is_empty(), "slot table vanished");
    slots[0] = job;
}

// Clean: work is run inline on the caller's thread; any parallelism lives
// in the orchestration layer, outside the deterministic crates.
pub fn run_inline(work: impl FnOnce()) {
    work();
}

//! Fixture: the same sweep shape, but the cone only reuses fixed scratch
//! in place — no allocating call is reachable from the hot root.

/// Per-sweep candidate scratch with a fixed capacity.
pub struct Sweep {
    pub cands: [u64; 8],
    pub used: usize,
}

impl Sweep {
    // conform::hot_root
    pub fn decide(&mut self, job: u64) {
        self.stage(job);
    }

    fn stage(&mut self, job: u64) {
        admit(&mut self.cands, &mut self.used, job);
    }
}

fn admit(cands: &mut [u64; 8], used: &mut usize, job: u64) {
    if *used < 8 {
        cands[*used] = job;
        *used += 1;
    }
}

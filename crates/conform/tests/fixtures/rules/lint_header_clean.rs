//! A crate root carrying the full required lint header.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]

pub fn noop() {}

//! A crate root missing all three required lint attributes
//! (conformance/lint-header fires once per missing attribute).

pub fn noop() {}

// Clean: library code renders into a String and lets the binary decide
// where the text goes.
use std::fmt::Write as _;

pub fn report(score: f64) -> String {
    let mut out = String::new();
    write!(out, "score = {score}").expect("fmt write to String cannot fail");
    out
}

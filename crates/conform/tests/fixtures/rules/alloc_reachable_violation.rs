//! Fixture: a hot root whose call cone reaches an allocating call two
//! hops away — the finding must carry the full root → sink witness.

/// Per-sweep candidate scratch.
pub struct Sweep {
    pub cands: Vec<u64>,
}

impl Sweep {
    // conform::hot_root
    pub fn decide(&mut self, job: u64) {
        self.stage(job);
    }

    fn stage(&mut self, job: u64) {
        admit(&mut self.cands, job);
    }
}

fn admit(cands: &mut Vec<u64>, job: u64) {
    cands.push(job);
}

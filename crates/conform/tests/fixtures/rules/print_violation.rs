// Violates hotpath/print: library crates must stay silent on the console.
pub fn report(score: f64) {
    println!("score = {score}");
    eprintln!("warning: provisional");
}

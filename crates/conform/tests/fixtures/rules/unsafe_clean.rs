// Clean: safe indexing expresses the same read.
pub fn first_byte(bytes: &[u8]) -> u8 {
    bytes[0]
}

// Violates determinism/default-hasher: std HashMap/HashSet default to a
// randomized hasher, so iteration order varies run to run.
use std::collections::{HashMap, HashSet};

pub fn index(keys: &[u64]) -> (HashMap<u64, usize>, HashSet<u64>) {
    let m: HashMap<u64, usize> = keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    let s: HashSet<u64> = keys.iter().copied().collect();
    (m, s)
}

// Clean: durations are fine; only Instant/SystemTime reads are wall-clock.
use std::time::Duration;

pub fn pace(units: u64) -> Duration {
    Duration::from_millis(units)
}

// Violates determinism/thread-spawn: OS threads interleave
// nondeterministically; deterministic crates must stay single-threaded.
pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}

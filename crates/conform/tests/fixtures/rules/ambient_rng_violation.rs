// Violates determinism/ambient-rng: thread_rng and rand::random draw from
// OS entropy, not from the experiment seed.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    rand::random()
}

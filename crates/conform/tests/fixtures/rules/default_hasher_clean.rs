// Clean: BTreeMap/BTreeSet iterate in key order, deterministically.
use std::collections::{BTreeMap, BTreeSet};

pub fn index(keys: &[u64]) -> (BTreeMap<u64, usize>, BTreeSet<u64>) {
    let m: BTreeMap<u64, usize> = keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    let s: BTreeSet<u64> = keys.iter().copied().collect();
    (m, s)
}

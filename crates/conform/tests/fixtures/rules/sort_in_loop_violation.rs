//! Fixture: an O(n log n) resort in hot-path library code.

pub fn rank(xs: &mut [f64]) {
    xs.sort_unstable_by(f64::total_cmp);
}

// Violates determinism/wall-clock: reads the wall clock in deterministic
// library code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

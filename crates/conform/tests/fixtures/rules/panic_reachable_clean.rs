//! Fixture: the same guard demoted to `debug_assert!` — release-dead, so
//! the panic cone from the hot root is empty.

// conform::hot_root
pub fn decide(slots: &mut [u64], job: u64) {
    place(slots, job);
}

fn place(slots: &mut [u64], job: u64) {
    debug_assert!(!slots.is_empty(), "slot table vanished");
    slots[0] = job;
}

use std::collections::HashMap;
use std::time::Instant;

pub fn stamp(m: &HashMap<u32, u32>) -> Instant {
    let _ = m.len();
    Instant::now()
}

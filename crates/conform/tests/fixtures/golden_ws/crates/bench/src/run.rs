pub fn run(xs: &[u64]) -> u64 {
    println!("running");
    *xs.first().unwrap()
}

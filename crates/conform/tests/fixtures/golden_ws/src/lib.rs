pub fn id(x: u64) -> u64 {
    x
}

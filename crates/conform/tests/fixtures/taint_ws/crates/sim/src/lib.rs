#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]

pub mod merge;
pub mod pool;

//! Fixture: a deterministic-crate caller crossing into the waived
//! nondeterministic coordinator — the taint boundary under test.

pub fn merge_all() {
    crate::pool::fan_out();
}

//! Fixture: the waived fan-out coordinator — the taint source.

pub fn fan_out() {
    std::thread::spawn(|| {});
}

//! Fixture-driven self-tests for the conformance linter.
//!
//! Three layers:
//!
//! 1. per-rule fixture pairs under `fixtures/rules/` — every rule has at
//!    least one violating sample (the rule must fire) and one clean sample
//!    (the rule must stay silent);
//! 2. config fixtures under `fixtures/config/` — the waiver grammar,
//!    including rejection of waivers without a justification;
//! 3. the golden mini-workspace under `fixtures/golden_ws/` — a full
//!    `scan_workspace` run whose rendered report must match
//!    `fixtures/golden_expected.txt` byte for byte, locking in the
//!    `(rule, path, line)` report ordering;
//!
//! plus the capstone: the *real* workspace, scanned with the real
//! `conform.toml`, must have zero unwaived findings.

use std::fs;
use std::path::{Path, PathBuf};

use cloudburst_conform::{
    parse_config, scan_str, scan_workspace, Config, ConfigError, FileContext, Finding,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(rel: &str) -> String {
    let path = fixture_dir().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scans a `fixtures/rules/` sample as library code of the deterministic
/// `sim` crate (the strictest context), with an empty config.
fn scan_rule_fixture(name: &str) -> Vec<Finding> {
    let src = fixture(&format!("rules/{name}"));
    let is_root = name.starts_with("lint_header");
    let rel = if is_root { "crates/sim/src/lib.rs" } else { "crates/sim/src/sample.rs" };
    scan_str(&Config::default(), "sim", FileContext::Lib, rel, &src, is_root)
}

fn assert_fires(name: &str, rule: &str) {
    let findings = scan_rule_fixture(name);
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "{name} must trigger {rule}, got {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "{name} must trigger only {rule}, got {findings:?}"
    );
}

fn assert_clean(name: &str) {
    let findings = scan_rule_fixture(name);
    assert!(findings.is_empty(), "{name} must scan clean, got {findings:?}");
}

#[test]
fn wall_clock_fixture_pair() {
    assert_fires("wall_clock_violation.rs", "determinism/wall-clock");
    assert_clean("wall_clock_clean.rs");
}

#[test]
fn default_hasher_fixture_pair() {
    assert_fires("default_hasher_violation.rs", "determinism/default-hasher");
    assert_clean("default_hasher_clean.rs");
}

#[test]
fn ambient_rng_fixture_pair() {
    assert_fires("ambient_rng_violation.rs", "determinism/ambient-rng");
    assert_clean("ambient_rng_clean.rs");
}

#[test]
fn thread_spawn_fixture_pair() {
    assert_fires("thread_spawn_violation.rs", "determinism/thread-spawn");
    assert_clean("thread_spawn_clean.rs");
}

#[test]
fn crossbeam_scope_fixture_pair() {
    // An unwaived fan-out coordinator in a deterministic crate must fail
    // the scan exactly like a bare `thread::spawn` — the shard pool's
    // legitimacy comes from its per-file waiver, not a rule relaxation.
    assert_fires("crossbeam_scope_violation.rs", "determinism/thread-spawn");
    assert_clean("crossbeam_scope_clean.rs");
}

#[test]
fn unsafe_fixture_pair() {
    assert_fires("unsafe_violation.rs", "hotpath/unsafe");
    assert_clean("unsafe_clean.rs");
}

#[test]
fn unwrap_budget_fixture_pair() {
    assert_fires("unwrap_violation.rs", "hotpath/unwrap-budget");
    // The same file passes once the crate's budget covers its one site.
    let src = fixture("rules/unwrap_violation.rs");
    let cfg = parse_config("[budgets.unwrap]\nsim = 1\n").expect("budget config parses");
    let findings =
        scan_str(&cfg, "sim", FileContext::Lib, "crates/sim/src/sample.rs", &src, false);
    assert!(findings.is_empty(), "budget 1 must cover one unwrap, got {findings:?}");
    assert_clean("unwrap_clean.rs");
}

#[test]
fn print_fixture_pair() {
    assert_fires("print_violation.rs", "hotpath/print");
    assert_clean("print_clean.rs");
}

#[test]
fn alloc_reachable_fixture_pair() {
    assert_fires("alloc_reachable_violation.rs", "hotpath/alloc-reachable");
    assert_clean("alloc_reachable_clean.rs");
}

/// The seeded witness chain: the alloc finding must name every hop from
/// the hot root down to the function holding the sink, in call order.
#[test]
fn alloc_witness_names_the_full_root_to_sink_chain() {
    let findings = scan_rule_fixture("alloc_reachable_violation.rs");
    let f = findings
        .iter()
        .find(|f| f.rule == "hotpath/alloc-reachable")
        .expect("alloc finding present");
    let hops: Vec<&str> =
        f.witness.iter().map(|h| h.split(' ').next().unwrap_or("")).collect();
    assert_eq!(
        hops,
        vec!["Sweep::decide", "Sweep::stage", "admit"],
        "witness must walk root -> mid -> sink fn, got {:?}",
        f.witness
    );
    for hop in &f.witness {
        assert!(
            hop.contains("crates/sim/src/sample.rs:"),
            "every hop carries file:line, got {hop}"
        );
    }
}

#[test]
fn panic_reachable_fixture_pair() {
    assert_fires("panic_reachable_violation.rs", "hotpath/panic-reachable");
    assert_clean("panic_reachable_clean.rs");
}

#[test]
fn sort_in_loop_fixture_pair() {
    assert_fires("sort_in_loop_violation.rs", "hotpath/sort-in-loop");
    assert_clean("sort_in_loop_clean.rs");
}

/// The taint pair needs two files (a waived spawn coordinator and a
/// deterministic caller), so it runs over the `taint_ws` mini-workspace
/// instead of a single-file fixture.
#[test]
fn determinism_taint_workspace_pair() {
    let root = fixture_dir().join("taint_ws");

    // Violating flavour: the crossing has no determinism/taint waiver.
    let cfg = parse_config(&fixture("taint_ws/conform_violation.toml")).expect("config parses");
    let report = scan_workspace(&root, &cfg).expect("taint_ws scans");
    let taint: Vec<&Finding> =
        report.findings.iter().filter(|f| f.rule == "determinism/taint").collect();
    assert_eq!(taint.len(), 1, "one crossing, got {:?}", report.findings);
    assert_eq!(taint[0].path, "crates/sim/src/merge.rs");
    assert!(taint[0].waived.is_none(), "crossing must be unwaived");
    assert!(
        taint[0].message.contains("`merge_all`")
            && taint[0].message.contains("crates/sim/src/pool.rs"),
        "finding names caller and source file, got {}",
        taint[0].message
    );
    assert_eq!(report.unwaived(), 1, "only the taint crossing is unwaived");

    // Clean flavour: a justified waiver sits on the boundary.
    let cfg = parse_config(&fixture("taint_ws/conform_clean.toml")).expect("config parses");
    let report = scan_workspace(&root, &cfg).expect("taint_ws scans clean");
    assert_eq!(report.unwaived(), 0, "waived boundary, got:\n{}", report.render());
    assert!(
        report.findings.iter().any(|f| f.rule == "determinism/taint" && f.waived.is_some()),
        "the waived crossing stays visible in the report"
    );
}

/// Line-anchored waiver hygiene: an anchor on the exact finding line
/// waives it; the same waiver one line off does not.
#[test]
fn line_anchored_waiver_binds_to_the_exact_line() {
    let src = fixture("rules/panic_reachable_violation.rs");
    let on_line = "[[waiver]]\n\
                   rule = \"hotpath/panic-reachable\"\n\
                   path = \"crates/sim/src/sample.rs\"\n\
                   line = 10\n\
                   justification = \"fixture: anchored on the assert\"\n";
    let cfg = parse_config(on_line).expect("anchored config parses");
    let findings = scan_str(&cfg, "sim", FileContext::Lib, "crates/sim/src/sample.rs", &src, false);
    assert!(
        findings.iter().all(|f| f.waived.is_some()),
        "anchor on the finding line must waive it, got {findings:?}"
    );

    let off_line = on_line.replace("line = 10", "line = 9");
    let cfg = parse_config(&off_line).expect("off-anchor config parses");
    let findings = scan_str(&cfg, "sim", FileContext::Lib, "crates/sim/src/sample.rs", &src, false);
    assert!(
        findings.iter().any(|f| f.rule == "hotpath/panic-reachable" && f.waived.is_none()),
        "anchor one line off must not waive, got {findings:?}"
    );
}

/// A stale anchored waiver (the code moved) must surface as an unused
/// waiver telling the author to re-audit, not silently re-aim.
#[test]
fn stale_line_anchor_fails_the_scan() {
    let root = fixture_dir().join("taint_ws");
    let cfg = parse_config(
        "[[waiver]]\n\
         rule = \"determinism/thread-spawn\"\n\
         path = \"crates/sim/src/pool.rs\"\n\
         line = 999\n\
         justification = \"fixture: stale anchor\"\n",
    )
    .expect("stale config parses");
    let report = scan_workspace(&root, &cfg).expect("taint_ws scans");
    let stale = report
        .findings
        .iter()
        .find(|f| f.rule == "conformance/unused-waiver")
        .expect("stale anchor must surface as unused waiver");
    assert!(
        stale.message.contains("anchored to line 999") && stale.message.contains("re-anchor"),
        "message names the drifted anchor, got {}",
        stale.message
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "determinism/thread-spawn" && f.waived.is_none()),
        "the mis-anchored spawn finding stays unwaived"
    );
}

/// A waiver naming the right path but the wrong rule covers nothing: the
/// finding stays unwaived and the waiver itself is flagged unused.
#[test]
fn wrong_rule_waiver_covers_nothing() {
    let root = fixture_dir().join("taint_ws");
    let cfg = parse_config(
        "[[waiver]]\n\
         rule = \"hotpath/unsafe\"\n\
         path = \"crates/sim/src/pool.rs\"\n\
         justification = \"fixture: wrong rule for this file\"\n",
    )
    .expect("wrong-rule config parses");
    let report = scan_workspace(&root, &cfg).expect("taint_ws scans");
    assert!(
        report.findings.iter().any(|f| f.rule == "conformance/unused-waiver"),
        "the wrong-rule waiver must be flagged unused, got:\n{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "determinism/thread-spawn" && f.waived.is_none()),
        "the spawn finding stays unwaived"
    );
}

#[test]
fn lint_header_fixture_pair() {
    let findings = scan_rule_fixture("lint_header_violation.rs");
    assert_eq!(
        findings.len(),
        3,
        "a bare crate root misses all three attrs, got {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "conformance/lint-header"));
    assert_clean("lint_header_clean.rs");
}

#[test]
fn determinism_rules_do_not_bind_free_crates() {
    // The same wall-clock sample is legal in a non-deterministic crate
    // (bench owns the real WallClock).
    let src = fixture("rules/wall_clock_violation.rs");
    let findings =
        scan_str(&Config::default(), "bench", FileContext::Lib, "crates/bench/src/clock.rs", &src, false);
    assert!(findings.is_empty(), "bench may read the wall clock, got {findings:?}");
}

#[test]
fn good_config_parses() {
    let cfg = parse_config(&fixture("config/good.toml")).expect("good.toml parses");
    assert_eq!(cfg.waivers.len(), 1);
    assert_eq!(cfg.unwrap_budget("qrsm"), 2);
    assert_eq!(cfg.unwrap_budget("net"), 0);
}

#[test]
fn waiver_without_justification_is_rejected() {
    let err = parse_config(&fixture("config/missing_justification.toml"))
        .expect_err("a waiver with no justification must be rejected");
    assert!(matches!(err, ConfigError::MissingJustification { .. }), "got {err:?}");
}

#[test]
fn blank_justification_is_rejected() {
    let err = parse_config(&fixture("config/blank_justification.toml"))
        .expect_err("a whitespace justification must be rejected");
    assert!(matches!(err, ConfigError::MissingJustification { .. }), "got {err:?}");
}

#[test]
fn incomplete_waiver_is_rejected() {
    let err = parse_config(&fixture("config/incomplete_waiver.toml"))
        .expect_err("a waiver without a path must be rejected");
    assert!(matches!(err, ConfigError::IncompleteWaiver { .. }), "got {err:?}");
}

#[test]
fn unknown_waiver_key_is_rejected() {
    let err = parse_config(&fixture("config/unknown_key.toml"))
        .expect_err("unknown waiver keys must be rejected");
    assert!(matches!(err, ConfigError::Parse { .. }), "got {err:?}");
}

/// The golden test: scanning the mini-workspace must reproduce
/// `golden_expected.txt` byte for byte. This locks in the report ordering
/// (rule, then path, then line, then message), waived-finding rendering,
/// stale-waiver detection, and the summary line.
#[test]
fn golden_workspace_report_is_byte_stable() {
    let root = fixture_dir().join("golden_ws");
    let cfg = parse_config(&fixture("golden_ws/conform.toml")).expect("golden config parses");
    let report = scan_workspace(&root, &cfg).expect("golden workspace scans");
    let expected = fixture("golden_expected.txt");
    assert_eq!(report.render(), expected, "golden report drifted");
    // And twice in a row — determinism is the whole point.
    let again = scan_workspace(&root, &cfg).expect("golden workspace scans again");
    assert_eq!(again.render(), expected);
}

/// The JSON twin of the golden test: `render_json` over the same
/// mini-workspace must reproduce `golden_expected.json` byte for byte —
/// same sort, fixed key order, machine-stable across runs.
#[test]
fn golden_workspace_json_is_byte_stable() {
    let root = fixture_dir().join("golden_ws");
    let cfg = parse_config(&fixture("golden_ws/conform.toml")).expect("golden config parses");
    let report = scan_workspace(&root, &cfg).expect("golden workspace scans");
    let expected = fixture("golden_expected.json");
    assert_eq!(report.render_json(), expected, "golden JSON drifted");
    let again = scan_workspace(&root, &cfg).expect("golden workspace scans again");
    assert_eq!(again.render_json(), expected);
}

/// The binary contract: exit 1 (with the golden report on stdout) on a tree
/// with unwaived findings, exit 0 on the real workspace, exit 2 on a config
/// the parser rejects.
#[test]
fn binary_exit_codes_match_contract() {
    let bin = env!("CARGO_BIN_EXE_cloudburst-conform");
    let run = |root: &Path, config: &Path| {
        std::process::Command::new(bin)
            .arg("--root")
            .arg(root)
            .arg("--config")
            .arg(config)
            .output()
            .expect("conform binary runs")
    };

    let golden = fixture_dir().join("golden_ws");
    let dirty = run(&golden, &golden.join("conform.toml"));
    assert_eq!(dirty.status.code(), Some(1), "unwaived findings must exit 1");
    assert_eq!(
        String::from_utf8_lossy(&dirty.stdout),
        fixture("golden_expected.txt"),
        "binary stdout must match the golden report"
    );

    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let clean = run(&ws_root, &ws_root.join("conform.toml"));
    assert_eq!(
        clean.status.code(),
        Some(0),
        "workspace must scan clean; stdout:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let bad_cfg = run(&golden, &fixture_dir().join("config/missing_justification.toml"));
    assert_eq!(bad_cfg.status.code(), Some(2), "rejected config must exit 2");

    // --json: same exit code, machine-readable stdout, byte-identical to
    // the golden JSON.
    let json = std::process::Command::new(bin)
        .arg("--root")
        .arg(&golden)
        .arg("--config")
        .arg(golden.join("conform.toml"))
        .arg("--json")
        .output()
        .expect("conform binary runs with --json");
    assert_eq!(json.status.code(), Some(1), "--json keeps the exit contract");
    assert_eq!(
        String::from_utf8_lossy(&json.stdout),
        fixture("golden_expected.json"),
        "binary --json stdout must match the golden JSON"
    );
}

/// The capstone: the real workspace, scanned with the real `conform.toml`,
/// has zero unwaived findings. This is the same check ci.sh gates on.
#[test]
fn real_workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let toml = fs::read_to_string(root.join("conform.toml")).expect("conform.toml readable");
    let cfg = parse_config(&toml).expect("conform.toml parses");
    let report = scan_workspace(&root, &cfg).expect("workspace scans");
    assert_eq!(
        report.unwaived(),
        0,
        "workspace has unwaived findings:\n{}",
        report.render()
    );
}

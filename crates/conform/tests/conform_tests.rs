//! Fixture-driven self-tests for the conformance linter.
//!
//! Three layers:
//!
//! 1. per-rule fixture pairs under `fixtures/rules/` — every rule has at
//!    least one violating sample (the rule must fire) and one clean sample
//!    (the rule must stay silent);
//! 2. config fixtures under `fixtures/config/` — the waiver grammar,
//!    including rejection of waivers without a justification;
//! 3. the golden mini-workspace under `fixtures/golden_ws/` — a full
//!    `scan_workspace` run whose rendered report must match
//!    `fixtures/golden_expected.txt` byte for byte, locking in the
//!    `(rule, path, line)` report ordering;
//!
//! plus the capstone: the *real* workspace, scanned with the real
//! `conform.toml`, must have zero unwaived findings.

use std::fs;
use std::path::{Path, PathBuf};

use cloudburst_conform::{
    parse_config, scan_str, scan_workspace, Config, ConfigError, FileContext, Finding,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(rel: &str) -> String {
    let path = fixture_dir().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scans a `fixtures/rules/` sample as library code of the deterministic
/// `sim` crate (the strictest context), with an empty config.
fn scan_rule_fixture(name: &str) -> Vec<Finding> {
    let src = fixture(&format!("rules/{name}"));
    let is_root = name.starts_with("lint_header");
    let rel = if is_root { "crates/sim/src/lib.rs" } else { "crates/sim/src/sample.rs" };
    scan_str(&Config::default(), "sim", FileContext::Lib, rel, &src, is_root)
}

fn assert_fires(name: &str, rule: &str) {
    let findings = scan_rule_fixture(name);
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "{name} must trigger {rule}, got {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "{name} must trigger only {rule}, got {findings:?}"
    );
}

fn assert_clean(name: &str) {
    let findings = scan_rule_fixture(name);
    assert!(findings.is_empty(), "{name} must scan clean, got {findings:?}");
}

#[test]
fn wall_clock_fixture_pair() {
    assert_fires("wall_clock_violation.rs", "determinism/wall-clock");
    assert_clean("wall_clock_clean.rs");
}

#[test]
fn default_hasher_fixture_pair() {
    assert_fires("default_hasher_violation.rs", "determinism/default-hasher");
    assert_clean("default_hasher_clean.rs");
}

#[test]
fn ambient_rng_fixture_pair() {
    assert_fires("ambient_rng_violation.rs", "determinism/ambient-rng");
    assert_clean("ambient_rng_clean.rs");
}

#[test]
fn thread_spawn_fixture_pair() {
    assert_fires("thread_spawn_violation.rs", "determinism/thread-spawn");
    assert_clean("thread_spawn_clean.rs");
}

#[test]
fn crossbeam_scope_fixture_pair() {
    // An unwaived fan-out coordinator in a deterministic crate must fail
    // the scan exactly like a bare `thread::spawn` — the shard pool's
    // legitimacy comes from its per-file waiver, not a rule relaxation.
    assert_fires("crossbeam_scope_violation.rs", "determinism/thread-spawn");
    assert_clean("crossbeam_scope_clean.rs");
}

#[test]
fn unsafe_fixture_pair() {
    assert_fires("unsafe_violation.rs", "hotpath/unsafe");
    assert_clean("unsafe_clean.rs");
}

#[test]
fn unwrap_budget_fixture_pair() {
    assert_fires("unwrap_violation.rs", "hotpath/unwrap-budget");
    // The same file passes once the crate's budget covers its one site.
    let src = fixture("rules/unwrap_violation.rs");
    let cfg = parse_config("[budgets.unwrap]\nsim = 1\n").expect("budget config parses");
    let findings =
        scan_str(&cfg, "sim", FileContext::Lib, "crates/sim/src/sample.rs", &src, false);
    assert!(findings.is_empty(), "budget 1 must cover one unwrap, got {findings:?}");
    assert_clean("unwrap_clean.rs");
}

#[test]
fn print_fixture_pair() {
    assert_fires("print_violation.rs", "hotpath/print");
    assert_clean("print_clean.rs");
}

#[test]
fn lint_header_fixture_pair() {
    let findings = scan_rule_fixture("lint_header_violation.rs");
    assert_eq!(
        findings.len(),
        3,
        "a bare crate root misses all three attrs, got {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "conformance/lint-header"));
    assert_clean("lint_header_clean.rs");
}

#[test]
fn determinism_rules_do_not_bind_free_crates() {
    // The same wall-clock sample is legal in a non-deterministic crate
    // (bench owns the real WallClock).
    let src = fixture("rules/wall_clock_violation.rs");
    let findings =
        scan_str(&Config::default(), "bench", FileContext::Lib, "crates/bench/src/clock.rs", &src, false);
    assert!(findings.is_empty(), "bench may read the wall clock, got {findings:?}");
}

#[test]
fn good_config_parses() {
    let cfg = parse_config(&fixture("config/good.toml")).expect("good.toml parses");
    assert_eq!(cfg.waivers.len(), 1);
    assert_eq!(cfg.unwrap_budget("qrsm"), 2);
    assert_eq!(cfg.unwrap_budget("net"), 0);
}

#[test]
fn waiver_without_justification_is_rejected() {
    let err = parse_config(&fixture("config/missing_justification.toml"))
        .expect_err("a waiver with no justification must be rejected");
    assert!(matches!(err, ConfigError::MissingJustification { .. }), "got {err:?}");
}

#[test]
fn blank_justification_is_rejected() {
    let err = parse_config(&fixture("config/blank_justification.toml"))
        .expect_err("a whitespace justification must be rejected");
    assert!(matches!(err, ConfigError::MissingJustification { .. }), "got {err:?}");
}

#[test]
fn incomplete_waiver_is_rejected() {
    let err = parse_config(&fixture("config/incomplete_waiver.toml"))
        .expect_err("a waiver without a path must be rejected");
    assert!(matches!(err, ConfigError::IncompleteWaiver { .. }), "got {err:?}");
}

#[test]
fn unknown_waiver_key_is_rejected() {
    let err = parse_config(&fixture("config/unknown_key.toml"))
        .expect_err("unknown waiver keys must be rejected");
    assert!(matches!(err, ConfigError::Parse { .. }), "got {err:?}");
}

/// The golden test: scanning the mini-workspace must reproduce
/// `golden_expected.txt` byte for byte. This locks in the report ordering
/// (rule, then path, then line, then message), waived-finding rendering,
/// stale-waiver detection, and the summary line.
#[test]
fn golden_workspace_report_is_byte_stable() {
    let root = fixture_dir().join("golden_ws");
    let cfg = parse_config(&fixture("golden_ws/conform.toml")).expect("golden config parses");
    let report = scan_workspace(&root, &cfg).expect("golden workspace scans");
    let expected = fixture("golden_expected.txt");
    assert_eq!(report.render(), expected, "golden report drifted");
    // And twice in a row — determinism is the whole point.
    let again = scan_workspace(&root, &cfg).expect("golden workspace scans again");
    assert_eq!(again.render(), expected);
}

/// The binary contract: exit 1 (with the golden report on stdout) on a tree
/// with unwaived findings, exit 0 on the real workspace, exit 2 on a config
/// the parser rejects.
#[test]
fn binary_exit_codes_match_contract() {
    let bin = env!("CARGO_BIN_EXE_cloudburst-conform");
    let run = |root: &Path, config: &Path| {
        std::process::Command::new(bin)
            .arg("--root")
            .arg(root)
            .arg("--config")
            .arg(config)
            .output()
            .expect("conform binary runs")
    };

    let golden = fixture_dir().join("golden_ws");
    let dirty = run(&golden, &golden.join("conform.toml"));
    assert_eq!(dirty.status.code(), Some(1), "unwaived findings must exit 1");
    assert_eq!(
        String::from_utf8_lossy(&dirty.stdout),
        fixture("golden_expected.txt"),
        "binary stdout must match the golden report"
    );

    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let clean = run(&ws_root, &ws_root.join("conform.toml"));
    assert_eq!(
        clean.status.code(),
        Some(0),
        "workspace must scan clean; stdout:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let bad_cfg = run(&golden, &fixture_dir().join("config/missing_justification.toml"));
    assert_eq!(bad_cfg.status.code(), Some(2), "rejected config must exit 2");
}

/// The capstone: the real workspace, scanned with the real `conform.toml`,
/// has zero unwaived findings. This is the same check ci.sh gates on.
#[test]
fn real_workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let toml = fs::read_to_string(root.join("conform.toml")).expect("conform.toml readable");
    let cfg = parse_config(&toml).expect("conform.toml parses");
    let report = scan_workspace(&root, &cfg).expect("workspace scans");
    assert_eq!(
        report.unwaived(),
        0,
        "workspace has unwaived findings:\n{}",
        report.render()
    );
}

//! `cloudburst-chaos` — deterministic fault injection for the burst pipeline.
//!
//! The paper's premise (Sec. III-A) is an EC behind a thin, *time-varying*
//! Internet pipe; a production burst scheduler must additionally survive the
//! pipe and the machines actively failing. This crate turns a seeded
//! [`FaultProfile`] — crash/recover laws for IC and EC machines, EC link
//! blackout and degradation windows, per-transfer stall/loss and per-job
//! execution-failure probabilities — into a concrete [`FaultPlan`]: an
//! explicit, serializable schedule of every fault the run will suffer.
//!
//! Two properties make the plans safe to regress against:
//!
//! * **Determinism.** Compilation draws only from [`RngFactory`] streams
//!   derived from the experiment seed plus stable labels, so the same
//!   `(profile, seed, estate shape)` always yields the identical plan, and
//!   adding new fault classes never perturbs existing streams. Per-transfer
//!   and per-job decisions are *hashed*, not drawn: whether attempt `k` of
//!   job `j` fails is a pure function of the plan, independent of event
//!   interleaving.
//! * **Replayability.** A plan serializes to JSON with exact float
//!   round-tripping; a run driven from a deserialized plan is byte-identical
//!   to the run that compiled it (see the engine's chaos golden tests).
//!
//! The crate deliberately knows nothing about the engine: a plan is plain
//! data. The engine realizes machine faults as ordinary DES events, applies
//! link windows to the fluid-flow pipes, and consults the hashed deciders at
//! dispatch/completion points.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use rand::Rng;
use serde::{Deserialize, Serialize};

use cloudburst_sim::RngFactory;

/// Crash/recover law for one machine pool: alternating exponential up-time
/// and down-time spans, truncated per machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashLaw {
    /// Mean seconds a machine stays up before crashing.
    pub mean_uptime_secs: f64,
    /// Mean seconds a crashed machine stays down before recovering.
    pub mean_downtime_secs: f64,
    /// Hard cap on crash/recover cycles per machine (keeps plans finite).
    pub max_faults_per_machine: u32,
}

/// Total-outage windows on an EC site's links (both directions at once).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlackoutLaw {
    /// Mean seconds between the end of one blackout and the next.
    pub mean_interval_secs: f64,
    /// Mean blackout duration, seconds.
    pub mean_duration_secs: f64,
    /// Hard cap on windows per site.
    pub max_windows: u32,
}

/// Severe-degradation windows: capacity multiplied by `factor` (< 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradationLaw {
    /// Mean seconds between the end of one window and the next.
    pub mean_interval_secs: f64,
    /// Mean window duration, seconds.
    pub mean_duration_secs: f64,
    /// Capacity multiplier inside the window (`0 < factor < 1`).
    pub factor: f64,
    /// Hard cap on windows per site.
    pub max_windows: u32,
}

/// A deterministic, explicitly placed outage window (applied to every EC
/// site) — the authoring tool for scripted scenarios such as "blackout from
/// t = 300 s to t = 900 s, mid-batch".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Window start, seconds.
    pub from_secs: f64,
    /// Window end, seconds.
    pub until_secs: f64,
}

/// Recovery knobs: transfer timeouts and capped exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First backoff span, seconds; attempt `k` waits `base · 2^k`.
    pub base_backoff_secs: f64,
    /// Ceiling on any single backoff span, seconds.
    pub backoff_cap_secs: f64,
    /// Transfer attempts beyond the first before the job is re-dispatched
    /// away from the faulty path.
    pub max_transfer_retries: u32,
    /// Execution retries per job before the failure decider stops firing
    /// (guarantees every job eventually completes).
    pub max_exec_retries: u32,
    /// A transfer's timeout is `timeout_factor ×` its estimated duration…
    pub timeout_factor: f64,
    /// …but never below this floor, seconds.
    pub min_timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_backoff_secs: 5.0,
            backoff_cap_secs: 120.0,
            max_transfer_retries: 3,
            max_exec_retries: 4,
            timeout_factor: 4.0,
            min_timeout_secs: 30.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry attempt `attempt` (0-based): capped exponential.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let factor = 2.0_f64.powi(attempt.min(30) as i32);
        (self.base_backoff_secs * factor).min(self.backoff_cap_secs)
    }

    /// Timeout armed for a transfer whose estimated duration is `est_secs`.
    pub fn timeout_secs(&self, est_secs: f64) -> f64 {
        (self.timeout_factor * est_secs.max(0.0)).max(self.min_timeout_secs)
    }
}

/// The seeded description of what may go wrong in a run. Compiling it
/// against an estate shape yields the concrete [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Crash/recover law for the internal pool.
    pub ic_crash: Option<CrashLaw>,
    /// Crash/recover law for every external pool.
    pub ec_crash: Option<CrashLaw>,
    /// Sampled total-outage windows on EC links.
    pub link_blackouts: Option<BlackoutLaw>,
    /// Sampled severe-degradation windows on EC links.
    pub link_degradation: Option<DegradationLaw>,
    /// Scripted outage windows applied to every EC site verbatim.
    pub fixed_blackouts: Vec<Window>,
    /// Probability an individual transfer attempt hangs (connection stall:
    /// the slot is held, no bytes ever flow, only the timeout frees it).
    pub transfer_stall_prob: f64,
    /// Probability a completed transfer's payload is lost/corrupt.
    pub transfer_loss_prob: f64,
    /// Probability one execution attempt of a job fails at completion.
    pub exec_failure_prob: f64,
    /// Timeout/backoff/retry-budget policy for the recovery side.
    pub retry: RetryPolicy,
    /// Sampling horizon, seconds: no sampled fault *starts* after this.
    pub horizon_secs: f64,
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::dormant()
    }
}

impl FaultProfile {
    /// A profile that injects nothing: compiling it yields an empty plan
    /// and the engine's recovery plumbing stays fully dormant.
    pub fn dormant() -> FaultProfile {
        FaultProfile {
            ic_crash: None,
            ec_crash: None,
            link_blackouts: None,
            link_degradation: None,
            fixed_blackouts: Vec::new(),
            transfer_stall_prob: 0.0,
            transfer_loss_prob: 0.0,
            exec_failure_prob: 0.0,
            retry: RetryPolicy::default(),
            horizon_secs: 86_400.0,
        }
    }

    /// True when the profile can produce no fault whatsoever.
    pub fn is_dormant(&self) -> bool {
        self.ic_crash.is_none()
            && self.ec_crash.is_none()
            && self.link_blackouts.is_none()
            && self.link_degradation.is_none()
            && self.fixed_blackouts.is_empty()
            && self.transfer_stall_prob <= 0.0
            && self.transfer_loss_prob <= 0.0
            && self.exec_failure_prob <= 0.0
    }

    /// A scripted scenario: every EC link fully dark over `[from, until)`.
    pub fn with_blackout(mut self, from_secs: f64, until_secs: f64) -> FaultProfile {
        self.fixed_blackouts.push(Window { from_secs, until_secs });
        self
    }

    /// Compiles the profile into the concrete fault schedule for one run.
    /// Every stochastic draw comes from `RngFactory` streams labelled
    /// `chaos/…`, so the plan is a pure function of `(self, seed, shape)`.
    pub fn compile(&self, seed: u64, shape: &EstateShape) -> FaultPlan {
        let rngs = RngFactory::new(seed);
        let horizon = self.horizon_secs.max(0.0);

        let mut machine_faults = Vec::new();
        if let Some(law) = &self.ic_crash {
            for m in 0..shape.n_ic {
                let mut rng = rngs.stream_indexed("chaos/crash/ic", m as u64);
                sample_crashes(&mut rng, law, horizon, Pool::Ic, m, &mut machine_faults);
            }
        }
        if let Some(law) = &self.ec_crash {
            for (s, &n) in shape.ec_machines.iter().enumerate() {
                for m in 0..n {
                    let mut rng = rngs
                        .stream_indexed("chaos/crash/ec", ((s as u64) << 32) | m as u64);
                    sample_crashes(&mut rng, law, horizon, Pool::Ec(s as u32), m, &mut machine_faults);
                }
            }
        }

        let n_sites = shape.ec_machines.len();
        let mut site_windows: Vec<Vec<FaultWindow>> = vec![Vec::new(); n_sites];
        for (s, windows) in site_windows.iter_mut().enumerate() {
            for w in &self.fixed_blackouts {
                if w.until_secs > w.from_secs {
                    windows.push(FaultWindow {
                        from_secs: w.from_secs,
                        until_secs: w.until_secs,
                        factor: 0.0,
                    });
                }
            }
            if let Some(law) = &self.link_blackouts {
                let mut rng = rngs.stream_indexed("chaos/blackout", s as u64);
                sample_windows(
                    &mut rng,
                    law.mean_interval_secs,
                    law.mean_duration_secs,
                    0.0,
                    law.max_windows,
                    horizon,
                    windows,
                );
            }
            if let Some(law) = &self.link_degradation {
                let mut rng = rngs.stream_indexed("chaos/degrade", s as u64);
                sample_windows(
                    &mut rng,
                    law.mean_interval_secs,
                    law.mean_duration_secs,
                    law.factor.clamp(0.0, 1.0),
                    law.max_windows,
                    horizon,
                    windows,
                );
            }
            windows.sort_by(|a, b| {
                a.from_secs.partial_cmp(&b.from_secs).expect("window starts are finite")
            });
        }

        let mut salt_rng = rngs.stream("chaos/salt");
        FaultPlan {
            seed,
            machine_faults,
            site_windows,
            exec_failure: ProbLaw { prob: self.exec_failure_prob, salt: salt_rng.gen() },
            transfer_stall: ProbLaw { prob: self.transfer_stall_prob, salt: salt_rng.gen() },
            transfer_loss: ProbLaw { prob: self.transfer_loss_prob, salt: salt_rng.gen() },
            retry: self.retry,
        }
    }
}

/// Which pool a machine fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pool {
    /// The internal cloud.
    Ic,
    /// External site by index (0 is the primary EC).
    Ec(u32),
}

/// One crash/recover cycle of one machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineFault {
    /// Pool the machine belongs to.
    pub pool: Pool,
    /// Machine index within its pool.
    pub machine: u32,
    /// Crash instant, seconds.
    pub down_at_secs: f64,
    /// Recovery instant, seconds (strictly after the crash).
    pub up_at_secs: f64,
}

/// One capacity-fault window on a site's links: the pipe's rate is
/// multiplied by `factor` while `from_secs <= t < until_secs`
/// (0 = blackout). Overlapping windows multiply.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start, seconds.
    pub from_secs: f64,
    /// Window end, seconds.
    pub until_secs: f64,
    /// Capacity multiplier inside the window.
    pub factor: f64,
}

/// A hashed per-event probabilistic decider. Whether event `key` fires is
/// `hash(salt, key) < prob` — a pure function, so decisions are stable under
/// event reordering and replay.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbLaw {
    /// Firing probability in `[0, 1]`.
    pub prob: f64,
    /// Plan-specific salt (drawn once at compile time).
    pub salt: u64,
}

impl ProbLaw {
    /// Deterministic decision for `key`.
    pub fn fires(&self, key: u64) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        let h = splitmix64(self.salt ^ splitmix64(key));
        // 53 high bits → uniform fraction in [0, 1).
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        frac < self.prob
    }
}

/// The estate a profile is compiled against: machine counts per pool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstateShape {
    /// Internal-pool machine count.
    pub n_ic: u32,
    /// Machines per external site, primary first.
    pub ec_machines: Vec<u32>,
}

/// The concrete fault schedule of one run: plain serializable data the
/// engine realizes as DES events, link windows and hashed deciders.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was compiled under (bookkeeping only).
    pub seed: u64,
    /// Every machine crash/recover cycle, unordered.
    pub machine_faults: Vec<MachineFault>,
    /// Capacity-fault windows per EC site (sorted by start), applied to the
    /// site's upload *and* download links.
    pub site_windows: Vec<Vec<FaultWindow>>,
    /// Per-execution-attempt failure decider (keyed on job, attempt).
    pub exec_failure: ProbLaw,
    /// Per-transfer-attempt stall decider (keyed on job, direction, attempt).
    pub transfer_stall: ProbLaw,
    /// Per-transfer-attempt payload-loss decider (same keying).
    pub transfer_loss: ProbLaw,
    /// The recovery policy the engine must apply.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// True when the plan injects nothing: the engine may skip the entire
    /// recovery path and behave byte-identically to a fault-free build.
    pub fn is_empty(&self) -> bool {
        self.machine_faults.is_empty()
            && self.site_windows.iter().all(|w| w.is_empty())
            && self.exec_failure.prob <= 0.0
            && self.transfer_stall.prob <= 0.0
            && self.transfer_loss.prob <= 0.0
    }

    /// Does execution attempt `attempt` (0-based) of job `job` fail?
    /// Clamped by the retry budget so every job eventually completes.
    pub fn exec_fails(&self, job: u64, attempt: u32) -> bool {
        if attempt >= self.retry.max_exec_retries {
            return false;
        }
        self.exec_failure.fires(event_key(job, attempt, 0))
    }

    /// Does transfer attempt `attempt` of job `job` stall (never flow)?
    pub fn transfer_stalls(&self, job: u64, upload: bool, attempt: u32) -> bool {
        self.transfer_stall.fires(event_key(job, attempt, if upload { 1 } else { 2 }))
    }

    /// Is the payload of a *completed* transfer attempt lost?
    pub fn transfer_lost(&self, job: u64, upload: bool, attempt: u32) -> bool {
        self.transfer_loss.fires(event_key(job, attempt, if upload { 3 } else { 4 }))
    }

    /// Fault windows for one site's links (empty slice when out of range).
    pub fn windows_for_site(&self, site: usize) -> &[FaultWindow] {
        self.site_windows.get(site).map_or(&[], |w| w.as_slice())
    }

    /// Total scheduled blackout seconds (factor-0 windows) across sites —
    /// a static severity summary for fault-attributed SLA reporting.
    pub fn blackout_secs(&self) -> f64 {
        self.site_windows
            .iter()
            .flatten()
            .filter(|w| w.factor <= 0.0)
            .map(|w| (w.until_secs - w.from_secs).max(0.0))
            .sum()
    }

    /// Serializes the plan to JSON (floats round-trip exactly).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("FaultPlan serializes")
    }

    /// Restores a plan from [`FaultPlan::to_json`] output.
    pub fn from_json(text: &str) -> Result<FaultPlan, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Stable key for one (job, attempt, kind) event. The multipliers spread
/// the fields across the 64-bit space before the splitmix finalizer.
fn event_key(job: u64, attempt: u32, kind: u64) -> u64 {
    job.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (attempt as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ kind.wrapping_mul(0x1656_67b1_9e37_79f9)
}

/// One round of splitmix64 — the same stable finalizer the sim's
/// `RngFactory` uses for stream derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Exponential span with the given mean; non-positive means never fire.
fn exp_span(rng: &mut rand::rngs::StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1], so ln is finite and the span non-negative.
    -mean * (1.0 - u).ln()
}

/// Alternating up/down spans for one machine, truncated at the horizon and
/// the per-machine cycle cap. Downtime is floored at one second so a crash
/// and its recovery are never the same instant.
fn sample_crashes(
    rng: &mut rand::rngs::StdRng,
    law: &CrashLaw,
    horizon: f64,
    pool: Pool,
    machine: u32,
    out: &mut Vec<MachineFault>,
) {
    let mut t = exp_span(rng, law.mean_uptime_secs);
    let mut cycles = 0;
    while t < horizon && cycles < law.max_faults_per_machine {
        let down = exp_span(rng, law.mean_downtime_secs).max(1.0);
        if !down.is_finite() {
            break;
        }
        out.push(MachineFault { pool, machine, down_at_secs: t, up_at_secs: t + down });
        t += down + exp_span(rng, law.mean_uptime_secs);
        cycles += 1;
    }
}

/// Samples spot-instance revocation cycles for one EC site's machines on
/// the dedicated `"chaos/spot-revoke"` stream. Revocations are ordinary
/// crash/recover cycles from the engine's point of view — the economics
/// layer merges them into the run's [`FaultPlan`] — but they draw from
/// their own stream label keyed `(site << 32) | machine`, so arming a spot
/// price model never perturbs any existing chaos stream (and vice versa).
pub fn sample_spot_revocations(
    seed: u64,
    site: u32,
    n_machines: u32,
    law: &CrashLaw,
    horizon_secs: f64,
    out: &mut Vec<MachineFault>,
) {
    let rngs = RngFactory::new(seed);
    let horizon = horizon_secs.max(0.0);
    for m in 0..n_machines {
        let mut rng = rngs.stream_indexed("chaos/spot-revoke", ((site as u64) << 32) | m as u64);
        sample_crashes(&mut rng, law, horizon, Pool::Ec(site), m, out);
    }
}

/// Interval/duration-sampled fault windows, truncated like crash cycles.
fn sample_windows(
    rng: &mut rand::rngs::StdRng,
    mean_interval: f64,
    mean_duration: f64,
    factor: f64,
    max_windows: u32,
    horizon: f64,
    out: &mut Vec<FaultWindow>,
) {
    let mut t = exp_span(rng, mean_interval);
    let mut count = 0;
    while t < horizon && count < max_windows {
        let dur = exp_span(rng, mean_duration).max(1.0);
        if !dur.is_finite() {
            break;
        }
        out.push(FaultWindow { from_secs: t, until_secs: t + dur, factor });
        t += dur + exp_span(rng, mean_interval);
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> EstateShape {
        EstateShape { n_ic: 4, ec_machines: vec![2, 3] }
    }

    fn stormy() -> FaultProfile {
        FaultProfile {
            ic_crash: Some(CrashLaw {
                mean_uptime_secs: 600.0,
                mean_downtime_secs: 120.0,
                max_faults_per_machine: 4,
            }),
            ec_crash: Some(CrashLaw {
                mean_uptime_secs: 300.0,
                mean_downtime_secs: 200.0,
                max_faults_per_machine: 4,
            }),
            link_blackouts: Some(BlackoutLaw {
                mean_interval_secs: 1200.0,
                mean_duration_secs: 180.0,
                max_windows: 3,
            }),
            link_degradation: Some(DegradationLaw {
                mean_interval_secs: 900.0,
                mean_duration_secs: 300.0,
                factor: 0.25,
                max_windows: 3,
            }),
            fixed_blackouts: vec![Window { from_secs: 100.0, until_secs: 160.0 }],
            transfer_stall_prob: 0.1,
            transfer_loss_prob: 0.05,
            exec_failure_prob: 0.08,
            retry: RetryPolicy::default(),
            horizon_secs: 7200.0,
        }
    }

    #[test]
    fn dormant_profile_compiles_to_empty_plan() {
        let p = FaultProfile::dormant();
        assert!(p.is_dormant());
        let plan = p.compile(7, &shape());
        assert!(plan.is_empty());
        assert_eq!(plan.blackout_secs(), 0.0);
        assert!(!plan.exec_fails(0, 0));
        assert!(!plan.transfer_stalls(0, true, 0));
        assert!(!plan.transfer_lost(0, false, 0));
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let p = stormy();
        let a = p.compile(42, &shape());
        let b = p.compile(42, &shape());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let c = p.compile(43, &shape());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn plan_round_trips_through_json_exactly() {
        let plan = stormy().compile(42, &shape());
        assert!(!plan.is_empty());
        let js = plan.to_json();
        let back = FaultPlan::from_json(&js).expect("round trip parses");
        assert_eq!(plan, back);
        assert_eq!(js, back.to_json(), "serialization is a fixed point");
    }

    #[test]
    fn crash_cycles_are_well_formed() {
        let plan = stormy().compile(9, &shape());
        assert!(!plan.machine_faults.is_empty());
        for f in &plan.machine_faults {
            assert!(f.down_at_secs >= 0.0);
            assert!(f.up_at_secs > f.down_at_secs, "recovery strictly follows crash");
            assert!(f.down_at_secs < 7200.0, "no fault starts past the horizon");
            match f.pool {
                Pool::Ic => assert!(f.machine < 4),
                Pool::Ec(s) => assert!(f.machine < shape().ec_machines[s as usize]),
            }
        }
        // Per-machine cycles never overlap: each up precedes the next down.
        for pool_sel in [Pool::Ic, Pool::Ec(0), Pool::Ec(1)] {
            for m in 0..4u32 {
                let mut cycles: Vec<_> = plan
                    .machine_faults
                    .iter()
                    .filter(|f| f.pool == pool_sel && f.machine == m)
                    .collect();
                cycles.sort_by(|a, b| {
                    a.down_at_secs.partial_cmp(&b.down_at_secs).expect("finite")
                });
                for pair in cycles.windows(2) {
                    assert!(pair[0].up_at_secs <= pair[1].down_at_secs);
                }
            }
        }
    }

    #[test]
    fn windows_are_sorted_and_fixed_blackouts_present() {
        let plan = stormy().compile(11, &shape());
        assert_eq!(plan.site_windows.len(), 2);
        for site in 0..2 {
            let ws = plan.windows_for_site(site);
            assert!(ws
                .iter()
                .any(|w| w.factor == 0.0 && w.from_secs == 100.0 && w.until_secs == 160.0));
            for pair in ws.windows(2) {
                assert!(pair[0].from_secs <= pair[1].from_secs, "sorted by start");
            }
            for w in ws {
                assert!(w.until_secs > w.from_secs);
                assert!((0.0..1.0).contains(&w.factor) || w.factor == 0.0);
            }
        }
        assert!(plan.blackout_secs() >= 120.0, "two sites × 60 s fixed window");
        assert_eq!(plan.windows_for_site(99), &[] as &[FaultWindow]);
    }

    #[test]
    fn deciders_are_stable_and_respect_probabilities() {
        let plan = stormy().compile(5, &shape());
        for job in 0..50u64 {
            for attempt in 0..3u32 {
                assert_eq!(
                    plan.exec_fails(job, attempt),
                    plan.exec_fails(job, attempt),
                    "pure function of (job, attempt)"
                );
            }
        }
        // Certain failure fires on every attempt below the budget and never at it.
        let mut certain = stormy();
        certain.exec_failure_prob = 1.0;
        let plan = certain.compile(5, &shape());
        let cap = plan.retry.max_exec_retries;
        for a in 0..cap {
            assert!(plan.exec_fails(3, a));
        }
        assert!(!plan.exec_fails(3, cap), "budget exhausts the decider");
        // Upload and download decisions are independent keys.
        let mut lossy = stormy();
        lossy.transfer_loss_prob = 0.5;
        let plan = lossy.compile(6, &shape());
        let ups: Vec<bool> = (0..64).map(|j| plan.transfer_lost(j, true, 0)).collect();
        let downs: Vec<bool> = (0..64).map(|j| plan.transfer_lost(j, false, 0)).collect();
        assert_ne!(ups, downs, "directions draw from distinct keys");
        let hits = ups.iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&hits), "≈ half should fire, got {hits}");
    }

    #[test]
    fn spot_revocations_are_deterministic_and_stream_isolated() {
        let law = CrashLaw {
            mean_uptime_secs: 1800.0,
            mean_downtime_secs: 600.0,
            max_faults_per_machine: 8,
        };
        let mut a = Vec::new();
        sample_spot_revocations(42, 1, 3, &law, 86_400.0, &mut a);
        let mut b = Vec::new();
        sample_spot_revocations(42, 1, 3, &law, 86_400.0, &mut b);
        assert_eq!(a, b, "pure function of (seed, site, law, horizon)");
        assert!(!a.is_empty(), "an aggressive law over a day yields cycles");
        for f in &a {
            assert_eq!(f.pool, Pool::Ec(1));
            assert!(f.machine < 3);
            assert!(f.up_at_secs > f.down_at_secs);
            assert!(f.down_at_secs < 86_400.0);
        }
        // The dedicated stream differs from the ec_crash stream for the
        // same (seed, site, machine, law): arming spot pricing must not
        // replay (or be confused with) ordinary EC crash plans.
        let profile = FaultProfile {
            ec_crash: Some(law),
            horizon_secs: 86_400.0,
            ..FaultProfile::dormant()
        };
        let crash_plan =
            profile.compile(42, &EstateShape { n_ic: 0, ec_machines: vec![0, 3] });
        assert_ne!(a, crash_plan.machine_faults, "distinct stream labels");
        // Site index keys the stream too.
        let mut other_site = Vec::new();
        sample_spot_revocations(42, 0, 3, &law, 86_400.0, &mut other_site);
        let a_times: Vec<f64> = a.iter().map(|f| f.down_at_secs).collect();
        let o_times: Vec<f64> = other_site.iter().map(|f| f.down_at_secs).collect();
        assert_ne!(a_times, o_times, "sites draw independent revocation streams");
    }

    #[test]
    fn backoff_caps_and_timeout_floors() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_secs(0), 5.0);
        assert_eq!(r.backoff_secs(1), 10.0);
        assert_eq!(r.backoff_secs(20), 120.0, "capped");
        assert_eq!(r.backoff_secs(u32::MAX), 120.0, "shift-safe at huge attempts");
        assert_eq!(r.timeout_secs(100.0), 400.0);
        assert_eq!(r.timeout_secs(0.0), 30.0, "floored");
        assert_eq!(r.timeout_secs(-5.0), 30.0, "negative estimates clamp");
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = stormy();
        let js = serde_json::to_string(&p).expect("serialize");
        let back: FaultProfile = serde_json::from_str(&js).expect("parse");
        assert_eq!(p, back);
        assert!(!back.is_dormant());
    }
}

//! Property tests for workload generation: bucket ranges, arrival
//! determinism, chunk conservation, and sampler sanity.

use proptest::prelude::*;

use cloudburst_sim::RngFactory;
use cloudburst_workload::chunk::{chunk_batch, ChunkPolicy};
use cloudburst_workload::{
    ArrivalConfig, BatchArrivals, DocumentFeatures, GroundTruth, SizeBucket,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every bucket produces sizes in [1, 300] MB and plausible feature
    /// vectors, for any seed.
    #[test]
    fn buckets_stay_in_domain(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for bucket in SizeBucket::ALL {
            for _ in 0..50 {
                let bytes = bucket.sample_bytes(&mut rng);
                prop_assert!((1_000_000..=300_000_000).contains(&bytes));
                let f = DocumentFeatures::sample_any_type(&mut rng, bytes);
                prop_assert!(f.pages >= 1);
                prop_assert!((0.0..=1.0).contains(&f.color_fraction));
                prop_assert!((0.0..=1.0).contains(&f.coverage));
                prop_assert!(GroundTruth::default().mean_secs(&f) > 0.0);
            }
        }
    }

    /// Arrival generation is a pure function of (seed, config): ids are
    /// dense, batches are on schedule, and regeneration is identical.
    #[test]
    fn arrivals_are_deterministic(seed in any::<u64>(), n_batches in 1u32..10) {
        let cfg = ArrivalConfig { n_batches, ..ArrivalConfig::default() };
        let gen = BatchArrivals::new(cfg);
        let truth = GroundTruth::default();
        let a = gen.generate(&RngFactory::new(seed), &truth);
        let b = gen.generate(&RngFactory::new(seed), &truth);
        prop_assert_eq!(a.len(), n_batches as usize);
        let mut next_id = 0u64;
        for (ba, bb) in a.iter().zip(&b) {
            prop_assert_eq!(ba.jobs.len(), bb.jobs.len());
            for (ja, jb) in ba.jobs.iter().zip(&bb.jobs) {
                prop_assert_eq!(ja.id.0, next_id);
                next_id += 1;
                prop_assert_eq!(ja.features.size_bytes, jb.features.size_bytes);
                prop_assert_eq!(ja.true_service_secs, jb.true_service_secs);
                prop_assert!(ja.true_service_secs > 0.0);
                prop_assert!(ja.output_bytes >= 1);
            }
        }
    }

    /// Batch chunking conserves total bytes and only ever grows the list.
    #[test]
    fn chunk_batch_conserves(seed in any::<u64>(), th in 10.0f64..200.0, target in 30.0f64..150.0) {
        use rand::SeedableRng;
        let gen = BatchArrivals::new(ArrivalConfig {
            n_batches: 1,
            bucket: SizeBucket::LargeBiased,
            ..ArrivalConfig::default()
        });
        let jobs = gen.generate_flat(&RngFactory::new(seed), &GroundTruth::default());
        let policy = ChunkPolicy {
            sigma_threshold_mb: th,
            target_chunk_mb: target,
            ..ChunkPolicy::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let out = chunk_batch(&jobs, &policy, &mut rng);
        prop_assert!(out.len() >= jobs.len());
        prop_assert_eq!(
            out.iter().map(|j| j.features.size_bytes).sum::<u64>(),
            jobs.iter().map(|j| j.features.size_bytes).sum::<u64>()
        );
        prop_assert_eq!(
            out.iter().map(|j| j.output_bytes).sum::<u64>(),
            jobs.iter().map(|j| j.output_bytes).sum::<u64>()
        );
        // Chunks point at real parents from the original list.
        for j in &out {
            if let Some(p) = j.parent {
                prop_assert!(jobs.iter().any(|orig| orig.id == p));
            }
        }
    }

    /// The seasonal profile never produces a non-positive rate and repeats
    /// with its cycle length.
    #[test]
    fn seasonal_rates_positive_and_cyclic(cycle in 1usize..20, peak in 1.0f64..6.0) {
        let cfg = ArrivalConfig::default().with_seasonal_cycle(cycle, peak);
        for b in 0..3 * cycle as u32 {
            let r = cfg.rate_for_batch(b);
            prop_assert!(r > 0.0);
            prop_assert!((cfg.rate_for_batch(b + cycle as u32) - r).abs() < 1e-12);
        }
    }

    /// Ground-truth sampling is multiplicative: scaling class factors
    /// scales times.
    #[test]
    fn class_factors_scale_truth(factor in 0.5f64..3.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = DocumentFeatures::sample_any_type(&mut rng, 50_000_000);
        let base = GroundTruth::noiseless();
        let mut scaled = base.clone();
        scaled.class_factors = [factor; 6];
        prop_assert!(
            (scaled.mean_secs(&f) / base.mean_secs(&f) - factor).abs() < 1e-9
        );
    }
}

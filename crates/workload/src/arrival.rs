//! Poisson batch arrival process (Sec. V-A).
//!
//! "A batch of jobs from a particular bucket would arrive every 3 minutes
//! according to a poisson process with mean arrival rate λ = 15 per batch."
//! We read this as: batches at fixed 3-minute epochs; the number of jobs in
//! each batch is Poisson(15); job sizes drawn from the bucket; secondary
//! document features sampled per job class.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use cloudburst_sim::{RngFactory, SimDuration, SimTime};

use crate::bucket::SizeBucket;
use crate::document::DocumentFeatures;
use crate::job::{Job, JobId};
use crate::stats;
use crate::truth::GroundTruth;

/// Configuration of the arrival process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Number of batches in the run (the paper's runs span a handful of
    /// batches; 7 gives ≈ 105 jobs at λ = 15).
    pub n_batches: u32,
    /// Time between consecutive batch arrivals (paper: 3 minutes).
    pub batch_interval: SimDuration,
    /// Mean number of jobs per batch (paper: λ = 15).
    pub jobs_per_batch: f64,
    /// Job-size distribution.
    pub bucket: SizeBucket,
    /// Seasonal modulation of the batch rate ("the workloads also wildly
    /// fluctuate and are periodical … closely following the seasonal
    /// consumption patterns", Sec. I). Batch `b`'s Poisson mean is
    /// `jobs_per_batch × profile[b mod len]`. `None` = stationary.
    pub rate_profile: Option<Vec<f64>>,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            n_batches: 7,
            batch_interval: SimDuration::from_mins(3),
            jobs_per_batch: 15.0,
            bucket: SizeBucket::Uniform,
            rate_profile: None,
        }
    }
}

impl ArrivalConfig {
    /// A peak/off-peak cycle: demand ramps up to `peak_factor` mid-cycle
    /// and falls back — a compressed model of the daily/weekly swell the
    /// paper's domain sees. `cycle_len` must be ≥ 1.
    pub fn with_seasonal_cycle(mut self, cycle_len: usize, peak_factor: f64) -> ArrivalConfig {
        assert!(cycle_len >= 1 && peak_factor > 0.0);
        let profile = (0..cycle_len)
            .map(|i| {
                let phase = i as f64 / cycle_len as f64 * std::f64::consts::PI;
                1.0 + (peak_factor - 1.0) * phase.sin()
            })
            .collect();
        self.rate_profile = Some(profile);
        self
    }

    /// A megascale arrival process: ≈ `total_jobs` jobs delivered in
    /// batches of ≈ 10 000 (Poisson per batch, so the realized total
    /// varies by `O(√total)`). Exercises the schedulers and the engine's
    /// decision loop far beyond the paper's ≈ 105-job runs; the large
    /// per-batch rate rides the Poisson sampler's normal-approximation
    /// branch.
    pub fn megascale(total_jobs: u64) -> ArrivalConfig {
        assert!(total_jobs > 0, "megascale needs at least one job");
        const TARGET_BATCH: u64 = 10_000;
        let n_batches = total_jobs.div_ceil(TARGET_BATCH).max(1) as u32;
        ArrivalConfig {
            n_batches,
            jobs_per_batch: total_jobs as f64 / n_batches as f64,
            ..ArrivalConfig::default()
        }
    }

    /// The effective Poisson mean for batch index `b`.
    pub fn rate_for_batch(&self, b: u32) -> f64 {
        match &self.rate_profile {
            None => self.jobs_per_batch,
            Some(p) if p.is_empty() => self.jobs_per_batch,
            Some(p) => self.jobs_per_batch * p[b as usize % p.len()],
        }
    }
}

/// One batch of jobs arriving together.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Batch {
    /// Batch index, 0-based.
    pub index: u32,
    /// Arrival instant of every job in the batch.
    pub arrival: SimTime,
    /// The jobs, in intra-batch queue order. Ids are provisional (generation
    /// order); the engine re-indexes after chunk insertion.
    pub jobs: Vec<Job>,
}

impl Batch {
    /// Total input bytes in the batch.
    pub fn input_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.input_bytes()).sum()
    }
}

/// Generator for the full arrival schedule of a run.
#[derive(Clone, Debug)]
pub struct BatchArrivals {
    config: ArrivalConfig,
}

impl BatchArrivals {
    /// Creates a generator with the given configuration.
    pub fn new(config: ArrivalConfig) -> Self {
        BatchArrivals { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// Generates all batches for a run. Deterministic in `(rngs, truth)`:
    /// sizes, features, batch counts and ground-truth service times all come
    /// from streams derived from the experiment seed.
    pub fn generate(&self, rngs: &RngFactory, truth: &GroundTruth) -> Vec<Batch> {
        let mut size_rng: StdRng = rngs.stream("workload/sizes");
        let mut feat_rng: StdRng = rngs.stream("workload/features");
        let mut count_rng: StdRng = rngs.stream("workload/counts");
        let mut truth_rng: StdRng = rngs.stream("workload/truth");

        let mut next_id: u64 = 0;
        let mut batches = Vec::with_capacity(self.config.n_batches as usize);
        for b in 0..self.config.n_batches {
            let arrival = SimTime::ZERO + self.config.batch_interval * b as u64;
            // Guarantee at least one job so every batch exercises the
            // schedulers (a Poisson(15) zero is astronomically rare anyway).
            let count = stats::poisson(&mut count_rng, self.config.rate_for_batch(b)).max(1);
            let mut jobs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let size = self.config.bucket.sample_bytes(&mut size_rng);
                let features = DocumentFeatures::sample_any_type(&mut feat_rng, size);
                let true_service_secs = truth.sample_secs(&mut truth_rng, &features);
                let output_bytes = truth.sample_output_bytes(&mut truth_rng, &features);
                jobs.push(Job {
                    id: JobId(next_id),
                    batch: b,
                    arrival,
                    features,
                    true_service_secs,
                    output_bytes,
                    parent: None,
                });
                next_id += 1;
            }
            batches.push(Batch { index: b, arrival, jobs });
        }
        batches
    }

    /// Generates a flat job list (all batches concatenated), convenient for
    /// model-training code that does not care about arrival times.
    pub fn generate_flat(&self, rngs: &RngFactory, truth: &GroundTruth) -> Vec<Job> {
        self.generate(rngs, truth).into_iter().flat_map(|b| b.jobs).collect()
    }
}

/// Samples `n` training documents across the full size range and all job
/// types — the "standard set of production data observed across a variety of
/// locations" the paper bootstraps its QRSM from (Sec. III-A-1).
pub fn training_corpus<R: Rng + ?Sized>(
    rng: &mut R,
    truth: &GroundTruth,
    n: usize,
) -> Vec<(DocumentFeatures, f64)> {
    (0..n)
        .map(|_| {
            let size = SizeBucket::Uniform.sample_bytes(rng);
            let f = DocumentFeatures::sample_any_type(rng, size);
            let t = truth.sample_secs(rng, &f);
            (f, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn batches_arrive_on_schedule() {
        let gen = BatchArrivals::new(ArrivalConfig::default());
        let batches = gen.generate(&RngFactory::new(7), &GroundTruth::default());
        assert_eq!(batches.len(), 7);
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.index as usize, i);
            assert_eq!(b.arrival, SimTime::from_secs(180 * i as u64));
            assert!(!b.jobs.is_empty());
            for j in &b.jobs {
                assert_eq!(j.arrival, b.arrival);
                assert_eq!(j.batch as usize, i);
            }
        }
    }

    #[test]
    fn ids_are_sequential_across_batches() {
        let gen = BatchArrivals::new(ArrivalConfig::default());
        let jobs = gen.generate_flat(&RngFactory::new(7), &GroundTruth::default());
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn batch_sizes_are_poisson_like() {
        let cfg = ArrivalConfig { n_batches: 200, ..ArrivalConfig::default() };
        let gen = BatchArrivals::new(cfg);
        let batches = gen.generate(&RngFactory::new(11), &GroundTruth::default());
        let counts: Vec<f64> = batches.iter().map(|b| b.jobs.len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        assert!((mean - 15.0).abs() < 1.0, "mean batch size {mean}");
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let gen = BatchArrivals::new(ArrivalConfig::default());
        let a = gen.generate_flat(&RngFactory::new(42), &GroundTruth::default());
        let b = gen.generate_flat(&RngFactory::new(42), &GroundTruth::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features.size_bytes, y.features.size_bytes);
            assert_eq!(x.true_service_secs, y.true_service_secs);
        }
        let c = gen.generate_flat(&RngFactory::new(43), &GroundTruth::default());
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.features.size_bytes != y.features.size_bytes),
            "different seeds should differ"
        );
    }

    #[test]
    fn seasonal_profile_modulates_batch_sizes() {
        let cfg = ArrivalConfig { n_batches: 200, ..ArrivalConfig::default() }
            .with_seasonal_cycle(10, 3.0);
        assert_eq!(cfg.rate_for_batch(0), 15.0, "cycle starts at baseline");
        assert!(cfg.rate_for_batch(5) > 40.0, "mid-cycle peak ≈ 3×");
        assert_eq!(cfg.rate_for_batch(10), cfg.rate_for_batch(0), "cycle repeats");

        let gen = BatchArrivals::new(cfg);
        let batches = gen.generate(&RngFactory::new(3), &GroundTruth::default());
        // Mid-cycle batches carry visibly more jobs than cycle-start ones.
        let start_mean: f64 = batches.iter().step_by(10).map(|b| b.jobs.len() as f64).sum::<f64>()
            / (batches.len() / 10) as f64;
        let peak_mean: f64 =
            batches.iter().skip(5).step_by(10).map(|b| b.jobs.len() as f64).sum::<f64>()
                / (batches.len() / 10) as f64;
        assert!(
            peak_mean > 2.0 * start_mean,
            "peak {peak_mean} should dwarf baseline {start_mean}"
        );
    }

    #[test]
    fn empty_profile_falls_back_to_baseline() {
        let cfg = ArrivalConfig { rate_profile: Some(vec![]), ..ArrivalConfig::default() };
        assert_eq!(cfg.rate_for_batch(3), 15.0);
    }

    #[test]
    fn training_corpus_spans_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let corpus = training_corpus(&mut rng, &GroundTruth::default(), 500);
        assert_eq!(corpus.len(), 500);
        let small = corpus.iter().filter(|(f, _)| f.size_mb() < 75.0).count();
        let large = corpus.iter().filter(|(f, _)| f.size_mb() > 225.0).count();
        assert!(small > 50 && large > 50, "corpus should span the size range");
        assert!(corpus.iter().all(|(_, t)| *t > 0.0));
    }
}

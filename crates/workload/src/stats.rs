//! Dependency-free samplers and descriptive statistics.
//!
//! `rand` 0.8 only ships uniform sampling in its core crate; the normal,
//! lognormal, Poisson and exponential variates the workload models need are
//! implemented here directly (Box–Muller, inverse-CDF, Knuth) to avoid extra
//! dependencies.

use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a lognormal variate with the given log-space parameters
/// (`exp(N(mu, sigma²))`).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a multiplicative noise factor with unit median: `exp(N(0, σ²))`.
pub fn noise_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    lognormal(rng, 0.0, sigma)
}

/// Rates above this use the normal approximation in [`poisson`]. Knuth's
/// method computes `exp(-λ)`, which underflows to 0 near λ ≈ 745 and turns
/// the sampler into an infinite loop; well before that its cost is Θ(λ)
/// uniforms per draw. The paper's rates (λ ≤ 50) stay on the exact branch,
/// keeping every historical stream byte-identical.
const POISSON_NORMAL_APPROX_MIN_LAMBDA: f64 = 256.0;

/// Samples `Poisson(lambda)`.
///
/// Moderate rates (λ ≲ 256, everything the paper configurations use) go
/// through Knuth's product-of-uniforms method exactly as before; for λ = 15
/// the expected number of uniforms drawn is 16. Larger rates — the
/// megascale benchmark drives batches of tens of thousands of jobs —
/// switch to the normal approximation `round(N(λ, λ))`, whose relative
/// error is `O(λ^-1/2)` and already below 1 % at the cut-over.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson rate must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda >= POISSON_NORMAL_APPROX_MIN_LAMBDA {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k: u64 = 0;
    let mut p: f64 = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples `Exp(rate)` (mean `1/rate`) by inverse CDF.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Descriptive statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, sd: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, sd: var.sqrt(), min, max }
    }

    /// Coefficient of variation `sd / mean`; 0 if the mean is 0.
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sd / self.mean
        }
    }
}

/// The `p`-th percentile (0 ≤ p ≤ 100) by linear interpolation between order
/// statistics. Panics on an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Sliding-window standard deviation of job sizes: `σ(i..i+x)` as used by
/// Algorithm 2 line 4. The window is clipped at the end of the slice.
pub fn window_stddev(sizes: &[f64], start: usize, width: usize) -> f64 {
    let end = (start + width).min(sizes.len());
    if start >= end {
        return 0.0;
    }
    Summary::of(&sizes[start..end]).sd
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 5.0).abs() < 0.05, "mean={}", s.mean);
        assert!((s.sd - 2.0).abs() < 0.05, "sd={}", s.sd);
    }

    #[test]
    fn poisson_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, 15.0) as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 15.0).abs() < 0.15, "mean={}", s.mean);
        // Poisson variance equals the mean.
        assert!((s.sd * s.sd - 15.0).abs() < 0.6, "var={}", s.sd * s.sd);
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_large_rate_moments() {
        // The normal-approximation branch: mean and variance still match
        // Poisson's, and it terminates where Knuth's method would loop
        // forever (exp(-λ) underflows near λ = 745).
        let mut r = rng();
        let lambda = 50_000.0;
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, lambda) as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - lambda).abs() < 0.01 * lambda, "mean={}", s.mean);
        assert!((s.sd * s.sd - lambda).abs() < 0.05 * lambda, "var={}", s.sd * s.sd);
        assert!(s.min >= 0.0);
    }

    #[test]
    fn poisson_branch_cutover_is_above_paper_rates() {
        // Every paper configuration (λ ≤ 50) must stay on the exact Knuth
        // branch so historical streams remain byte-identical.
        const { assert!(POISSON_NORMAL_APPROX_MIN_LAMBDA > 50.0) };
        // And the cut-over must sit safely below the exp(-λ) underflow.
        assert!((-POISSON_NORMAL_APPROX_MIN_LAMBDA).exp() > 0.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 2.0).abs() < 0.08, "mean={}", s.mean);
        assert!(s.min >= 0.0);
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| noise_factor(&mut r, 0.3)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.03, "median={median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cov() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert!((percentile(&xs, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn window_stddev_clips() {
        let xs = [1.0, 1.0, 1.0, 10.0];
        assert_eq!(window_stddev(&xs, 0, 3), 0.0);
        assert!(window_stddev(&xs, 1, 3) > 0.0);
        assert_eq!(window_stddev(&xs, 3, 5), 0.0); // single element
        assert_eq!(window_stddev(&xs, 9, 2), 0.0); // out of range
    }
}

//! Document feature vectors.
//!
//! Sec. III-A-1 lists the QRSM input dimensions: "document size, number of
//! images, the size of the images, number of images per page, resolution,
//! color and monochrome elements, image features, number of pages, ratio of
//! text to pages, coverage, specific job type". We model the subset that
//! drives processing time in our ground-truth law and expose the whole
//! vector to the QRSM so feature selection is exercised realistically.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::stats;

/// Bytes per megabyte as used throughout the workspace (decimal MB).
pub const BYTES_PER_MB: u64 = 1_000_000;

/// The production job classes of the paper's printing domain (Sec. I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobType {
    /// High page count, mostly monochrome text.
    Newspaper,
    /// Very high page count, low image density.
    Book,
    /// Low page count, image-heavy, full color.
    Marketing,
    /// Many small personalized pieces; moderate images.
    MailCampaign,
    /// Transactional documents (statements); text dominant.
    Statement,
    /// Image personalization; extreme image density.
    ImagePersonalization,
}

impl JobType {
    /// All job types, for sampling and enumeration.
    pub const ALL: [JobType; 6] = [
        JobType::Newspaper,
        JobType::Book,
        JobType::Marketing,
        JobType::MailCampaign,
        JobType::Statement,
        JobType::ImagePersonalization,
    ];

    /// Typical pages per megabyte for this class (before noise).
    fn pages_per_mb(self) -> f64 {
        match self {
            JobType::Newspaper => 1.2,
            JobType::Book => 2.5,
            JobType::Marketing => 0.25,
            JobType::MailCampaign => 0.8,
            JobType::Statement => 3.0,
            JobType::ImagePersonalization => 0.15,
        }
    }

    /// Typical images per page for this class (before noise).
    fn images_per_page(self) -> f64 {
        match self {
            JobType::Newspaper => 1.5,
            JobType::Book => 0.2,
            JobType::Marketing => 4.0,
            JobType::MailCampaign => 1.0,
            JobType::Statement => 0.1,
            JobType::ImagePersonalization => 6.0,
        }
    }

    /// Typical color fraction for this class.
    fn color_fraction(self) -> f64 {
        match self {
            JobType::Newspaper => 0.25,
            JobType::Book => 0.05,
            JobType::Marketing => 0.95,
            JobType::MailCampaign => 0.6,
            JobType::Statement => 0.15,
            JobType::ImagePersonalization => 1.0,
        }
    }

    /// A stable numeric encoding used as a QRSM feature.
    pub fn code(self) -> f64 {
        match self {
            JobType::Newspaper => 0.0,
            JobType::Book => 1.0,
            JobType::Marketing => 2.0,
            JobType::MailCampaign => 3.0,
            JobType::Statement => 4.0,
            JobType::ImagePersonalization => 5.0,
        }
    }
}

/// The observable features of a document job — everything a scheduler (and
/// the QRSM) may inspect *before* the job runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DocumentFeatures {
    /// Compressed input size in bytes (1 MB – 300 MB in the paper's domain).
    pub size_bytes: u64,
    /// Page count.
    pub pages: u32,
    /// Total number of raster images in the document.
    pub images: u32,
    /// Mean raster resolution in DPI.
    pub resolution_dpi: u32,
    /// Fraction of page area carrying color elements, in `[0, 1]`.
    pub color_fraction: f64,
    /// Ink/toner coverage fraction, in `[0, 1]`.
    pub coverage: f64,
    /// Ratio of text area to total page area, in `[0, 1]`.
    pub text_ratio: f64,
    /// Production job class.
    pub job_type: JobType,
}

impl DocumentFeatures {
    /// Input size in (decimal) megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / BYTES_PER_MB as f64
    }

    /// Images per page (0 if the document has no pages).
    pub fn images_per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.images as f64 / self.pages as f64
        }
    }

    /// The raw QRSM regressor vector for this document. Order is stable and
    /// documented: `[size_mb, pages, images, resolution/600, color, coverage]`.
    ///
    /// Resolution is scaled by a nominal 600 DPI so all regressors share a
    /// comparable magnitude, which conditions the normal equations.
    pub fn regressors(&self) -> Vec<f64> {
        self.regressors_arr().to_vec()
    }

    /// Stack-allocated regressor vector — the per-prediction hot path uses
    /// this to keep model evaluation heap-allocation-free.
    pub fn regressors_arr(&self) -> [f64; Self::N_REGRESSORS] {
        [
            self.size_mb(),
            self.pages as f64,
            self.images as f64,
            self.resolution_dpi as f64 / 600.0,
            self.color_fraction,
            self.coverage,
        ]
    }

    /// Number of entries returned by [`DocumentFeatures::regressors`].
    pub const N_REGRESSORS: usize = 6;

    /// Samples a document of the given size and class with correlated,
    /// noisy secondary features.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, size_bytes: u64, job_type: JobType) -> Self {
        let size_mb = size_bytes as f64 / BYTES_PER_MB as f64;
        let pages = (size_mb * job_type.pages_per_mb() * stats::noise_factor(rng, 0.25))
            .round()
            .max(1.0) as u32;
        let images = (pages as f64 * job_type.images_per_page() * stats::noise_factor(rng, 0.35))
            .round()
            .max(0.0) as u32;
        let resolution_dpi = *[300u32, 600, 600, 1200]
            .get(rng.gen_range(0..4))
            .expect("index in range");
        let color_fraction =
            (job_type.color_fraction() + stats::normal(rng, 0.0, 0.1)).clamp(0.0, 1.0);
        let coverage = rng.gen_range(0.2..0.9);
        let text_ratio = (1.0 - color_fraction * 0.6 + stats::normal(rng, 0.0, 0.08)).clamp(0.05, 1.0);
        DocumentFeatures {
            size_bytes,
            pages,
            images,
            resolution_dpi,
            color_fraction,
            coverage,
            text_ratio,
            job_type,
        }
    }

    /// Samples a uniformly random job class, then the document.
    pub fn sample_any_type<R: Rng + ?Sized>(rng: &mut R, size_bytes: u64) -> Self {
        let jt = JobType::ALL[rng.gen_range(0..JobType::ALL.len())];
        Self::sample(rng, size_bytes, jt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regressor_vector_is_stable() {
        let f = DocumentFeatures {
            size_bytes: 150 * BYTES_PER_MB,
            pages: 100,
            images: 40,
            resolution_dpi: 600,
            color_fraction: 0.5,
            coverage: 0.4,
            text_ratio: 0.7,
            job_type: JobType::Marketing,
        };
        let r = f.regressors();
        assert_eq!(r.len(), DocumentFeatures::N_REGRESSORS);
        assert_eq!(r, vec![150.0, 100.0, 40.0, 1.0, 0.5, 0.4]);
    }

    #[test]
    fn sampled_features_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let sz = rng.gen_range(BYTES_PER_MB..=300 * BYTES_PER_MB);
            let f = DocumentFeatures::sample_any_type(&mut rng, sz);
            assert_eq!(f.size_bytes, sz);
            assert!(f.pages >= 1);
            assert!((0.0..=1.0).contains(&f.color_fraction));
            assert!((0.0..=1.0).contains(&f.coverage));
            assert!((0.0..=1.0).contains(&f.text_ratio));
            assert!([300, 600, 1200].contains(&f.resolution_dpi));
        }
    }

    #[test]
    fn class_biases_show_up() {
        let mut rng = StdRng::seed_from_u64(2);
        let sz = 100 * BYTES_PER_MB;
        let n = 300;
        let mean_imgs = |jt: JobType, rng: &mut StdRng| -> f64 {
            (0..n)
                .map(|_| DocumentFeatures::sample(rng, sz, jt).images_per_page())
                .sum::<f64>()
                / n as f64
        };
        let marketing = mean_imgs(JobType::Marketing, &mut rng);
        let book = mean_imgs(JobType::Book, &mut rng);
        assert!(
            marketing > 4.0 * book,
            "marketing {marketing} should be image-dense vs book {book}"
        );
    }

    #[test]
    fn images_per_page_handles_zero_pages() {
        let f = DocumentFeatures {
            size_bytes: BYTES_PER_MB,
            pages: 0,
            images: 10,
            resolution_dpi: 600,
            color_fraction: 0.1,
            coverage: 0.3,
            text_ratio: 0.9,
            job_type: JobType::Statement,
        };
        assert_eq!(f.images_per_page(), 0.0);
    }
}

//! `cloudburst-workload` — synthetic document-processing workload generation.
//!
//! The paper evaluates its schedulers on proprietary production documents
//! (newspapers, books, mail campaigns, …) varying from 1 MB to 300 MB. This
//! crate is the substitution substrate (see DESIGN.md §2): it generates
//! synthetic documents whose *feature distributions* match what the paper
//! reports — three size buckets (small-biased, uniform, large-biased),
//! Poisson batch arrivals (λ = 15 per batch, one batch every 3 minutes), and
//! a quadratic ground-truth processing-time law with heavy-tailed noise so
//! that the learned QRSM has realistic, non-zero estimation error.
//!
//! Modules:
//!
//! * [`document`] — document feature vectors and job types.
//! * [`truth`] — the ground-truth processing-time law (what the simulated
//!   machines actually take; schedulers never see this directly).
//! * [`job`] — the `Job` record flowing through queues and schedulers.
//! * [`bucket`] — the three job-size distributions of Sec. V-A.
//! * [`arrival`] — the Poisson batch arrival process.
//! * [`open`] — the open-system (unbounded, lazily generated) variant with
//!   diurnal rate envelope and flash-crowd bursts.
//! * [`chunk`] — `pdfchunk` splitting used by the Order-Preserving scheduler
//!   (Algorithm 2, lines 3–10).
//! * [`stats`] — dependency-free samplers (normal, lognormal, Poisson,
//!   exponential) and descriptive statistics (mean, CoV, percentiles).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod arrival;
pub mod bucket;
pub mod chunk;
pub mod document;
pub mod job;
pub mod open;
pub mod stats;
pub mod trace;
pub mod truth;

pub use arrival::{ArrivalConfig, Batch, BatchArrivals};
pub use open::{BurstModel, OpenArrivalConfig, OpenArrivals, RateEnvelope};
pub use bucket::SizeBucket;
pub use trace::WorkloadTrace;
pub use chunk::{chunk_job, ChunkPolicy};
pub use document::{DocumentFeatures, JobType};
pub use job::{Job, JobId};
pub use truth::GroundTruth;

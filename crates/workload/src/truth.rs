//! Ground-truth processing-time law.
//!
//! The simulated machines take *this* long; schedulers only ever see QRSM
//! *estimates* of it. The deterministic part is a quadratic polynomial over
//! the document regressors — deliberately the same functional family the
//! QRSM fits (Sec. III-A-1), so a well-trained model is accurate but the
//! multiplicative lognormal noise keeps estimation errors realistic
//! ("the current QRSM model occasionally overestimates the execution time",
//! Sec. IV-D).
//!
//! Calibration (DESIGN.md §2): on a standard machine a mid-size 150 MB job
//! takes ≈ 9–10 min and a 300 MB job ≈ 20 min, so that at the paper's
//! ≈ 250 KB/s average pipe the transfer time of a job is of the same order
//! as its processing time — the regime the paper targets.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::document::DocumentFeatures;
use crate::stats;

/// The ground-truth service-time model for a *standard machine* (speed 1.0).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Constant overhead per job, seconds (spool, parse, merge).
    pub base_secs: f64,
    /// Seconds per MB of input.
    pub per_mb: f64,
    /// Seconds per page.
    pub per_page: f64,
    /// Seconds per image.
    pub per_image: f64,
    /// Quadratic term on size (raster working set grows superlinearly).
    pub per_mb2: f64,
    /// Interaction: color pages at high resolution cost extra per MB.
    pub color_res_per_mb: f64,
    /// Log-space σ of multiplicative noise.
    pub noise_sigma: f64,
    /// Per-job-class multiplier on the whole deterministic part, indexed by
    /// [`crate::document::JobType::code`]. All ones by default
    /// (class-independent law); the
    /// multi-class experiments use [`GroundTruth::class_varied`].
    pub class_factors: [f64; 6],
}

impl Default for GroundTruth {
    fn default() -> Self {
        GroundTruth {
            base_secs: 20.0,
            per_mb: 2.2,
            per_page: 0.35,
            per_image: 0.8,
            per_mb2: 0.004,
            color_res_per_mb: 0.5,
            noise_sigma: 0.12,
            class_factors: [1.0; 6],
        }
    }
}

impl GroundTruth {
    /// A noise-free variant, useful for tests that need exact QRSM recovery.
    pub fn noiseless() -> Self {
        GroundTruth { noise_sigma: 0.0, ..GroundTruth::default() }
    }

    /// A variant where each job class runs a genuinely different pipeline
    /// (e.g. image personalization is far heavier per byte than statement
    /// rendering). A single pooled QRSM cannot separate these — the class
    /// is not among its regressors — which is exactly what the per-class
    /// model extension addresses.
    pub fn class_varied() -> Self {
        GroundTruth {
            // Newspaper, Book, Marketing, MailCampaign, Statement, ImagePers.
            class_factors: [1.0, 0.8, 1.5, 1.0, 0.7, 1.9],
            ..GroundTruth::default()
        }
    }

    /// The deterministic (expected-log) part of the service time in seconds
    /// on a standard machine.
    pub fn mean_secs(&self, f: &DocumentFeatures) -> f64 {
        let s = f.size_mb();
        let res = f.resolution_dpi as f64 / 600.0;
        let base = self.base_secs
            + self.per_mb * s
            + self.per_page * f.pages as f64
            + self.per_image * f.images as f64
            + self.per_mb2 * s * s
            + self.color_res_per_mb * s * f.color_fraction * res;
        base * self.class_factors[f.job_type.code() as usize]
    }

    /// Samples the actual service time for one execution of the job on a
    /// standard machine: `mean_secs × exp(N(0, σ²))`.
    pub fn sample_secs<R: Rng + ?Sized>(&self, rng: &mut R, f: &DocumentFeatures) -> f64 {
        self.mean_secs(f) * stats::noise_factor(rng, self.noise_sigma)
    }

    /// Output (result) size in bytes: compressed render output, roughly half
    /// the input with ±30 % spread. Always at least 1 byte so downloads are
    /// never free.
    pub fn sample_output_bytes<R: Rng + ?Sized>(&self, rng: &mut R, f: &DocumentFeatures) -> u64 {
        let ratio: f64 = rng.gen_range(0.35..0.65);
        ((f.size_bytes as f64 * ratio) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{JobType, BYTES_PER_MB};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn doc(size_mb: u64) -> DocumentFeatures {
        DocumentFeatures {
            size_bytes: size_mb * BYTES_PER_MB,
            pages: (size_mb as f64 * 1.2) as u32,
            images: (size_mb as f64 * 0.5) as u32,
            resolution_dpi: 600,
            color_fraction: 0.5,
            coverage: 0.5,
            text_ratio: 0.5,
            job_type: JobType::Newspaper,
        }
    }

    #[test]
    fn calibration_matches_design_targets() {
        let gt = GroundTruth::default();
        let t150 = gt.mean_secs(&doc(150));
        let t300 = gt.mean_secs(&doc(300));
        // 150 MB ≈ 8–12 min; 300 MB ≈ 16–26 min on a standard machine.
        assert!((480.0..=720.0).contains(&t150), "t150={t150}");
        assert!((960.0..=1560.0).contains(&t300), "t300={t300}");
    }

    #[test]
    fn time_is_monotone_in_size() {
        let gt = GroundTruth::default();
        let mut prev = 0.0;
        for mb in [1u64, 10, 50, 100, 200, 300] {
            let t = gt.mean_secs(&doc(mb));
            assert!(t > prev, "mean_secs must grow with size");
            prev = t;
        }
    }

    #[test]
    fn noise_is_multiplicative_and_median_one() {
        let gt = GroundTruth::default();
        let d = doc(100);
        let mean = gt.mean_secs(&d);
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..4001).map(|_| gt.sample_secs(&mut rng, &d)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / mean - 1.0).abs() < 0.05, "median/mean = {}", median / mean);
        assert!(samples.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn noiseless_is_exact() {
        let gt = GroundTruth::noiseless();
        let d = doc(42);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gt.sample_secs(&mut rng, &d), gt.mean_secs(&d));
    }

    #[test]
    fn output_size_is_compressed_fraction() {
        let gt = GroundTruth::default();
        let d = doc(100);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let o = gt.sample_output_bytes(&mut rng, &d);
            assert!(o >= (d.size_bytes as f64 * 0.34) as u64);
            assert!(o <= (d.size_bytes as f64 * 0.66) as u64);
        }
    }
}

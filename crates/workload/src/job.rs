//! The job record flowing through queues, schedulers and clouds.

use serde::{Deserialize, Serialize};

use cloudburst_sim::SimTime;

use crate::document::DocumentFeatures;

/// Queue-order job identifier.
///
/// Ids are assigned in FCFS queue order (after any chunk insertion, see
/// Algorithm 2), so the Out-of-Order metric of Sec. II-B can compare
/// completion order against id order directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// Raw index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A unit of work. Ground-truth fields (`true_service_secs`,
/// `output_bytes`) are *hidden* from schedulers — they must work from QRSM
/// and bandwidth estimates; the simulation engine uses the truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Job {
    /// FCFS queue-order id (unique within a run).
    pub id: JobId,
    /// Index of the batch this job arrived in.
    pub batch: u32,
    /// Arrival instant at the internal cloud's job queue.
    pub arrival: SimTime,
    /// Observable document features (scheduler-visible).
    pub features: DocumentFeatures,
    /// Ground truth: service time on a standard (speed 1.0) machine, seconds.
    pub true_service_secs: f64,
    /// Ground truth: result size in bytes (download leg of a bursted job).
    pub output_bytes: u64,
    /// If this job is a chunk produced by `pdfchunk`, the id of the original
    /// job it was split from.
    pub parent: Option<JobId>,
}

impl Job {
    /// Input size in bytes (upload leg of a bursted job).
    pub fn input_bytes(&self) -> u64 {
        self.features.size_bytes
    }

    /// Input size in MB.
    pub fn size_mb(&self) -> f64 {
        self.features.size_mb()
    }

    /// True iff this job is a chunk of a split parent.
    pub fn is_chunk(&self) -> bool {
        self.parent.is_some()
    }

    /// Returns a copy with a different id (used when the engine re-indexes
    /// the queue after chunk insertion).
    pub fn with_id(&self, id: JobId) -> Job {
        Job { id, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{JobType, BYTES_PER_MB};

    fn job(id: u64, size_mb: u64) -> Job {
        Job {
            id: JobId(id),
            batch: 0,
            arrival: SimTime::ZERO,
            features: DocumentFeatures {
                size_bytes: size_mb * BYTES_PER_MB,
                pages: 10,
                images: 5,
                resolution_dpi: 600,
                color_fraction: 0.5,
                coverage: 0.5,
                text_ratio: 0.5,
                job_type: JobType::Book,
            },
            true_service_secs: 100.0,
            output_bytes: size_mb * BYTES_PER_MB / 2,
            parent: None,
        }
    }

    #[test]
    fn id_ordering_follows_queue_order() {
        assert!(JobId(3) < JobId(10));
        assert_eq!(JobId(7).index(), 7);
        assert_eq!(format!("{}", JobId(4)), "j4");
    }

    #[test]
    fn accessors() {
        let j = job(1, 50);
        assert_eq!(j.input_bytes(), 50 * BYTES_PER_MB);
        assert!((j.size_mb() - 50.0).abs() < 1e-12);
        assert!(!j.is_chunk());
        let c = Job { parent: Some(JobId(1)), ..j.clone() };
        assert!(c.is_chunk());
    }

    #[test]
    fn with_id_reassigns_only_the_id() {
        let j = job(1, 50);
        let k = j.with_id(JobId(9));
        assert_eq!(k.id, JobId(9));
        assert_eq!(k.input_bytes(), j.input_bytes());
        assert_eq!(k.true_service_secs, j.true_service_secs);
    }
}

//! `pdfchunk` — job splitting for the Order-Preserving scheduler.
//!
//! Algorithm 2 (lines 3–10) reduces job-size variance by splitting a large
//! job into smaller chunks when the sliding-window size deviation
//! `σ(i..i+x)` exceeds a threshold. Chunks are inserted back into the queue
//! at the parent's position, so they inherit its chronological priority; the
//! Out-of-Order accounting treats the parent as complete when its last chunk
//! completes.
//!
//! Documents are embarrassingly parallel (Sec. III-B), so a chunk's service
//! time is the parent's pro-rata share plus a fixed per-chunk overhead
//! (spool + merge cost — chunking is not free, which is why the policy only
//! fires on high variance).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::document::DocumentFeatures;
use crate::job::Job;
use crate::stats;

/// Tunables for Algorithm 2's chunking step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChunkPolicy {
    /// Sliding window width `x` over which σ is computed (line 4).
    pub window: usize,
    /// Threshold `th` on the window size-stddev, in MB (line 5).
    pub sigma_threshold_mb: f64,
    /// Target chunk size in MB; a job is split into
    /// `ceil(size / target)` chunks.
    pub target_chunk_mb: f64,
    /// Never produce chunks smaller than this (MB); guards against
    /// pathological over-splitting.
    pub min_chunk_mb: f64,
    /// Fixed per-chunk service overhead in seconds (split + merge cost).
    pub per_chunk_overhead_secs: f64,
    /// Non-uniform chunking (Sec. VII future work): the effective target
    /// chunk size at queue-position fraction `p ∈ [0, 1]` is
    /// `target · (1 + γ·p)`. With `γ > 0`, head-of-queue jobs split finer
    /// (their output is needed first — small chunks keep the order intact)
    /// while tail jobs split coarser (they have slack anyway, so why pay
    /// the per-chunk overhead). `γ = 0` (default) is the paper's uniform
    /// chunking.
    pub position_gamma: f64,
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy {
            window: 5,
            sigma_threshold_mb: 60.0,
            target_chunk_mb: 80.0,
            min_chunk_mb: 10.0,
            per_chunk_overhead_secs: 8.0,
            position_gamma: 0.0,
        }
    }
}

impl ChunkPolicy {
    /// Effective target chunk size (MB) for a job at queue-position
    /// fraction `p ∈ [0, 1]` (0 = head).
    pub fn target_at(&self, pos_frac: f64) -> f64 {
        let p = pos_frac.clamp(0.0, 1.0);
        (self.target_chunk_mb * (1.0 + self.position_gamma * p)).max(self.min_chunk_mb)
    }

    /// Number of chunks this policy splits a job of `size_mb` into (≥ 1),
    /// for a job at the queue head.
    pub fn n_chunks(&self, size_mb: f64) -> usize {
        self.n_chunks_at(size_mb, 0.0)
    }

    /// As [`ChunkPolicy::n_chunks`], at queue-position fraction `pos_frac`.
    pub fn n_chunks_at(&self, size_mb: f64, pos_frac: f64) -> usize {
        let n = (size_mb / self.target_at(pos_frac)).ceil() as usize;
        n.max(1)
    }

    /// Whether the window deviation triggers chunking for the job at the
    /// window head (Algorithm 2 line 5), i.e. `σ > th` *and* splitting would
    /// actually produce more than one chunk.
    pub fn should_chunk(&self, window_sigma_mb: f64, size_mb: f64) -> bool {
        self.should_chunk_at(window_sigma_mb, size_mb, 0.0)
    }

    /// As [`ChunkPolicy::should_chunk`], at queue-position fraction
    /// `pos_frac`.
    pub fn should_chunk_at(&self, window_sigma_mb: f64, size_mb: f64, pos_frac: f64) -> bool {
        window_sigma_mb > self.sigma_threshold_mb && self.n_chunks_at(size_mb, pos_frac) > 1
    }
}

/// Splits `job` into chunks per `policy`. Returns the chunk jobs in order;
/// if the job is too small to split, returns a single-element vector with a
/// clone of the job (no overhead added).
///
/// Invariants (property-tested):
/// * chunk input sizes sum exactly to the parent's input size;
/// * chunk output sizes sum exactly to the parent's output size;
/// * every chunk records `parent == Some(job.id)` (when actually split);
/// * total chunk service time ≈ parent service time + n × overhead
///   (modulo per-chunk noise).
pub fn chunk_job<R: Rng + ?Sized>(job: &Job, policy: &ChunkPolicy, rng: &mut R) -> Vec<Job> {
    chunk_job_at(job, policy, 0.0, rng)
}

/// As [`chunk_job`], for a job at queue-position fraction `pos_frac` —
/// the non-uniform chunking extension (larger `pos_frac` ⇒ coarser chunks
/// when the policy's `position_gamma` is positive).
pub fn chunk_job_at<R: Rng + ?Sized>(
    job: &Job,
    policy: &ChunkPolicy,
    pos_frac: f64,
    rng: &mut R,
) -> Vec<Job> {
    let n = policy.n_chunks_at(job.size_mb(), pos_frac);
    if n <= 1 {
        return vec![job.clone()];
    }
    let n64 = n as u64;
    let in_base = job.features.size_bytes / n64;
    let in_rem = job.features.size_bytes % n64;
    let out_base = job.output_bytes / n64;
    let out_rem = job.output_bytes % n64;
    let pages_base = job.features.pages / n as u32;
    let pages_rem = job.features.pages % n as u32;
    let images_base = job.features.images / n as u32;
    let images_rem = job.features.images % n as u32;

    (0..n)
        .map(|k| {
            let k64 = k as u64;
            let in_bytes = in_base + u64::from(k64 < in_rem);
            let out_bytes = out_base + u64::from(k64 < out_rem);
            let pages = pages_base + u32::from((k as u32) < pages_rem);
            let images = images_base + u32::from((k as u32) < images_rem);
            let share = in_bytes as f64 / job.features.size_bytes as f64;
            // Pro-rata share of the parent's true service time plus the
            // fixed split/merge overhead, with mild noise on the overhead.
            let service = job.true_service_secs * share
                + policy.per_chunk_overhead_secs * stats::noise_factor(rng, 0.10);
            Job {
                id: job.id, // provisional; the engine re-indexes on insert
                batch: job.batch,
                arrival: job.arrival,
                features: DocumentFeatures { size_bytes: in_bytes, pages, images, ..job.features },
                true_service_secs: service,
                output_bytes: out_bytes,
                parent: Some(job.id),
            }
        })
        .collect()
}

/// Applies Algorithm 2 lines 3–10 to a whole batch: walks the job list with
/// the sliding σ-window and replaces each triggering job with its chunks.
/// Returns the expanded list (provisional ids preserved; callers re-index).
pub fn chunk_batch<R: Rng + ?Sized>(jobs: &[Job], policy: &ChunkPolicy, rng: &mut R) -> Vec<Job> {
    let mut list: Vec<Job> = jobs.to_vec();
    let mut i = 0;
    while i < list.len() {
        let sizes: Vec<f64> = list.iter().map(|j| j.size_mb()).collect();
        let sigma = stats::window_stddev(&sizes, i, policy.window);
        if policy.should_chunk(sigma, list[i].size_mb()) {
            let chunks = chunk_job(&list[i], policy, rng);
            let added = chunks.len();
            list.splice(i..=i, chunks);
            // Skip past the inserted chunks: they are already ≤ target size,
            // re-examining them cannot trigger another split.
            i += added;
        } else {
            i += 1;
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{JobType, BYTES_PER_MB};
    use crate::job::JobId;
    use cloudburst_sim::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job(id: u64, size_mb: u64) -> Job {
        Job {
            id: JobId(id),
            batch: 0,
            arrival: SimTime::ZERO,
            features: DocumentFeatures {
                size_bytes: size_mb * BYTES_PER_MB,
                pages: 97,
                images: 31,
                resolution_dpi: 600,
                color_fraction: 0.5,
                coverage: 0.5,
                text_ratio: 0.5,
                job_type: JobType::Marketing,
            },
            true_service_secs: 600.0,
            output_bytes: size_mb * BYTES_PER_MB / 2 + 7,
            parent: None,
        }
    }

    #[test]
    fn small_jobs_pass_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let j = job(0, 40);
        let out = chunk_job(&j, &ChunkPolicy::default(), &mut rng);
        assert_eq!(out.len(), 1);
        assert!(out[0].parent.is_none());
        assert_eq!(out[0].true_service_secs, j.true_service_secs);
    }

    #[test]
    fn split_conserves_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        let j = job(3, 295);
        let chunks = chunk_job(&j, &ChunkPolicy::default(), &mut rng);
        assert_eq!(chunks.len(), 4, "ceil(295/80) = 4");
        assert_eq!(chunks.iter().map(|c| c.features.size_bytes).sum::<u64>(), j.features.size_bytes);
        assert_eq!(chunks.iter().map(|c| c.output_bytes).sum::<u64>(), j.output_bytes);
        assert_eq!(chunks.iter().map(|c| c.features.pages).sum::<u32>(), j.features.pages);
        assert_eq!(chunks.iter().map(|c| c.features.images).sum::<u32>(), j.features.images);
        for c in &chunks {
            assert_eq!(c.parent, Some(JobId(3)));
            assert_eq!(c.arrival, j.arrival);
            assert_eq!(c.batch, j.batch);
        }
    }

    #[test]
    fn split_service_time_is_pro_rata_plus_overhead() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = ChunkPolicy::default();
        let j = job(0, 240);
        let chunks = chunk_job(&j, &policy, &mut rng);
        let total: f64 = chunks.iter().map(|c| c.true_service_secs).sum();
        let expected = j.true_service_secs + chunks.len() as f64 * policy.per_chunk_overhead_secs;
        assert!((total - expected).abs() < expected * 0.1, "total={total} expected≈{expected}");
    }

    #[test]
    fn should_chunk_requires_both_conditions() {
        let p = ChunkPolicy::default();
        assert!(p.should_chunk(100.0, 200.0));
        assert!(!p.should_chunk(10.0, 200.0), "low variance: no chunking");
        assert!(!p.should_chunk(100.0, 20.0), "small job: nothing to split");
    }

    #[test]
    fn chunk_batch_expands_only_under_high_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ChunkPolicy::default();
        // Homogeneous batch: low σ, nothing chunks.
        let homo: Vec<Job> = (0..6).map(|i| job(i, 100)).collect();
        assert_eq!(chunk_batch(&homo, &p, &mut rng).len(), 6);
        // Mixed batch: 290 MB next to 5 MB jobs triggers chunking.
        let mixed = vec![job(0, 5), job(1, 290), job(2, 8), job(3, 290), job(4, 5)];
        let out = chunk_batch(&mixed, &p, &mut rng);
        assert!(out.len() > mixed.len(), "large jobs should have been split");
        assert_eq!(
            out.iter().map(|c| c.features.size_bytes).sum::<u64>(),
            mixed.iter().map(|c| c.features.size_bytes).sum::<u64>()
        );
    }

    #[test]
    fn chunk_batch_preserves_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ChunkPolicy::default();
        let mixed = vec![job(0, 5), job(1, 290), job(2, 8)];
        let out = chunk_batch(&mixed, &p, &mut rng);
        // Prefix before the split job, then its chunks, then the suffix.
        assert_eq!(out[0].id, JobId(0));
        assert!(out[1..out.len() - 1].iter().all(|c| c.parent == Some(JobId(1))));
        assert_eq!(out.last().unwrap().id, JobId(2));
    }

    #[test]
    fn position_gamma_coarsens_tail_chunks() {
        let p = ChunkPolicy { position_gamma: 2.0, ..ChunkPolicy::default() };
        // Head: target 80 MB → 290 MB splits into 4.
        assert_eq!(p.n_chunks_at(290.0, 0.0), 4);
        // Tail: target 80·(1+2) = 240 MB → 2 chunks.
        assert_eq!(p.n_chunks_at(290.0, 1.0), 2);
        // γ = 0 keeps chunking uniform.
        let u = ChunkPolicy::default();
        assert_eq!(u.n_chunks_at(290.0, 0.0), u.n_chunks_at(290.0, 1.0));
        // Position fraction is clamped.
        assert_eq!(p.n_chunks_at(290.0, 7.0), p.n_chunks_at(290.0, 1.0));
    }

    #[test]
    fn chunk_job_at_respects_position() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = ChunkPolicy { position_gamma: 2.0, ..ChunkPolicy::default() };
        let j = job(0, 290);
        let head = chunk_job_at(&j, &p, 0.0, &mut rng);
        let tail = chunk_job_at(&j, &p, 1.0, &mut rng);
        assert!(head.len() > tail.len(), "{} vs {}", head.len(), tail.len());
        assert_eq!(
            tail.iter().map(|c| c.features.size_bytes).sum::<u64>(),
            j.features.size_bytes
        );
    }

    #[test]
    fn n_chunks_monotone_in_size() {
        let p = ChunkPolicy::default();
        assert_eq!(p.n_chunks(10.0), 1);
        assert_eq!(p.n_chunks(80.0), 1);
        assert_eq!(p.n_chunks(81.0), 2);
        assert_eq!(p.n_chunks(300.0), 4);
    }
}

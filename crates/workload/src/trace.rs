//! Workload traces: save a generated arrival schedule to JSON and replay
//! it later — so a workload can be shared, archived, or replayed against
//! different schedulers and network conditions without regeneration. A
//! trace created from production logs (arrival times, document features,
//! observed service times) drops into the same format.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::arrival::Batch;

/// Format version written into every trace file.
pub const TRACE_VERSION: u32 = 1;

/// A serializable workload trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Format version (see [`TRACE_VERSION`]).
    pub version: u32,
    /// Free-form provenance note (generator seed, source system, …).
    pub note: String,
    /// The batches, in arrival order.
    pub batches: Vec<Batch>,
}

impl WorkloadTrace {
    /// Wraps batches into a trace with a provenance note.
    pub fn new(note: impl Into<String>, batches: Vec<Batch>) -> WorkloadTrace {
        WorkloadTrace { version: TRACE_VERSION, note: note.into(), batches }
    }

    /// Total job count across batches.
    pub fn n_jobs(&self) -> usize {
        self.batches.iter().map(|b| b.jobs.len()).sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parses a trace, validating the version and basic integrity
    /// (batches in arrival order, job ids unique).
    pub fn from_json(text: &str) -> Result<WorkloadTrace, TraceError> {
        let trace: WorkloadTrace = serde_json::from_str(text).map_err(TraceError::Parse)?;
        if trace.version != TRACE_VERSION {
            return Err(TraceError::Version(trace.version));
        }
        let mut last_arrival = None;
        let mut ids = std::collections::BTreeSet::new();
        for b in &trace.batches {
            if let Some(prev) = last_arrival {
                if b.arrival < prev {
                    return Err(TraceError::Integrity("batches out of arrival order"));
                }
            }
            last_arrival = Some(b.arrival);
            for j in &b.jobs {
                if !ids.insert(j.id) {
                    return Err(TraceError::Integrity("duplicate job id"));
                }
                if j.arrival != b.arrival {
                    return Err(TraceError::Integrity("job arrival differs from its batch"));
                }
            }
        }
        Ok(trace)
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a trace from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<WorkloadTrace, TraceError> {
        let text = std::fs::read_to_string(path).map_err(TraceError::Io)?;
        WorkloadTrace::from_json(&text)
    }
}

/// Errors from trace loading.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(io::Error),
    /// The JSON did not parse into a trace.
    Parse(serde_json::Error),
    /// Unknown format version.
    Version(u32),
    /// The trace violates a structural invariant.
    Integrity(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Parse(e) => write!(f, "trace parse error: {e}"),
            TraceError::Version(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Integrity(m) => write!(f, "trace integrity error: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalConfig, BatchArrivals};
    use crate::truth::GroundTruth;
    use cloudburst_sim::RngFactory;

    fn batches() -> Vec<Batch> {
        BatchArrivals::new(ArrivalConfig { n_batches: 3, ..ArrivalConfig::default() })
            .generate(&RngFactory::new(5), &GroundTruth::default())
    }

    #[test]
    fn round_trips_through_json() {
        let trace = WorkloadTrace::new("seed 5", batches());
        let back = WorkloadTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back.n_jobs(), trace.n_jobs());
        assert_eq!(back.note, "seed 5");
        for (a, b) in trace.batches.iter().zip(&back.batches) {
            assert_eq!(a.arrival, b.arrival);
            for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(ja.id, jb.id);
                // JSON round-trips f64 to within one ulp of the printed form.
                assert!((ja.true_service_secs - jb.true_service_secs).abs() < 1e-9);
                assert_eq!(ja.features.size_bytes, jb.features.size_bytes);
            }
        }
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("cloudburst-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let trace = WorkloadTrace::new("file test", batches());
        trace.save(&path).unwrap();
        let back = WorkloadTrace::load(&path).unwrap();
        assert_eq!(back.n_jobs(), trace.n_jobs());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_versions_and_broken_traces() {
        let mut trace = WorkloadTrace::new("x", batches());
        trace.version = 99;
        assert!(matches!(
            WorkloadTrace::from_json(&trace.to_json()),
            Err(TraceError::Version(99))
        ));

        let mut dup = WorkloadTrace::new("x", batches());
        let j = dup.batches[0].jobs[0].clone();
        dup.batches[0].jobs.push(j); // duplicate id
        assert!(matches!(
            WorkloadTrace::from_json(&dup.to_json()),
            Err(TraceError::Integrity("duplicate job id"))
        ));

        let mut unordered = WorkloadTrace::new("x", batches());
        unordered.batches.swap(0, 2);
        assert!(matches!(
            WorkloadTrace::from_json(&unordered.to_json()),
            Err(TraceError::Integrity(_))
        ));

        assert!(matches!(WorkloadTrace::from_json("not json"), Err(TraceError::Parse(_))));
    }
}

//! Open-system arrival process: an unbounded, seeded stream of job batches.
//!
//! The closed-batch process in [`crate::arrival`] materializes every batch
//! of a run up front; this module generates the same kind of batches *lazily*
//! — one epoch at a time, on demand — so a serving engine can run
//! indefinitely while only the live epoch exists in memory. The per-epoch
//! Poisson mean is modulated by a time-of-day **rate envelope** (reusing the
//! net layer's deterministic diurnal/trace/jitter machinery,
//! [`BandwidthModel`]) and optionally by a heavy-tailed **flash-crowd
//! multiplier**, capturing the transient, bursty, time-varying load the
//! cloud-bursting literature motivates.
//!
//! Determinism: all randomness flows from the same four `workload/*` RNG
//! streams the closed generator uses, consumed in epoch order. With a
//! [`RateEnvelope::Flat`] envelope and no burst model, the stream is
//! **draw-for-draw identical** to [`crate::arrival::BatchArrivals`] — the
//! closed-vs-open equivalence goldens rest on exactly this property.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use cloudburst_net::BandwidthModel;
use cloudburst_sim::{RngFactory, SimDuration, SimTime};

use crate::arrival::{ArrivalConfig, Batch};
use crate::bucket::SizeBucket;
use crate::document::DocumentFeatures;
use crate::job::{Job, JobId};
use crate::stats;
use crate::truth::GroundTruth;

/// Nominal base rate handed to the reused [`BandwidthModel`] so its
/// absolute floor (`rate_bps` never returns below 1.0 bytes/sec) is nine
/// orders of magnitude below the envelope's working range and can never
/// distort a factor.
const ENVELOPE_SCALE: f64 = 1.0e9;

/// Dimensionless time-of-day modulation of the arrival rate.
///
/// The non-flat variant wraps a net-layer [`BandwidthModel`] — the same
/// deterministic diurnal sinusoid / hourly table / trace / jitter machinery
/// that shapes link capacity — and normalizes it by `scale` into a unitless
/// factor, so workload and network share one notion of "time of day".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RateEnvelope {
    /// No modulation: factor ≡ 1.
    Flat,
    /// `factor(t) = model.rate_bps(t) / scale`.
    Profile {
        /// The reused time-of-day model.
        model: BandwidthModel,
        /// Normalization divisor mapping the model's rate to a factor.
        scale: f64,
    },
}

impl RateEnvelope {
    /// A diurnal envelope: factor swings `1 ± swing` across the virtual
    /// day (floored at 5 % of baseline by the underlying model), with the
    /// upward zero-crossing at `phase_secs`.
    pub fn diurnal(swing: f64, phase_secs: f64) -> RateEnvelope {
        assert!((0.0..=1.0).contains(&swing), "swing must be in [0, 1]");
        RateEnvelope::Profile {
            model: BandwidthModel::Diurnal {
                base: ENVELOPE_SCALE,
                amplitude: swing * ENVELOPE_SCALE,
                phase_secs,
            },
            scale: ENVELOPE_SCALE,
        }
    }

    /// The modulation factor at virtual time `t`.
    pub fn factor(&self, t: SimTime) -> f64 {
        match self {
            RateEnvelope::Flat => 1.0,
            RateEnvelope::Profile { model, scale } => model.rate_bps(t) / scale,
        }
    }
}

/// Heavy-tailed flash-crowd modulation: with probability `epoch_prob` an
/// epoch's rate is multiplied by a capped Pareto(`alpha`) factor ≥ 1 —
/// rare but violent demand spikes on top of the smooth envelope.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BurstModel {
    /// Probability that a given epoch is a flash-crowd epoch.
    pub epoch_prob: f64,
    /// Pareto tail index of the multiplier (> 1 keeps the mean finite).
    pub alpha: f64,
    /// Cap on the multiplier, bounding worst-case epoch size.
    pub max_factor: f64,
}

impl BurstModel {
    /// A moderate preset: 5 % of epochs spike, Pareto(1.5) tail capped at 8×.
    pub fn flash_crowds() -> BurstModel {
        BurstModel { epoch_prob: 0.05, alpha: 1.5, max_factor: 8.0 }
    }

    /// Draws this epoch's multiplier (two uniforms from `rng`: gate, tail).
    fn sample_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let gate: f64 = rng.gen();
        // Tail uniform is drawn unconditionally so the stream position
        // after an epoch does not depend on whether the gate opened.
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]: finite power
        if gate >= self.epoch_prob {
            return 1.0;
        }
        u.powf(-1.0 / self.alpha).min(self.max_factor)
    }
}

/// Configuration of the open arrival process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpenArrivalConfig {
    /// Epoch length — one batch is released per epoch (closed mode's
    /// `batch_interval`).
    pub epoch: SimDuration,
    /// Baseline Poisson mean per epoch before modulation.
    pub jobs_per_epoch: f64,
    /// Job-size distribution.
    pub bucket: SizeBucket,
    /// Time-of-day rate modulation.
    pub envelope: RateEnvelope,
    /// Optional heavy-tail flash-crowd modulation.
    pub burst: Option<BurstModel>,
}

impl Default for OpenArrivalConfig {
    fn default() -> Self {
        OpenArrivalConfig {
            epoch: SimDuration::from_mins(3),
            jobs_per_epoch: 15.0,
            bucket: SizeBucket::Uniform,
            envelope: RateEnvelope::Flat,
            burst: None,
        }
    }
}

impl OpenArrivalConfig {
    /// The serving-mode workload of EXPERIMENTS.md: diurnal ±80 % swing
    /// plus flash crowds — the "wildly fluctuating, periodical" demand the
    /// paper describes (Sec. I), run as an unbounded stream.
    pub fn diurnal_service() -> OpenArrivalConfig {
        OpenArrivalConfig {
            envelope: RateEnvelope::diurnal(0.8, 0.0),
            burst: Some(BurstModel::flash_crowds()),
            ..OpenArrivalConfig::default()
        }
    }

    /// The open config whose stream is draw-for-draw identical to the given
    /// closed config's: same epoch spacing, baseline rate and bucket, flat
    /// envelope, no bursts. A seasonal `rate_profile` is folded in via the
    /// envelope-free path (`rate_for_batch`) by the generator, so closed
    /// configs with profiles are equivalent too.
    pub fn matching_closed(closed: &ArrivalConfig) -> OpenArrivalConfig {
        OpenArrivalConfig {
            epoch: closed.batch_interval,
            jobs_per_epoch: closed.jobs_per_batch,
            bucket: closed.bucket,
            envelope: RateEnvelope::Flat,
            burst: None,
        }
    }

    /// The envelope-modulated mean rate (jobs per epoch) at time `t`,
    /// before any flash-crowd multiplier.
    pub fn mean_rate_at(&self, t: SimTime) -> f64 {
        self.jobs_per_epoch * self.envelope.factor(t)
    }
}

/// Lazy, unbounded batch generator: call [`OpenArrivals::next_batch`] once
/// per epoch. Holds only the RNG stream cursors and counters — state is
/// O(1) in the number of epochs generated.
#[derive(Clone, Debug)]
pub struct OpenArrivals {
    config: OpenArrivalConfig,
    truth: GroundTruth,
    size_rng: StdRng,
    feat_rng: StdRng,
    count_rng: StdRng,
    truth_rng: StdRng,
    next_epoch: u64,
    jobs_generated: u64,
}

impl OpenArrivals {
    /// Creates a generator seeded from the same `workload/*` streams the
    /// closed generator uses.
    pub fn new(config: OpenArrivalConfig, rngs: &RngFactory, truth: GroundTruth) -> OpenArrivals {
        OpenArrivals {
            config,
            truth,
            size_rng: rngs.stream("workload/sizes"),
            feat_rng: rngs.stream("workload/features"),
            count_rng: rngs.stream("workload/counts"),
            truth_rng: rngs.stream("workload/truth"),
            next_epoch: 0,
            jobs_generated: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OpenArrivalConfig {
        &self.config
    }

    /// Epochs generated so far; the next batch arrives at
    /// `epochs_generated() * epoch`.
    pub fn epochs_generated(&self) -> u64 {
        self.next_epoch
    }

    /// Jobs generated so far.
    pub fn jobs_generated(&self) -> u64 {
        self.jobs_generated
    }

    /// Arrival instant of the next batch.
    pub fn next_arrival(&self) -> SimTime {
        SimTime::ZERO + self.config.epoch * self.next_epoch
    }

    /// Generates the next epoch's batch. Every epoch yields at least one
    /// job (mirroring the closed generator, and keeping every epoch's
    /// admission path exercised even in the diurnal trough).
    ///
    /// Draw order per epoch — count stream: optional burst pair, then the
    /// Poisson count; size/feature/truth streams: one draw group per job.
    /// With no burst model this is exactly the closed generator's order.
    pub fn next_batch(&mut self) -> Batch {
        let e = self.next_epoch;
        let arrival = self.next_arrival();
        let burst_factor = match &self.config.burst {
            None => 1.0,
            Some(b) => b.sample_factor(&mut self.count_rng),
        };
        let rate = self.config.mean_rate_at(arrival) * burst_factor;
        let count = stats::poisson(&mut self.count_rng, rate).max(1);
        let mut jobs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let size = self.config.bucket.sample_bytes(&mut self.size_rng);
            let features = DocumentFeatures::sample_any_type(&mut self.feat_rng, size);
            let true_service_secs = self.truth.sample_secs(&mut self.truth_rng, &features);
            let output_bytes = self.truth.sample_output_bytes(&mut self.truth_rng, &features);
            jobs.push(Job {
                // Provisional generation-order id; the engine re-indexes
                // (and, in serve mode, recycles) at admission.
                id: JobId(self.jobs_generated),
                // Epoch index; wraps at 2^32 epochs (≈ 24k virtual years at
                // 3-minute epochs) — far beyond any configured horizon.
                batch: e as u32,
                arrival,
                features,
                true_service_secs,
                output_bytes,
                parent: None,
            });
            self.jobs_generated += 1;
        }
        self.next_epoch = e + 1;
        Batch { index: e as u32, arrival, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::BatchArrivals;

    #[test]
    fn flat_open_stream_matches_closed_generator_draw_for_draw() {
        // The equivalence keystone: with a flat envelope and no bursts, the
        // open stream reproduces the closed batches exactly — arrivals,
        // sizes, service times, output bytes, provisional ids.
        let closed_cfg = ArrivalConfig { n_batches: 12, ..ArrivalConfig::default() };
        let rngs = RngFactory::new(42);
        let truth = GroundTruth::default();
        let closed = BatchArrivals::new(closed_cfg.clone()).generate(&rngs, &truth);

        let mut open = OpenArrivals::new(
            OpenArrivalConfig::matching_closed(&closed_cfg),
            &RngFactory::new(42),
            truth,
        );
        for want in &closed {
            let got = open.next_batch();
            assert_eq!(got.index, want.index);
            assert_eq!(got.arrival, want.arrival);
            assert_eq!(got.jobs.len(), want.jobs.len());
            for (a, b) in got.jobs.iter().zip(&want.jobs) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.arrival, b.arrival);
                assert_eq!(a.features.size_bytes, b.features.size_bytes);
                assert_eq!(a.true_service_secs, b.true_service_secs);
                assert_eq!(a.output_bytes, b.output_bytes);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_lazy_state_is_small() {
        let mk = || {
            OpenArrivals::new(
                OpenArrivalConfig::diurnal_service(),
                &RngFactory::new(7),
                GroundTruth::default(),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..50 {
            let x = a.next_batch();
            let y = b.next_batch();
            assert_eq!(x.jobs.len(), y.jobs.len());
            for (p, q) in x.jobs.iter().zip(&y.jobs) {
                assert_eq!(p.true_service_secs, q.true_service_secs);
            }
        }
        assert_eq!(a.epochs_generated(), 50);
        assert_eq!(a.jobs_generated(), b.jobs_generated());
    }

    #[test]
    fn diurnal_envelope_modulates_epoch_sizes() {
        let cfg = OpenArrivalConfig {
            jobs_per_epoch: 100.0,
            envelope: RateEnvelope::diurnal(0.8, 0.0),
            ..OpenArrivalConfig::default()
        };
        // Peak (quarter-day) vs trough (three-quarter-day) mean rates.
        let peak = cfg.mean_rate_at(SimTime::from_secs(21_600));
        let trough = cfg.mean_rate_at(SimTime::from_secs(64_800));
        assert!((peak - 180.0).abs() < 1.0, "peak={peak}");
        assert!((trough - 20.0).abs() < 1.0, "trough={trough}");

        // Realized counts follow: generate one virtual day of 3-min epochs
        // and compare the quarter-day around the peak vs the trough.
        let mut gen = OpenArrivals::new(cfg, &RngFactory::new(3), GroundTruth::default());
        let day: Vec<usize> = (0..480).map(|_| gen.next_batch().jobs.len()).collect();
        let peak_mean: f64 = day[60..180].iter().sum::<usize>() as f64 / 120.0;
        let trough_mean: f64 = day[300..420].iter().sum::<usize>() as f64 / 120.0;
        assert!(
            peak_mean > 3.0 * trough_mean,
            "peak epochs {peak_mean} should dwarf trough epochs {trough_mean}"
        );
    }

    #[test]
    fn flash_crowds_fatten_the_tail() {
        let base = OpenArrivalConfig { jobs_per_epoch: 50.0, ..OpenArrivalConfig::default() };
        let bursty = OpenArrivalConfig {
            burst: Some(BurstModel { epoch_prob: 0.1, alpha: 1.2, max_factor: 10.0 }),
            ..base.clone()
        };
        let run = |cfg: OpenArrivalConfig| -> Vec<usize> {
            let mut g = OpenArrivals::new(cfg, &RngFactory::new(11), GroundTruth::default());
            (0..400).map(|_| g.next_batch().jobs.len()).collect()
        };
        let calm = run(base);
        let wild = run(bursty);
        let max_calm = *calm.iter().max().expect("nonempty");
        let max_wild = *wild.iter().max().expect("nonempty");
        assert!(
            max_wild as f64 > 2.0 * max_calm as f64,
            "flash crowds must spike: calm max {max_calm}, bursty max {max_wild}"
        );
    }

    #[test]
    fn burst_draws_keep_stream_position_epoch_aligned() {
        // The burst model draws a fixed number of uniforms per epoch, so
        // two bursty generators with different burst params stay aligned
        // on the count stream (same epochs spike or not per the gate draw).
        let mk = |p: f64| {
            OpenArrivals::new(
                OpenArrivalConfig {
                    burst: Some(BurstModel { epoch_prob: p, alpha: 1.5, max_factor: 4.0 }),
                    ..OpenArrivalConfig::default()
                },
                &RngFactory::new(5),
                GroundTruth::default(),
            )
        };
        // prob 0.0: gate never opens, factor 1.0 — but the tail uniform is
        // still consumed, so counts match a generator whose gate can open
        // on epochs where it happens not to.
        let mut never = mk(0.0);
        let mut tiny = mk(1.0e-12);
        for _ in 0..100 {
            assert_eq!(never.next_batch().jobs.len(), tiny.next_batch().jobs.len());
        }
    }
}

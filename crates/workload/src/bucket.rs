//! Job-size buckets (Sec. V-A).
//!
//! "The first bucket was biased towards small jobs; the second one had a
//! uniform distribution of job sizes, while the last one was biased towards
//! large jobs." Sizes span 1 MB – 300 MB. We realize the bias as a mixture of
//! uniform components over small/medium/large sub-ranges; the mixture weights
//! are chosen so the bursted-job size CoV lands near 1 as the paper observes
//! (Sec. V-B-4).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::document::BYTES_PER_MB;

/// Minimum job size (bytes), per the paper: 1 MB.
pub const MIN_JOB_BYTES: u64 = BYTES_PER_MB;
/// Maximum job size (bytes), per the paper: 300 MB.
pub const MAX_JOB_BYTES: u64 = 300 * BYTES_PER_MB;

/// The three production samplings used in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeBucket {
    /// Biased towards small jobs.
    SmallBiased,
    /// Uniform over the full 1–300 MB range.
    Uniform,
    /// Biased towards large jobs.
    LargeBiased,
}

impl SizeBucket {
    /// All buckets, in the paper's order.
    pub const ALL: [SizeBucket; 3] =
        [SizeBucket::SmallBiased, SizeBucket::Uniform, SizeBucket::LargeBiased];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SizeBucket::SmallBiased => "small",
            SizeBucket::Uniform => "uniform",
            SizeBucket::LargeBiased => "large",
        }
    }

    /// Mixture weights over the (small, medium, large) sub-ranges
    /// `[1,50] / (50,150] / (150,300]` MB.
    fn weights(self) -> (f64, f64, f64) {
        match self {
            SizeBucket::SmallBiased => (0.70, 0.25, 0.05),
            // Uniform over the whole range: weights proportional to sub-range widths.
            SizeBucket::Uniform => (49.0 / 299.0, 100.0 / 299.0, 150.0 / 299.0),
            SizeBucket::LargeBiased => (0.05, 0.25, 0.70),
        }
    }

    /// Samples one job size in bytes.
    pub fn sample_bytes<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (ws, wm, _wl) = self.weights();
        let u: f64 = rng.gen();
        let mb = if u < ws {
            rng.gen_range(1.0..=50.0)
        } else if u < ws + wm {
            rng.gen_range(50.0..=150.0)
        } else {
            rng.gen_range(150.0..=300.0)
        };
        ((mb * BYTES_PER_MB as f64) as u64).clamp(MIN_JOB_BYTES, MAX_JOB_BYTES)
    }

    /// Expected mean size in MB (exact for the mixture), used by capacity
    /// planning helpers and tests.
    pub fn mean_mb(self) -> f64 {
        let (ws, wm, wl) = self.weights();
        ws * 25.5 + wm * 100.0 + wl * 225.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mbs(b: SizeBucket, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| b.sample_bytes(&mut rng) as f64 / BYTES_PER_MB as f64).collect()
    }

    #[test]
    fn sizes_stay_in_range() {
        for b in SizeBucket::ALL {
            for mb in sample_mbs(b, 2000, 1) {
                assert!((1.0..=300.0).contains(&mb), "{b:?} produced {mb} MB");
            }
        }
    }

    #[test]
    fn bucket_means_are_ordered_and_near_expectation() {
        let small = Summary::of(&sample_mbs(SizeBucket::SmallBiased, 20_000, 2)).mean;
        let uniform = Summary::of(&sample_mbs(SizeBucket::Uniform, 20_000, 3)).mean;
        let large = Summary::of(&sample_mbs(SizeBucket::LargeBiased, 20_000, 4)).mean;
        assert!(small < uniform && uniform < large, "{small} {uniform} {large}");
        assert!((small - SizeBucket::SmallBiased.mean_mb()).abs() < 4.0);
        assert!((uniform - SizeBucket::Uniform.mean_mb()).abs() < 4.0);
        assert!((large - SizeBucket::LargeBiased.mean_mb()).abs() < 4.0);
        // The uniform mixture reproduces U[1,300]: mean ≈ 150.5.
        assert!((uniform - 150.5).abs() < 4.0);
    }

    #[test]
    fn size_variability_is_high() {
        // Sec. V-B-4: CoV of job sizes close to 1 motivates SIBS. The raw
        // bucket CoV is somewhat below 1 (the bursted subset is more
        // variable); assert it is at least substantial.
        let s = Summary::of(&sample_mbs(SizeBucket::SmallBiased, 20_000, 5));
        assert!(s.cov() > 0.8, "small-biased CoV = {}", s.cov());
    }

    #[test]
    fn labels() {
        assert_eq!(SizeBucket::SmallBiased.label(), "small");
        assert_eq!(SizeBucket::Uniform.label(), "uniform");
        assert_eq!(SizeBucket::LargeBiased.label(), "large");
    }

    #[test]
    fn weights_sum_to_one() {
        for b in SizeBucket::ALL {
            let (a, m, l) = b.weights();
            assert!((a + m + l - 1.0).abs() < 1e-12);
        }
    }
}

//! Property tests for the network substrate: link conservation under
//! latency and jitter, estimator convergence, SIBS bound invariants.

use proptest::prelude::*;

use cloudburst_net::queues::{SibsCandidate, SibsQueues};
use cloudburst_net::{sibs_bounds, BandwidthEstimator, BandwidthModel, Link, SizeClass, TransferId};
use cloudburst_sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bytes are conserved and completions stay chronological for any mix
    /// of sizes, threads, stagger, latency and bandwidth jitter.
    #[test]
    fn link_conservation_under_everything(
        sizes in prop::collection::vec(1_000u64..5_000_000, 1..10),
        threads in prop::collection::vec(1u32..6, 10),
        starts in prop::collection::vec(0u64..500, 10),
        latency in 0u64..30,
        seed in 0u64..500,
    ) {
        let mut link = Link::new(
            BandwidthModel::high_variation(seed),
            1.5,
            SimDuration::from_secs(30),
        )
        .with_latency(SimDuration::from_secs(latency));
        // Stagger starts (sorted so the advance-before-start contract holds).
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&i| starts[i]);
        let mut done = Vec::new();
        for &i in &order {
            let at = SimTime::from_secs(starts[i]);
            link.advance_into(at, &mut done);
            link.start(at, TransferId(i as u64), sizes[i], threads[i]);
        }
        let mut guard = 0;
        while let Some(w) = link.next_wake() {
            link.advance_into(w, &mut done);
            guard += 1;
            prop_assert!(guard < 200_000, "no convergence");
        }
        prop_assert_eq!(done.len(), sizes.len());
        prop_assert_eq!(link.bytes_delivered(), sizes.iter().sum::<u64>());
        for w in done.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // With latency, nothing completes before its start + latency.
        for c in &done {
            prop_assert!(c.at >= c.started + SimDuration::from_secs(latency));
        }
    }

    /// The EWMA estimator converges to a constant signal regardless of α
    /// and the initial prior, and stays within the observed range.
    #[test]
    fn estimator_converges_and_stays_in_range(
        alpha in 0.05f64..1.0,
        rate in 1_000.0f64..1e7,
        prior in 1.0f64..1e8,
    ) {
        let mut e = BandwidthEstimator::new(1, alpha).with_prior(prior);
        for i in 0..200u64 {
            e.observe(SimTime::from_secs(i), rate);
        }
        let p = e.predict(SimTime::from_secs(999));
        prop_assert!((p / rate - 1.0).abs() < 0.05, "p={p} rate={rate}");
        prop_assert!(p >= rate.min(prior) * 0.999 && p <= rate.max(prior) * 1.001);
    }

    /// SIBS bounds are always ordered (s ≤ m) and classify the candidate
    /// sizes into non-decreasing classes.
    #[test]
    fn sibs_bounds_are_ordered(
        sizes in prop::collection::vec(1_000u64..300_000_000, 1..64),
        q in prop::collection::vec(0u64..1_000_000_000, 3),
    ) {
        let cands: Vec<SibsCandidate> = sizes
            .iter()
            .map(|&s| SibsCandidate { size: s, t_up: 1.0, e_ec: 1.0, t_down: 1.0, e_ic: 10.0 })
            .collect();
        // Huge iload so every candidate qualifies.
        if let Some(b) = sibs_bounds(&cands, 1e12, 8, (q[0], q[1], q[2])) {
            prop_assert!(b.s_bound <= b.m_bound);
            let mut last = SizeClass::Small;
            let mut sorted = sizes.clone();
            sorted.sort_unstable();
            for s in sorted {
                let c = b.classify(s);
                prop_assert!(c >= last, "classes must be monotone in size");
                last = c;
            }
        } else {
            prop_assert!(false, "every candidate qualifies; bounds must exist");
        }
    }

    /// The ride-up queue policy never serves a job of a *higher* class
    /// through a lower-class slot, and conserves items.
    #[test]
    fn queues_conserve_and_respect_classes(
        items in prop::collection::vec((0usize..3, 1u64..1000), 0..60),
        pops in prop::collection::vec(0usize..3, 0..80),
    ) {
        let cls = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];
        let mut q: SibsQueues<usize> = SibsQueues::new();
        for (i, &(c, b)) in items.iter().enumerate() {
            q.push(cls[c], i, b);
        }
        let mut served = 0;
        for &slot in &pops {
            if let Some((item, _)) = q.pop_for(cls[slot]) {
                let item_class = items[item].0;
                prop_assert!(item_class <= slot, "class {item_class} via slot {slot}");
                served += 1;
            }
        }
        prop_assert_eq!(served + q.len(), items.len());
        let (s, m, l) = q.queued_bytes();
        let remaining_bytes: u64 = s + m + l;
        prop_assert!(remaining_bytes <= items.iter().map(|(_, b)| *b).sum::<u64>());
    }
}

//! The autonomic bandwidth estimation model (Sec. III-A-2).
//!
//! "The effective bandwidth is measured at different times of the day by
//! periodic test uploads/downloads … used in conjunction with the actual
//! values of the upload/download times observed during the experiment. The
//! network estimation model is updated according to
//! `S_n = α·Y_n + (1−α)·S_{n−1}`."
//!
//! We keep one EWMA per time-of-day slot (default: hourly, 24 slots) plus a
//! global EWMA as a cold-start fallback, giving exactly the paper's
//! "time-of-day dependent bandwidth predictor".

use serde::{Deserialize, Serialize};

use cloudburst_sim::SimTime;

/// Time-of-day EWMA bandwidth predictor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// EWMA weight α on the newest measurement.
    alpha: f64,
    /// Slot duration in seconds (day length / number of slots).
    slot_secs: f64,
    /// Per-slot EWMA state; `None` until a slot gets its first measurement.
    slots: Vec<Option<f64>>,
    /// Global EWMA across all slots (cold-start fallback).
    global: Option<f64>,
    /// Number of measurements ingested.
    n_obs: u64,
}

impl BandwidthEstimator {
    /// Creates an estimator with `n_slots` per (virtual) day and EWMA
    /// weight `alpha` (paper's α; 0 < α ≤ 1).
    pub fn new(n_slots: usize, alpha: f64) -> BandwidthEstimator {
        assert!(n_slots >= 1);
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BandwidthEstimator {
            alpha,
            slot_secs: 86_400.0 / n_slots as f64,
            slots: vec![None; n_slots],
            global: None,
            n_obs: 0,
        }
    }

    /// The paper-style default: hourly slots, α = 0.3.
    pub fn hourly() -> BandwidthEstimator {
        BandwidthEstimator::new(24, 0.3)
    }

    /// An estimator preloaded with a prior mean rate — models the initial
    /// calibration run the paper performs before scheduling starts.
    pub fn with_prior(mut self, prior_bps: f64) -> BandwidthEstimator {
        self.global = Some(prior_bps);
        self
    }

    fn slot_of(&self, t: SimTime) -> usize {
        ((t.as_secs_f64() / self.slot_secs) as usize) % self.slots.len()
    }

    /// Ingests a measured rate (bytes/sec) observed at time `t` — from a
    /// probe transfer or a real upload/download completion.
    pub fn observe(&mut self, t: SimTime, measured_bps: f64) {
        assert!(measured_bps >= 0.0);
        let s = self.slot_of(t);
        self.slots[s] = Some(match self.slots[s] {
            None => measured_bps,
            Some(prev) => self.alpha * measured_bps + (1.0 - self.alpha) * prev,
        });
        self.global = Some(match self.global {
            None => measured_bps,
            Some(prev) => self.alpha * measured_bps + (1.0 - self.alpha) * prev,
        });
        self.n_obs += 1;
    }

    /// Predicted rate (bytes/sec) at time `t`: the slot EWMA if the slot has
    /// been observed, else the global EWMA, else a conservative 1 B/s (an
    /// un-calibrated system should not assume a fast pipe).
    pub fn predict(&self, t: SimTime) -> f64 {
        self.slots[self.slot_of(t)].or(self.global).unwrap_or(1.0)
    }

    /// Predicted seconds to move `bytes` at time `t` with `threads` parallel
    /// streams under the saturation law with constant `kappa`.
    pub fn predict_transfer_secs(&self, t: SimTime, bytes: u64, threads: u32, kappa: f64) -> f64 {
        let rate = crate::link::Link::effective_rate(self.predict(t), threads.max(1), kappa);
        bytes as f64 / rate.max(1.0)
    }

    /// Number of measurements ingested so far.
    pub fn observations(&self) -> u64 {
        self.n_obs
    }

    /// Snapshot of the per-slot predictions (for Fig. 4(a)-style output).
    pub fn slot_table(&self) -> Vec<Option<f64>> {
        self.slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_is_conservative() {
        let e = BandwidthEstimator::hourly();
        assert_eq!(e.predict(SimTime::ZERO), 1.0);
    }

    #[test]
    fn prior_seeds_global() {
        let e = BandwidthEstimator::hourly().with_prior(250_000.0);
        assert_eq!(e.predict(SimTime::from_secs(7 * 3600)), 250_000.0);
    }

    #[test]
    fn ewma_formula_matches_paper() {
        let mut e = BandwidthEstimator::new(1, 0.25);
        e.observe(SimTime::ZERO, 1000.0);
        e.observe(SimTime::ZERO, 2000.0);
        // S2 = 0.25·2000 + 0.75·1000 = 1250
        assert!((e.predict(SimTime::ZERO) - 1250.0).abs() < 1e-9);
        e.observe(SimTime::ZERO, 1250.0);
        assert!((e.predict(SimTime::ZERO) - 1250.0).abs() < 1e-9, "fixed point");
    }

    #[test]
    fn slots_are_independent() {
        let mut e = BandwidthEstimator::hourly();
        e.observe(SimTime::from_secs(2 * 3600), 111.0); // hour 2
        e.observe(SimTime::from_secs(9 * 3600), 999.0); // hour 9
        assert_eq!(e.predict(SimTime::from_secs(2 * 3600 + 60)), 111.0);
        assert_eq!(e.predict(SimTime::from_secs(9 * 3600 + 60)), 999.0);
        // Unobserved hour falls back to the global EWMA, not 1.0.
        let global = e.predict(SimTime::from_secs(15 * 3600));
        assert!(global > 111.0 && global < 999.0);
    }

    #[test]
    fn slots_wrap_across_days() {
        let mut e = BandwidthEstimator::hourly();
        e.observe(SimTime::from_secs(3 * 3600), 500.0);
        // Same hour the next day hits the same slot.
        assert_eq!(e.predict(SimTime::from_secs(27 * 3600)), 500.0);
    }

    #[test]
    fn converges_to_stationary_rate() {
        let mut e = BandwidthEstimator::new(24, 0.3);
        for day in 0..5u64 {
            for hour in 0..24u64 {
                let t = SimTime::from_secs(day * 86_400 + hour * 3600);
                e.observe(t, 300_000.0);
            }
        }
        for hour in 0..24u64 {
            let t = SimTime::from_secs(5 * 86_400 + hour * 3600);
            assert!((e.predict(t) - 300_000.0).abs() < 1.0);
        }
        assert_eq!(e.observations(), 120);
    }

    #[test]
    fn transfer_time_prediction_uses_saturation_law() {
        let e = BandwidthEstimator::new(1, 0.5).with_prior(1000.0);
        // 4 threads, κ=1.5 → effective 1000·4/5.5 ≈ 727 B/s.
        let secs = e.predict_transfer_secs(SimTime::ZERO, 7272, 4, 1.5);
        assert!((secs - 10.0).abs() < 0.05, "secs={secs}");
        // More threads → faster prediction.
        assert!(
            e.predict_transfer_secs(SimTime::ZERO, 7272, 8, 1.5) < secs
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        BandwidthEstimator::new(24, 0.0);
    }
}

//! Fluid-flow simulation of one direction of the inter-cloud pipe.
//!
//! Concurrent transfers share the instantaneous capacity `B(t)` by
//! processor sharing weighted by their parallel-thread counts, attenuated
//! by the concave saturation law
//!
//! ```text
//! rate(transfer i) = B(t) · w_i / (W + κ)      W = Σ w_j (active threads)
//! ```
//!
//! so a lone transfer with `k` threads gets `B·k/(k+κ)` — more threads push
//! the pipe closer to saturation with diminishing returns, exactly the
//! behaviour the paper's thread tuner exploits (Fig. 4(b)).
//!
//! The link is a passive component: the owning engine calls
//! [`Link::advance`] to integrate progress up to the current instant and
//! [`Link::next_wake`] to learn when the next interesting thing happens (a
//! completion under the current rate, or a rate-revaluation slot boundary).
//! Capacity is held constant within a revaluation slot, which makes
//! completion times within a slot exact and the whole simulation
//! deterministic.

use cloudburst_sim::{SimDuration, SimTime};

use crate::profile::BandwidthModel;

/// Identifier of a transfer on a link (assigned by the caller).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransferId(pub u64);

/// Default thread-saturation constant κ: 4 threads reach ≈ 73 % of the raw
/// capacity, 16 threads ≈ 91 % — matching the shape of Fig. 4(b).
pub const DEFAULT_KAPPA: f64 = 1.5;

#[derive(Clone, Debug)]
struct Active {
    id: TransferId,
    remaining: f64, // bytes
    threads: u32,
    started: SimTime,
    /// Bytes begin to flow only after the last-hop/setup latency.
    flows_from: SimTime,
    total: u64,
}

/// A capacity-fault window injected by the chaos layer: while
/// `from <= t < until` the link's instantaneous capacity is multiplied by
/// `factor` (0 = blackout). Overlapping windows multiply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityFault {
    /// Window start.
    pub from: SimTime,
    /// Window end.
    pub until: SimTime,
    /// Capacity multiplier inside the window, in `[0, 1]`.
    pub factor: f64,
}

/// The link state a shard exchanges at an epoch barrier: everything the
/// engine's decision layer is allowed to read about one pipe direction,
/// frozen at the barrier instant. Plain `Copy` data — no borrows into the
/// link — so boundary snapshots can cross shard workers freely while the
/// link itself stays owned by its site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipeBoundary {
    /// Bytes still to be moved by in-flight transfers (as of the snapshot).
    pub remaining_bytes: u64,
    /// Number of in-flight transfers.
    pub in_flight: usize,
    /// Total threads currently contending on the link.
    pub active_threads: u32,
}

/// A completed transfer, reported by [`Link::advance`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// Which transfer finished.
    pub id: TransferId,
    /// When it finished (exact within the rate slot).
    pub at: SimTime,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// When it started.
    pub started: SimTime,
}

impl Completion {
    /// Observed end-to-end rate in bytes/sec — the measurement fed to the
    /// bandwidth estimator.
    pub fn observed_rate_bps(&self) -> f64 {
        let secs = (self.at - self.started).as_secs_f64();
        if secs <= 0.0 {
            self.bytes as f64
        } else {
            self.bytes as f64 / secs
        }
    }
}

/// One direction of the inter-cloud pipe.
#[derive(Clone, Debug)]
pub struct Link {
    model: BandwidthModel,
    kappa: f64,
    slot: SimDuration,
    /// Last-hop/connection-setup latency before a transfer's bytes flow
    /// (Sec. III-A-2 lists last-hop latency among the variation factors).
    latency: SimDuration,
    active: Vec<Active>,
    clock: SimTime,
    bytes_done: u64,
    busy: SimDuration,
    /// Chaos-injected capacity faults, sorted by start. Empty (the default
    /// and the fault-free fast path) leaves behaviour bit-identical.
    faults: Vec<CapacityFault>,
}

impl Link {
    /// Creates a link with the given ground-truth capacity model, saturation
    /// constant κ and rate-revaluation slot.
    pub fn new(model: BandwidthModel, kappa: f64, slot: SimDuration) -> Link {
        assert!(kappa >= 0.0);
        assert!(!slot.is_zero(), "rate slot must be positive");
        Link {
            model,
            kappa,
            slot,
            latency: SimDuration::ZERO,
            active: Vec::new(),
            clock: SimTime::ZERO,
            bytes_done: 0,
            busy: SimDuration::ZERO,
            faults: Vec::new(),
        }
    }

    /// A link with default κ and a 30-second revaluation slot.
    pub fn with_model(model: BandwidthModel) -> Link {
        Link::new(model, DEFAULT_KAPPA, SimDuration::from_secs(30))
    }

    /// Sets the last-hop/setup latency each transfer pays before its bytes
    /// flow. Penalizes small transfers (and probes) disproportionately.
    pub fn with_latency(mut self, latency: SimDuration) -> Link {
        self.latency = latency;
        self
    }

    /// The configured last-hop latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Installs the chaos-injected capacity-fault schedule. Windows whose
    /// `factor` is 0 black the link out entirely; overlapping windows
    /// multiply. Must be called before the first `advance` (windows are
    /// part of the run's ground truth, not a mid-run control).
    pub fn set_faults(&mut self, mut faults: Vec<CapacityFault>) {
        assert!(self.clock == SimTime::ZERO, "install faults before advancing");
        faults.retain(|f| f.until > f.from);
        self.faults = faults;
    }

    /// Capacity multiplier in effect at `t`: the product of every fault
    /// window containing `t`. 1.0 on the fault-free fast path.
    fn fault_factor(&self, t: SimTime) -> f64 {
        if self.faults.is_empty() {
            return 1.0;
        }
        let mut f = 1.0;
        for w in &self.faults {
            if w.from <= t && t < w.until {
                f *= w.factor.clamp(0.0, 1.0);
            }
        }
        f
    }

    /// The ground-truth capacity model.
    pub fn model(&self) -> &BandwidthModel {
        &self.model
    }

    /// Number of in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Total bytes delivered since construction.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_done
    }

    /// Cumulative time the link spent with at least one active transfer.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Bytes still to be moved by the in-flight transfers (as of the last
    /// `advance`).
    pub fn remaining_bytes(&self) -> u64 {
        self.active.iter().map(|t| t.remaining.ceil() as u64).sum()
    }

    /// Ids of the in-flight transfers.
    pub fn active_ids(&self) -> impl Iterator<Item = TransferId> + '_ {
        self.active.iter().map(|t| t.id)
    }

    /// Total threads currently contending on the link.
    pub fn active_threads(&self) -> u32 {
        self.active.iter().map(|t| t.threads).sum()
    }

    /// Internal clock (last `advance` target).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The epoch-barrier snapshot of this pipe direction: the decision
    /// layer reads links only through this (one coherent freeze instead of
    /// piecemeal accessor calls interleaved with mutation).
    pub fn boundary(&self) -> PipeBoundary {
        let (remaining_bytes, active_threads) = self
            .active
            .iter()
            .fold((0u64, 0u32), |(b, th), t| {
                (b + t.remaining.ceil() as u64, th + t.threads)
            });
        PipeBoundary {
            remaining_bytes,
            in_flight: self.active.len(),
            active_threads,
        }
    }

    /// Starts a transfer of `bytes` with `threads` parallel streams. The
    /// caller must have advanced the link to `now` first. Panics on a
    /// duplicate id or zero threads.
    pub fn start(&mut self, now: SimTime, id: TransferId, bytes: u64, threads: u32) {
        assert!(threads >= 1, "transfers need at least one thread");
        assert!(now >= self.clock, "link must be advanced before start");
        assert!(
            self.active.iter().all(|t| t.id != id),
            "duplicate transfer id {id:?}"
        );
        self.advance_internal(now);
        self.active.push(Active {
            id,
            remaining: bytes.max(1) as f64,
            threads,
            started: now,
            flows_from: now + self.latency,
            total: bytes.max(1),
        });
    }

    /// Aborts an in-flight transfer (used by rescheduling extensions).
    /// Returns the remaining bytes if the transfer existed.
    pub fn abort(&mut self, now: SimTime, id: TransferId) -> Option<u64> {
        self.advance_internal(now);
        let idx = self.active.iter().position(|t| t.id == id)?;
        let t = self.active.swap_remove(idx);
        Some(t.remaining.ceil() as u64)
    }

    /// Integrates all transfers forward to `to`, returning completions in
    /// chronological order. Test-only convenience wrapper over
    /// [`Link::advance_into`]: every production caller uses the
    /// buffer-reusing form (a fresh `Vec` per wake is exactly the per-event
    /// allocation the hot path forbids), so the allocating wrapper is
    /// compiled out of non-test builds and listed under
    /// `disallowed-methods` in `clippy.toml`.
    #[cfg(test)]
    pub fn advance(&mut self, to: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        self.advance_into(to, &mut done);
        done
    }

    /// Integrates all transfers forward to `to`, appending completions to
    /// `done` in chronological order. The buffer is caller-owned so a
    /// driver loop can reuse one allocation across every wake.
    pub fn advance_into(&mut self, to: SimTime, done: &mut Vec<Completion>) {
        // Work in pieces: each piece ends at the next slot boundary, the
        // next completion under the current rate, or `to`.
        while self.clock < to {
            if self.active.is_empty() {
                self.clock = to;
                break;
            }
            let piece_end = self.next_boundary(to);
            let rate_per_thread = self.rate_per_thread();
            // Earliest completion within this piece under constant rate?
            // Latent transfers (still inside their setup latency) cannot
            // complete — the boundary computation stops pieces at every
            // flow-start instant, so a piece never straddles one.
            let mut first: Option<(usize, SimTime)> = None;
            for (i, tr) in self.active.iter().enumerate() {
                if tr.flows_from > self.clock {
                    continue;
                }
                let r = rate_per_thread * tr.threads as f64;
                if r <= 0.0 {
                    continue;
                }
                let eta = self.clock + SimDuration::from_secs_f64(tr.remaining / r);
                if eta <= piece_end && first.is_none_or(|(_, t)| eta < t) {
                    first = Some((i, eta));
                }
            }
            let advance_to = first.map_or(piece_end, |(_, eta)| eta);
            self.integrate(advance_to, rate_per_thread);
            if let Some((i, eta)) = first {
                let tr = self.active.remove(i);
                self.bytes_done += tr.total;
                done.push(Completion { id: tr.id, at: eta, bytes: tr.total, started: tr.started });
            }
        }
        // Collect any transfers that numerically hit zero at the boundary.
        let clock = self.clock;
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].remaining <= 0.5 {
                let tr = self.active.remove(i);
                self.bytes_done += tr.total;
                done.push(Completion { id: tr.id, at: clock, bytes: tr.total, started: tr.started });
            } else {
                i += 1;
            }
        }
    }

    /// When should the engine next call [`Link::advance`]? Returns the
    /// earliest of the next completion (under the current instantaneous
    /// rate) and the next rate-revaluation boundary; `None` when idle.
    pub fn next_wake(&self) -> Option<SimTime> {
        if self.active.is_empty() {
            return None;
        }
        let boundary = self.next_boundary(SimTime::MAX);
        let rate_per_thread = self.rate_per_thread();
        let mut wake = boundary;
        for tr in &self.active {
            if tr.flows_from > self.clock {
                continue; // its flow-start is already a boundary
            }
            let r = rate_per_thread * tr.threads as f64;
            if r > 0.0 {
                let eta = self.clock + SimDuration::from_secs_f64(tr.remaining / r);
                wake = wake.min(eta);
            }
        }
        Some(wake)
    }

    /// Instantaneous per-thread share of the capacity at the internal
    /// clock. Latent transfers consume no bandwidth yet.
    fn rate_per_thread(&self) -> f64 {
        let w: f64 = self
            .active
            .iter()
            .filter(|t| t.flows_from <= self.clock)
            .map(|t| t.threads as f64)
            .sum();
        if w == 0.0 {
            return 0.0;
        }
        self.model.rate_bps(self.clock) * self.fault_factor(self.clock) / (w + self.kappa)
    }

    /// Effective aggregate throughput at time `t` if `threads` total threads
    /// are active — the saturation law exposed for estimation and tuning.
    pub fn effective_rate(model_rate_bps: f64, threads: u32, kappa: f64) -> f64 {
        let k = threads as f64;
        model_rate_bps * k / (k + kappa)
    }

    /// Next integration boundary: the next slot multiple or the next
    /// flow-start instant, whichever comes first (capped at `to`).
    fn next_boundary(&self, to: SimTime) -> SimTime {
        let slot_us = self.slot.as_micros();
        let next = (self.clock.as_micros() / slot_us + 1) * slot_us;
        let mut b = SimTime::from_micros(next).min(to);
        for tr in &self.active {
            if tr.flows_from > self.clock {
                b = b.min(tr.flows_from);
            }
        }
        // Fault-window edges are rate discontinuities too: a piece must
        // never straddle one, so the constant-rate ETA stays exact.
        for w in &self.faults {
            if w.from > self.clock {
                b = b.min(w.from);
            }
            if w.until > self.clock {
                b = b.min(w.until);
            }
        }
        b
    }

    fn integrate(&mut self, to: SimTime, rate_per_thread: f64) {
        let dt = (to - self.clock).as_secs_f64();
        if dt > 0.0 {
            if !self.active.is_empty() {
                self.busy += to - self.clock;
            }
            let clock = self.clock;
            for tr in &mut self.active {
                if tr.flows_from > clock {
                    continue; // setup latency: no bytes yet
                }
                tr.remaining = (tr.remaining - rate_per_thread * tr.threads as f64 * dt).max(0.0);
            }
        }
        self.clock = to;
    }

    fn advance_internal(&mut self, to: SimTime) {
        // Starts may only happen at engine event times, which are never past
        // a pending completion; integrating piecewise (re-evaluating the
        // rate at each slot boundary) is exact.
        if self.active.is_empty() {
            self.clock = self.clock.max(to);
            return;
        }
        while self.clock < to {
            let boundary = self.next_boundary(to);
            let rate = self.rate_per_thread();
            self.integrate(boundary, rate);
        }
    }
}

#[cfg(test)]
// Unit tests are the sanctioned consumer of the allocating `advance`
// wrapper (it only exists under cfg(test)).
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn constant_link(bps: f64) -> Link {
        Link::new(BandwidthModel::Constant(bps), 0.0, SimDuration::from_secs(3600))
    }

    #[test]
    fn single_transfer_takes_bytes_over_rate() {
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        let wake = l.next_wake().unwrap();
        assert_eq!(wake, SimTime::from_secs(10));
        let done = l.advance(wake);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, TransferId(1));
        assert_eq!(done[0].at, SimTime::from_secs(10));
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.bytes_delivered(), 10_000);
        assert!((done[0].observed_rate_bps() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn two_transfers_share_capacity() {
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        l.start(SimTime::ZERO, TransferId(2), 10_000, 1);
        // Each gets 500 B/s → both complete at t = 20 s.
        let done = l.advance(SimTime::from_secs(25));
        assert_eq!(done.len(), 2);
        for c in &done {
            assert_eq!(c.at, SimTime::from_secs(20));
        }
    }

    #[test]
    fn short_transfer_frees_capacity_for_long_one() {
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 5_000, 1);
        l.start(SimTime::ZERO, TransferId(2), 20_000, 1);
        // Shared until t=10 (each at 500 B/s, short one done: 5000/500=10).
        // Long one then has 15000 left at 1000 B/s → done at t=25.
        let done = l.advance(SimTime::from_secs(30));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, TransferId(1));
        assert_eq!(done[0].at, SimTime::from_secs(10));
        assert_eq!(done[1].id, TransferId(2));
        assert_eq!(done[1].at, SimTime::from_secs(25));
    }

    #[test]
    fn thread_weighting_shares_proportionally() {
        // κ=0: transfer with 3 threads gets 3/4 of capacity.
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 7_500, 3);
        l.start(SimTime::ZERO, TransferId(2), 2_500, 1);
        let done = l.advance(SimTime::from_secs(11));
        assert_eq!(done.len(), 2, "both rates are 750/250 B/s → done at t=10");
        for c in &done {
            assert_eq!(c.at, SimTime::from_secs(10));
        }
    }

    #[test]
    fn saturation_law_discounts_single_thread() {
        // κ=1.5: one thread alone gets 1/(1+1.5) = 40 % of capacity.
        let mut l = Link::new(BandwidthModel::Constant(1000.0), 1.5, SimDuration::from_secs(3600));
        l.start(SimTime::ZERO, TransferId(1), 4_000, 1);
        let wake = l.next_wake().unwrap();
        assert_eq!(wake, SimTime::from_secs(10));
        // With 4 threads: 4/5.5 ≈ 72.7 % — faster.
        let mut l2 = Link::new(BandwidthModel::Constant(1000.0), 1.5, SimDuration::from_secs(3600));
        l2.start(SimTime::ZERO, TransferId(1), 4_000, 4);
        assert!(l2.next_wake().unwrap() < wake);
        assert!(
            (Link::effective_rate(1000.0, 4, 1.5) - 1000.0 * 4.0 / 5.5).abs() < 1e-9
        );
    }

    #[test]
    fn time_varying_rate_is_integrated_per_slot() {
        // Hour 0: 1000 B/s; hour 1+: 500 B/s. 4.5 MB transfer: 3.6 MB done in
        // hour 0, the rest (0.9 MB) takes 1800 s → completes at t = 5400 s.
        let mut rates = vec![500.0; 24];
        rates[0] = 1000.0;
        let model = BandwidthModel::Hourly { rates };
        let mut l = Link::new(model, 0.0, SimDuration::from_secs(60));
        l.start(SimTime::ZERO, TransferId(1), 4_500_000, 1);
        let mut done = Vec::new();
        let mut guard = 0;
        while done.is_empty() {
            let wake = l.next_wake().expect("transfer still active");
            done = l.advance(wake);
            guard += 1;
            assert!(guard < 500, "should converge");
        }
        assert_eq!(done[0].at, SimTime::from_secs(5400));
    }

    #[test]
    fn abort_removes_and_reports_remaining() {
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        let rem = l.abort(SimTime::from_secs(4), TransferId(1)).unwrap();
        assert_eq!(rem, 6_000);
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.next_wake(), None);
        assert_eq!(l.abort(SimTime::from_secs(5), TransferId(1)), None);
    }

    #[test]
    fn busy_time_accumulates_only_when_active() {
        let mut l = constant_link(1000.0);
        l.advance(SimTime::from_secs(50));
        assert_eq!(l.busy_time(), SimDuration::ZERO);
        l.start(SimTime::from_secs(50), TransferId(1), 10_000, 1);
        l.advance(SimTime::from_secs(70));
        assert_eq!(l.busy_time(), SimDuration::from_secs(10), "busy only until completion");
    }

    #[test]
    fn conservation_of_bytes() {
        let mut l = Link::new(
            BandwidthModel::high_variation(3),
            1.5,
            SimDuration::from_secs(30),
        );
        let sizes = [1_000_000u64, 5_000_000, 2_500_000, 800_000];
        for (i, &s) in sizes.iter().enumerate() {
            l.start(SimTime::ZERO, TransferId(i as u64), s, 2);
        }
        let mut completions = Vec::new();
        while let Some(w) = l.next_wake() {
            completions.extend(l.advance(w));
        }
        assert_eq!(completions.len(), sizes.len());
        assert_eq!(l.bytes_delivered(), sizes.iter().sum::<u64>());
        // Completions are chronological.
        for pair in completions.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn latency_delays_flow_start() {
        let mut l = Link::new(BandwidthModel::Constant(1000.0), 0.0, SimDuration::from_secs(3600))
            .with_latency(SimDuration::from_secs(5));
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // 5 s of setup + 10 s of transfer.
        let mut done = Vec::new();
        while let Some(w) = l.next_wake() {
            done.extend(l.advance(w));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(15));
        assert_eq!(l.latency(), SimDuration::from_secs(5));
    }

    #[test]
    fn latent_transfers_do_not_consume_bandwidth() {
        let mut l = Link::new(BandwidthModel::Constant(1000.0), 0.0, SimDuration::from_secs(3600))
            .with_latency(SimDuration::from_secs(10));
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // A second transfer started at t=5 is latent until t=15; the first
        // flows alone from t=10 to t=15 at full rate.
        l.advance(SimTime::from_secs(5));
        l.start(SimTime::from_secs(5), TransferId(2), 10_000, 1);
        let mut done = Vec::new();
        while let Some(w) = l.next_wake() {
            done.extend(l.advance(w));
        }
        // t1: flows 10→15 alone (5000 B), then shares 500 B/s → 10 more s →
        // completes at t=25. t2: flows from 15, shares until 25 (5000 B),
        // then alone (5000 B at 1000 B/s) → completes at t=30.
        assert_eq!(done[0].id, TransferId(1));
        assert_eq!(done[0].at, SimTime::from_secs(25));
        assert_eq!(done[1].id, TransferId(2));
        assert_eq!(done[1].at, SimTime::from_secs(30));
    }

    #[test]
    fn latency_hurts_small_transfers_relatively_more() {
        let run = |bytes: u64| {
            let mut l =
                Link::new(BandwidthModel::Constant(1000.0), 0.0, SimDuration::from_secs(3600))
                    .with_latency(SimDuration::from_secs(4));
            l.start(SimTime::ZERO, TransferId(1), bytes, 1);
            let mut at = SimTime::ZERO;
            while let Some(w) = l.next_wake() {
                for c in l.advance(w) {
                    at = c.at;
                }
            }
            at.as_secs_f64() / (bytes as f64 / 1000.0) // slowdown factor
        };
        assert!(run(1_000) > run(100_000), "small transfers pay proportionally more");
    }

    #[test]
    fn blackout_window_freezes_progress() {
        let mut l = constant_link(1000.0);
        l.set_faults(vec![CapacityFault {
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(25),
            factor: 0.0,
        }]);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // 5 s at 1000 B/s, 20 s dark, then 5 s to finish → t = 30.
        let mut done = Vec::new();
        let mut guard = 0;
        while done.is_empty() {
            let w = l.next_wake().expect("still active");
            done = l.advance(w);
            guard += 1;
            assert!(guard < 100, "must converge");
        }
        assert_eq!(done[0].at, SimTime::from_secs(30));
    }

    #[test]
    fn degradation_window_scales_rate() {
        let mut l = constant_link(1000.0);
        l.set_faults(vec![CapacityFault {
            from: SimTime::ZERO,
            until: SimTime::from_secs(100),
            factor: 0.25,
        }]);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // 250 B/s inside the window → 40 s.
        let mut done = Vec::new();
        while let Some(w) = l.next_wake() {
            done.extend(l.advance(w));
        }
        assert_eq!(done[0].at, SimTime::from_secs(40));
    }

    #[test]
    fn overlapping_windows_multiply_and_empty_faults_change_nothing() {
        let mut faulty = constant_link(1000.0);
        faulty.set_faults(vec![
            CapacityFault { from: SimTime::ZERO, until: SimTime::from_secs(1000), factor: 0.5 },
            CapacityFault { from: SimTime::ZERO, until: SimTime::from_secs(1000), factor: 0.5 },
        ]);
        faulty.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // 0.5 · 0.5 = 0.25 → 250 B/s → 40 s.
        assert_eq!(faulty.next_wake().unwrap(), SimTime::from_secs(40));

        let mut plain = constant_link(1000.0);
        let mut with_empty = constant_link(1000.0);
        with_empty.set_faults(Vec::new());
        plain.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        with_empty.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        assert_eq!(plain.next_wake(), with_empty.next_wake());
        assert_eq!(plain.advance(SimTime::from_secs(10)), with_empty.advance(SimTime::from_secs(10)));
    }

    #[test]
    fn abort_during_blackout_reports_frozen_remaining() {
        let mut l = constant_link(1000.0);
        l.set_faults(vec![CapacityFault {
            from: SimTime::from_secs(2),
            until: SimTime::from_secs(1000),
            factor: 0.0,
        }]);
        l.start(SimTime::ZERO, TransferId(1), 10_000, 1);
        // 2 s of flow then darkness: remaining frozen at 8000 bytes.
        let rem = l.abort(SimTime::from_secs(50), TransferId(1)).unwrap();
        assert_eq!(rem, 8_000);
    }

    #[test]
    #[should_panic(expected = "duplicate transfer id")]
    fn duplicate_id_panics() {
        let mut l = constant_link(1000.0);
        l.start(SimTime::ZERO, TransferId(1), 100, 1);
        l.start(SimTime::ZERO, TransferId(1), 100, 1);
    }
}

//! `cloudburst-net` — the Internet-pipe substrate between the internal and
//! external clouds.
//!
//! The paper's schedulers live or die by the thin, time-varying pipe between
//! the clouds: "the upload and the download bandwidth … vary sporadically
//! because of factors such as last-hop latency, time-of-day variations,
//! bandwidth throttling" (Sec. III-A-2). This crate simulates that pipe and
//! implements the paper's autonomic network machinery:
//!
//! * [`profile`] — ground-truth bandwidth models: constant, diurnal
//!   (time-of-day sinusoid), piecewise-hourly tables, and a deterministic
//!   per-slot jitter wrapper for "high network variation" scenarios.
//! * [`link`] — a fluid-flow shared link: concurrent transfers progress by
//!   processor sharing weighted by their thread counts, with a concave
//!   multi-thread saturation law (`k/(k+κ)`) reproducing Fig. 4(b)'s
//!   diminishing returns.
//! * [`estimator`] — the paper's network estimation model: a time-of-day
//!   slot table updated by the EWMA `S_n = α·Y_n + (1−α)·S_{n−1}` from
//!   periodic probe transfers and observed transfer rates.
//! * [`threads`] — the hill-climbing thread-count tuner that converges on
//!   the number of parallel upload/download threads saturating the pipe.
//! * [`queues`] — upload queues, including the three size-interval queues
//!   and the bound computation of Algorithm 3 (SIBS).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod estimator;
pub mod link;
pub mod profile;
pub mod queues;
pub mod threads;

pub use estimator::BandwidthEstimator;
pub use link::{CapacityFault, Link, PipeBoundary, TransferId};
pub use profile::BandwidthModel;
pub use queues::{sibs_bounds, SibsBounds, SizeClass};
pub use threads::ThreadTuner;

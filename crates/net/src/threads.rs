//! Hill-climbing thread-count tuner (Fig. 4(b)).
//!
//! "The process varies the number of download/upload threads and converges
//! upon the optimum number of threads to be used for that time-period"
//! (Sec. V-A). Throughput gains from extra threads are concave
//! (`k/(k+κ)`) while each thread carries fixed overhead (connection setup,
//! scheduling, memory), so the net utility peaks at a finite `k` that moves
//! with the offered bandwidth. The tuner hill-climbs on measured throughput
//! minus the overhead penalty, one probe per adjustment epoch, per
//! time-of-day slot.

use serde::{Deserialize, Serialize};

use cloudburst_sim::SimTime;

/// Per-time-slot thread-count tuner.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadTuner {
    /// Current best-known thread count per slot.
    best: Vec<u32>,
    /// Best observed utility per slot (`None` until first measurement).
    utility: Vec<Option<f64>>,
    /// Direction of the next probe per slot: +1 or −1.
    direction: Vec<i32>,
    /// Pending probe (slot, candidate) awaiting its measurement.
    pending: Option<(usize, u32)>,
    /// Slot length in seconds.
    slot_secs: f64,
    /// Bounds on the thread count.
    min_threads: u32,
    max_threads: u32,
    /// Per-thread overhead subtracted from measured throughput (bytes/sec
    /// equivalent) — makes the utility peak interior.
    per_thread_cost_bps: f64,
}

impl ThreadTuner {
    /// Creates a tuner with `n_slots` per day and the given bounds.
    pub fn new(n_slots: usize, min_threads: u32, max_threads: u32, per_thread_cost_bps: f64) -> Self {
        assert!(n_slots >= 1 && min_threads >= 1 && max_threads >= min_threads);
        let start = (min_threads + max_threads) / 2;
        ThreadTuner {
            best: vec![start; n_slots],
            utility: vec![None; n_slots],
            direction: vec![1; n_slots],
            pending: None,
            slot_secs: 86_400.0 / n_slots as f64,
            min_threads,
            max_threads,
            per_thread_cost_bps,
        }
    }

    /// Default: hourly slots, 1–32 threads, 4 KB/s-equivalent cost per thread.
    pub fn hourly() -> ThreadTuner {
        ThreadTuner::new(24, 1, 32, 4_000.0)
    }

    fn slot_of(&self, t: SimTime) -> usize {
        ((t.as_secs_f64() / self.slot_secs) as usize) % self.best.len()
    }

    /// The thread count to use for a transfer starting at `t`. If a probe is
    /// due for this slot, returns the probe candidate (one step off the
    /// current best) and remembers it for [`ThreadTuner::report`].
    pub fn threads_for(&mut self, t: SimTime) -> u32 {
        let s = self.slot_of(t);
        if self.pending.is_some() {
            return self.best[s];
        }
        let cand = (self.best[s] as i64 + self.direction[s] as i64)
            .clamp(self.min_threads as i64, self.max_threads as i64) as u32;
        if cand == self.best[s] {
            // At a bound; flip and try the other way next time.
            self.direction[s] = -self.direction[s];
            return self.best[s];
        }
        self.pending = Some((s, cand));
        cand
    }

    /// Current best thread count for the slot containing `t`, without
    /// probing.
    pub fn current_best(&self, t: SimTime) -> u32 {
        self.best[self.slot_of(t)]
    }

    /// Reports the measured aggregate throughput (bytes/sec) achieved by a
    /// transfer that used `threads` streams in the slot containing `t`.
    /// Updates the hill-climbing state.
    pub fn report(&mut self, t: SimTime, threads: u32, measured_bps: f64) {
        let s = self.slot_of(t);
        let u = measured_bps - self.per_thread_cost_bps * threads as f64;
        match self.pending {
            Some((ps, cand)) if ps == s && cand == threads => {
                self.pending = None;
                match self.utility[s] {
                    Some(best_u) if u <= best_u => {
                        // Probe failed: reverse direction for the next probe,
                        // and blend the remembered utility toward the fresh
                        // measurement so a shifted optimum (bandwidth
                        // changed) can still be re-found.
                        self.direction[s] = -self.direction[s];
                        self.utility[s] = Some(0.9 * best_u + 0.1 * u);
                    }
                    _ => {
                        self.best[s] = cand;
                        self.utility[s] = Some(u);
                    }
                }
            }
            _ => {
                // A regular (non-probe) measurement at the current best:
                // refresh its utility.
                if threads == self.best[s] {
                    self.utility[s] = Some(match self.utility[s] {
                        None => u,
                        Some(prev) => 0.5 * u + 0.5 * prev,
                    });
                }
            }
        }
    }

    /// Snapshot of the per-slot best thread counts (Fig. 4(b)-style output).
    pub fn slot_table(&self) -> Vec<u32> {
        self.best.clone()
    }
}

/// The analytically optimal thread count for raw capacity `b_bps` under the
/// saturation law `b·k/(k+κ)` minus `cost · k`: maximize over integer `k`.
/// Used by tests and by the Fig. 4(b) experiment as ground truth.
pub fn optimal_threads(b_bps: f64, kappa: f64, cost_bps: f64, max_threads: u32) -> u32 {
    let mut best_k = 1;
    let mut best_u = f64::NEG_INFINITY;
    for k in 1..=max_threads {
        let u = b_bps * k as f64 / (k as f64 + kappa) - cost_bps * k as f64;
        if u > best_u {
            best_u = u;
            best_k = k;
        }
    }
    best_k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    #[test]
    fn optimal_grows_with_bandwidth() {
        let k_slow = optimal_threads(50_000.0, 1.5, 4_000.0, 32);
        let k_fast = optimal_threads(500_000.0, 1.5, 4_000.0, 32);
        assert!(k_fast > k_slow, "{k_fast} vs {k_slow}");
        assert!(k_slow >= 1);
        assert!(k_fast <= 32);
    }

    #[test]
    fn tuner_converges_to_analytic_optimum() {
        let b = 250_000.0;
        let kappa = 1.5;
        let cost = 4_000.0;
        let target = optimal_threads(b, kappa, cost, 32);
        let mut tuner = ThreadTuner::new(1, 1, 32, cost);
        let t = SimTime::ZERO;
        for _ in 0..200 {
            let k = tuner.threads_for(t);
            let measured = Link::effective_rate(b, k, kappa);
            tuner.report(t, k, measured);
        }
        let got = tuner.current_best(t);
        assert!(
            (got as i64 - target as i64).abs() <= 1,
            "tuner got {got}, analytic optimum {target}"
        );
    }

    #[test]
    fn tuner_tracks_bandwidth_change() {
        let kappa = 1.5;
        let cost = 4_000.0;
        let mut tuner = ThreadTuner::new(1, 1, 32, cost);
        let t = SimTime::ZERO;
        for _ in 0..200 {
            let k = tuner.threads_for(t);
            tuner.report(t, k, Link::effective_rate(400_000.0, k, kappa));
        }
        let high = tuner.current_best(t);
        for _ in 0..400 {
            let k = tuner.threads_for(t);
            tuner.report(t, k, Link::effective_rate(40_000.0, k, kappa));
        }
        let low = tuner.current_best(t);
        assert!(low < high, "fewer threads pay off on a slow pipe: {low} vs {high}");
    }

    #[test]
    fn slots_are_tuned_independently() {
        let mut tuner = ThreadTuner::new(24, 1, 32, 4_000.0);
        let morning = SimTime::from_secs(8 * 3600);
        let night = SimTime::from_secs(23 * 3600);
        for _ in 0..200 {
            let k = tuner.threads_for(morning);
            tuner.report(morning, k, Link::effective_rate(500_000.0, k, 1.5));
            let k = tuner.threads_for(night);
            tuner.report(night, k, Link::effective_rate(30_000.0, k, 1.5));
        }
        assert!(tuner.current_best(morning) > tuner.current_best(night));
        let table = tuner.slot_table();
        assert_eq!(table.len(), 24);
        assert_eq!(table[8], tuner.current_best(morning));
    }

    #[test]
    fn bounds_are_respected() {
        let mut tuner = ThreadTuner::new(1, 2, 4, 0.0);
        let t = SimTime::ZERO;
        for _ in 0..100 {
            let k = tuner.threads_for(t);
            assert!((2..=4).contains(&k));
            tuner.report(t, k, Link::effective_rate(1e9, k, 1.5));
        }
        // Unbounded utility growth pushes to the max.
        assert_eq!(tuner.current_best(t), 4);
    }
}

//! Size-interval upload queues and the SIBS bound computation
//! (Algorithm 3).
//!
//! Highly variable job sizes let one large upload block many small ones, so
//! the optimization partitions upload work into small / medium / large
//! queues. Bounds between the intervals come from Algorithm 3: identify the
//! burst-candidate jobs (no-load EC completion beats the IC's drain time),
//! sort their sizes, and split the sorted list proportionally to each
//! queue's normalized *leftover* capacity. Small jobs may ride a higher
//! queue's capacity, never the reverse.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A burst candidate's estimates, all in seconds except `size` (bytes):
/// inputs to Algorithm 3's candidate filter.
#[derive(Clone, Copy, Debug)]
pub struct SibsCandidate {
    /// Job input size in bytes.
    pub size: u64,
    /// Estimated upload seconds under no contention (`job.t_up`).
    pub t_up: f64,
    /// Estimated EC execution seconds (`job.e_ec`).
    pub e_ec: f64,
    /// Estimated download seconds for the result (`job.t_down`).
    pub t_down: f64,
    /// Estimated IC execution seconds (`job.e_ic`).
    pub e_ic: f64,
}

/// The size-interval bounds produced by Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SibsBounds {
    /// Upper bound (bytes) of the small queue.
    pub s_bound: u64,
    /// Upper bound (bytes) of the medium queue.
    pub m_bound: u64,
}

impl SibsBounds {
    /// Classifies a job size against the bounds.
    pub fn classify(&self, size: u64) -> SizeClass {
        if size <= self.s_bound {
            SizeClass::Small
        } else if size <= self.m_bound {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }
}

/// The three size intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Smallest interval — isolated from larger traffic.
    Small,
    /// Middle interval.
    Medium,
    /// Largest interval.
    Large,
}

impl SizeClass {
    /// All classes, smallest first.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    fn index(self) -> usize {
        match self {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
        }
    }
}

/// Computes the SIBS size-interval bounds (Algorithm 3).
///
/// * `batch` — ordered burst candidates with their current estimates;
/// * `iload_secs` — initial compute load already queued in the IC (line 6's
///   `iload`);
/// * `n_ic` — number of IC processors (line 6's `n`);
/// * `queued_bytes` — bytes currently waiting in the (small, medium, large)
///   upload queues (`s_up`, `m_up`, `l_up`).
///
/// Returns `None` when no candidate passes the filter (callers fall back to
/// a single-interval queue, which is also the documented behaviour when size
/// variability is low).
pub fn sibs_bounds(
    batch: &[SibsCandidate],
    iload_secs: f64,
    n_ic: usize,
    queued_bytes: (u64, u64, u64),
) -> Option<SibsBounds> {
    assert!(n_ic >= 1);
    // Lines 3–12: collect sizes of jobs whose no-load EC completion beats
    // the IC drain estimate; accumulate their IC load into rload.
    let mut l: Vec<u64> = Vec::new();
    let mut rload = 0.0;
    for job in batch {
        let t_ec = job.t_up + job.e_ec + job.t_down;
        if t_ec < iload_secs + rload / n_ic as f64 {
            l.push(job.size);
            rload += job.e_ic;
        }
    }
    if l.is_empty() {
        return None;
    }
    // Line 13: normalized leftover capacity per queue.
    let (s_up, m_up, l_up) = (queued_bytes.0 as f64, queued_bytes.1 as f64, queued_bytes.2 as f64);
    let total = s_up + m_up + l_up;
    let (ws, wm, wl) = if total <= 0.0 {
        // Empty queues: equal leftover capacity.
        (1.0, 1.0, 1.0)
    } else {
        (1.0 - s_up / total, 1.0 - m_up / total, 1.0 - l_up / total)
    };
    let wsum = ws + wm + wl;
    // Lines 14–17: sort and partition proportionally; bounds are the last
    // element of the small and medium partitions.
    l.sort_unstable();
    let n = l.len();
    let n_s = ((ws / wsum) * n as f64).round() as usize;
    let n_m = ((wm / wsum) * n as f64).round() as usize;
    let n_s = n_s.clamp(1, n);
    let n_m = n_m.min(n - n_s);
    let s_bound = l[n_s - 1];
    let m_bound = if n_m == 0 { s_bound } else { l[n_s + n_m - 1] };
    Some(SibsBounds { s_bound, m_bound: m_bound.max(s_bound) })
}

/// The three FIFO upload queues with the paper's ride-up policy: a transfer
/// slot of class `c` serves its own queue first, then any *lower* class —
/// "we allow lower sized jobs to travel through higher sized job queue to
/// EC. But we do not allow higher sized jobs to travel through lower sized
/// job queue."
#[derive(Clone, Debug, Default)]
pub struct SibsQueues<T> {
    queues: [VecDeque<(T, u64)>; 3],
    bytes: [u64; 3],
}

impl<T> SibsQueues<T> {
    /// Empty queues.
    pub fn new() -> Self {
        SibsQueues { queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()], bytes: [0; 3] }
    }

    /// Enqueues an item of `bytes` into its class queue.
    pub fn push(&mut self, class: SizeClass, item: T, bytes: u64) {
        self.queues[class.index()].push_back((item, bytes));
        self.bytes[class.index()] += bytes;
    }

    /// Dequeues work for a transfer slot of the given class: own queue
    /// first, then strictly lower classes (largest-lower first).
    // conform::hot_root
    pub fn pop_for(&mut self, class: SizeClass) -> Option<(T, u64)> {
        for idx in (0..=class.index()).rev() {
            if let Some((item, bytes)) = self.queues[idx].pop_front() {
                self.bytes[idx] -= bytes;
                return Some((item, bytes));
            }
        }
        None
    }

    /// Re-enqueues an item at the *head* of its class queue — used by the
    /// chaos-recovery path to retry a timed-out transfer without losing its
    /// FIFO position ahead of younger work.
    pub fn push_front(&mut self, class: SizeClass, item: T, bytes: u64) {
        self.queues[class.index()].push_front((item, bytes));
        self.bytes[class.index()] += bytes;
    }

    /// Peeks the head of one class queue without removing it.
    pub fn front(&self, class: SizeClass) -> Option<(&T, u64)> {
        self.queues[class.index()].front().map(|(t, b)| (t, *b))
    }

    /// Dequeues the head of exactly one class queue (no ride-up) — used by
    /// the pull-back rescheduling extension to reclaim a specific head job.
    pub fn pop_front_class(&mut self, class: SizeClass) -> Option<(T, u64)> {
        let (item, bytes) = self.queues[class.index()].pop_front()?;
        self.bytes[class.index()] -= bytes;
        Some((item, bytes))
    }

    /// Bytes currently queued per class `(small, medium, large)` — the
    /// `s_up/m_up/l_up` inputs of Algorithm 3.
    pub fn queued_bytes(&self) -> (u64, u64, u64) {
        (self.bytes[0], self.bytes[1], self.bytes[2])
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True iff no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(size_mb: u64, t_ec_secs: f64, e_ic: f64) -> SibsCandidate {
        SibsCandidate {
            size: size_mb * 1_000_000,
            t_up: t_ec_secs * 0.4,
            e_ec: t_ec_secs * 0.4,
            t_down: t_ec_secs * 0.2,
            e_ic,
        }
    }

    #[test]
    fn no_candidates_returns_none() {
        // EC completion slower than an empty IC: nothing qualifies.
        let batch = vec![cand(10, 1000.0, 100.0)];
        assert_eq!(sibs_bounds(&batch, 0.0, 8, (0, 0, 0)), None);
        assert_eq!(sibs_bounds(&[], 100.0, 8, (0, 0, 0)), None);
    }

    #[test]
    fn equal_leftover_splits_sorted_sizes_in_thirds() {
        // 9 candidates with distinct sizes, all qualifying easily.
        let batch: Vec<SibsCandidate> =
            (1..=9).map(|i| cand(i * 10, 10.0, 50.0)).collect();
        let b = sibs_bounds(&batch, 10_000.0, 8, (0, 0, 0))
            .expect("every candidate qualifies under a 10000 s iload");
        assert_eq!(b.s_bound, 30 * 1_000_000);
        assert_eq!(b.m_bound, 60 * 1_000_000);
    }

    #[test]
    fn fuller_queue_gets_smaller_share() {
        let batch: Vec<SibsCandidate> =
            (1..=9).map(|i| cand(i * 10, 10.0, 50.0)).collect();
        // Small queue stuffed: its leftover capacity shrinks, so its bound
        // drops relative to the balanced case.
        let stuffed = sibs_bounds(&batch, 10_000.0, 8, (80_000_000, 10_000_000, 10_000_000))
            .expect("every candidate qualifies under a 10000 s iload");
        let balanced = sibs_bounds(&batch, 10_000.0, 8, (0, 0, 0))
            .expect("every candidate qualifies under a 10000 s iload");
        assert!(stuffed.s_bound < balanced.s_bound, "{stuffed:?} vs {balanced:?}");
    }

    #[test]
    fn candidate_filter_respects_growing_rload() {
        // iload small: the first candidates qualify and push rload up; at
        // some point later candidates with slow EC estimates stop
        // qualifying. Build ECs that hover near the threshold.
        let batch: Vec<SibsCandidate> = (0..10).map(|_| cand(50, 120.0, 800.0)).collect();
        // iload 100 s, n=1: first job: t_ec=120 ≥ 100 → rejected; with n=8
        // the same job qualifies only after rload grows — it never does.
        assert_eq!(sibs_bounds(&batch, 100.0, 1, (0, 0, 0)), None);
        // Larger iload: everything qualifies.
        let b = sibs_bounds(&batch, 1_000.0, 1, (0, 0, 0))
            .expect("a 1000 s iload admits every candidate");
        assert_eq!(b.classify(50 * 1_000_000), SizeClass::Small); // all equal sizes
    }

    #[test]
    fn classify_bounds_are_inclusive() {
        let b = SibsBounds { s_bound: 100, m_bound: 200 };
        assert_eq!(b.classify(100), SizeClass::Small);
        assert_eq!(b.classify(101), SizeClass::Medium);
        assert_eq!(b.classify(200), SizeClass::Medium);
        assert_eq!(b.classify(201), SizeClass::Large);
    }

    #[test]
    fn queues_ride_up_but_never_down() {
        let mut q: SibsQueues<&str> = SibsQueues::new();
        q.push(SizeClass::Small, "s1", 10);
        q.push(SizeClass::Large, "l1", 300);
        // A large slot prefers its own queue…
        assert_eq!(q.pop_for(SizeClass::Large).expect("large queue holds l1").0, "l1");
        // …then serves lower classes.
        assert_eq!(q.pop_for(SizeClass::Large).expect("small queue rides up to a large slot").0, "s1");
        // A small slot never serves medium/large work.
        q.push(SizeClass::Medium, "m1", 100);
        assert!(q.pop_for(SizeClass::Small).is_none());
        assert_eq!(q.pop_for(SizeClass::Medium).expect("medium queue holds m1").0, "m1");
    }

    #[test]
    fn queued_bytes_tracks_pushes_and_pops() {
        let mut q: SibsQueues<u32> = SibsQueues::new();
        q.push(SizeClass::Small, 1, 10);
        q.push(SizeClass::Medium, 2, 100);
        q.push(SizeClass::Large, 3, 300);
        assert_eq!(q.queued_bytes(), (10, 100, 300));
        assert_eq!(q.len(), 3);
        q.pop_for(SizeClass::Medium);
        assert_eq!(q.queued_bytes(), (10, 0, 300));
        assert!(!q.is_empty());
    }

    #[test]
    fn medium_slot_serves_small_before_nothing() {
        let mut q: SibsQueues<&str> = SibsQueues::new();
        q.push(SizeClass::Small, "s1", 10);
        assert_eq!(q.pop_for(SizeClass::Medium).expect("small queue rides up to a medium slot").0, "s1");
        assert!(q.pop_for(SizeClass::Medium).is_none());
    }
}

//! Ground-truth bandwidth models.
//!
//! A [`BandwidthModel`] maps virtual time to the raw link capacity in
//! bytes/second — what the pipe *actually* offers, which the estimator
//! (`crate::estimator`) only ever learns approximately. All models are pure
//! functions of time (jitter included), so the simulation stays
//! deterministic and any component can query the rate at any instant
//! without shared mutable state.

use serde::{Deserialize, Serialize};

use cloudburst_sim::{SimDuration, SimTime};

/// Seconds in a (virtual) day, used by the diurnal models.
pub const SECS_PER_DAY: f64 = 86_400.0;

/// The paper's average pipe: ≈ 250 KB/s (Sec. V-B-1; calibrated per
/// DESIGN.md so transfer time is of the order of processing time).
pub const DEFAULT_MEAN_BPS: f64 = 250_000.0;

/// Ground-truth capacity of one direction of the inter-cloud pipe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum BandwidthModel {
    /// Fixed rate (bytes/sec).
    Constant(f64),
    /// Diurnal sinusoid: `base + amplitude·sin(2π(t − phase)/day)`, floored
    /// at 5 % of base. Models the time-of-day variation of Fig. 4(a).
    Diurnal {
        /// Mean rate in bytes/sec.
        base: f64,
        /// Peak deviation from the mean in bytes/sec.
        amplitude: f64,
        /// Time of the upward zero-crossing within the day, seconds.
        phase_secs: f64,
    },
    /// A 24-entry hour-of-day table (bytes/sec), repeating daily — the raw
    /// calibrated form the paper plots.
    Hourly {
        /// Rates for hours 0–23.
        rates: Vec<f64>,
    },
    /// A measured trace: `(offset_secs, bytes/sec)` step samples, held
    /// constant between samples and repeated with period `period_secs`
    /// (0 = hold the last sample forever). Lets experiments replay real
    /// bandwidth recordings.
    Trace {
        /// Step samples sorted by offset; the first offset should be 0.
        samples: Vec<(f64, f64)>,
        /// Wrap-around period in seconds (0 disables wrapping).
        period_secs: f64,
    },
    /// Multiplicative lognormal-ish jitter over an inner model, resampled
    /// every `slot` of virtual time. Deterministic: the factor for slot `i`
    /// is a pure hash of `(seed, i)`, so repeated queries agree.
    Jittered {
        /// The underlying model.
        inner: Box<BandwidthModel>,
        /// Jitter strength: factor spans roughly `[1/(1+sigma), 1+sigma]`.
        sigma: f64,
        /// Resampling quantum.
        slot: SimDuration,
        /// Jitter stream seed.
        seed: u64,
    },
}

impl BandwidthModel {
    /// The paper's baseline: ≈ 250 KB/s constant.
    pub fn paper_default() -> BandwidthModel {
        BandwidthModel::Constant(DEFAULT_MEAN_BPS)
    }

    /// A "high network variation" pipe (Fig. 9): diurnal swing plus ±40 %
    /// jitter resampled every 2 minutes.
    pub fn high_variation(seed: u64) -> BandwidthModel {
        BandwidthModel::Jittered {
            inner: Box::new(BandwidthModel::Diurnal {
                base: DEFAULT_MEAN_BPS,
                amplitude: 0.5 * DEFAULT_MEAN_BPS,
                phase_secs: 0.0,
            }),
            sigma: 0.4,
            slot: SimDuration::from_mins(2),
            seed,
        }
    }

    /// Instantaneous capacity in bytes/sec at virtual time `t` (≥ a small
    /// positive floor, so transfers always make progress).
    pub fn rate_bps(&self, t: SimTime) -> f64 {
        let raw = match self {
            BandwidthModel::Constant(r) => *r,
            BandwidthModel::Diurnal { base, amplitude, phase_secs } => {
                let x = 2.0 * std::f64::consts::PI * (t.as_secs_f64() - phase_secs) / SECS_PER_DAY;
                (base + amplitude * x.sin()).max(0.05 * base)
            }
            BandwidthModel::Hourly { rates } => {
                debug_assert_eq!(rates.len(), 24, "hourly table must have 24 entries");
                let hour = ((t.as_secs_f64() / 3600.0) as usize) % 24;
                rates[hour]
            }
            BandwidthModel::Trace { samples, period_secs } => {
                debug_assert!(!samples.is_empty(), "trace model needs samples");
                let mut secs = t.as_secs_f64();
                if *period_secs > 0.0 {
                    secs %= period_secs;
                }
                // Last sample at or before `secs`; before the first sample,
                // hold the first value. Samples are sorted by offset, so a
                // binary search replaces the per-call linear scan.
                let idx = samples.partition_point(|(at, _)| *at <= secs);
                if idx == 0 {
                    samples[0].1
                } else {
                    samples[idx - 1].1
                }
            }
            BandwidthModel::Jittered { inner, sigma, slot, seed } => {
                let slot_idx = t.as_micros() / slot.as_micros().max(1);
                let u = hash_unit(*seed, slot_idx);
                // Symmetric-in-log factor in [1/(1+σ), (1+σ)].
                let factor = (1.0 + sigma).powf(2.0 * u - 1.0);
                inner.rate_bps(t) * factor
            }
        };
        raw.max(1.0)
    }

    /// Mean rate over `[from, to)` sampled at `step` intervals — used by
    /// tests and by capacity-planning helpers.
    pub fn mean_rate_bps(&self, from: SimTime, to: SimTime, step: SimDuration) -> f64 {
        assert!(to > from && !step.is_zero());
        let mut t = from;
        let mut sum = 0.0;
        let mut n = 0u64;
        while t < to {
            sum += self.rate_bps(t);
            n += 1;
            t += step;
        }
        sum / n as f64
    }
}

/// Deterministic hash of `(seed, i)` to a unit float in `[0, 1)`.
fn hash_unit(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = BandwidthModel::Constant(1000.0);
        assert_eq!(m.rate_bps(SimTime::ZERO), 1000.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(99999)), 1000.0);
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let m = BandwidthModel::Diurnal { base: 1000.0, amplitude: 500.0, phase_secs: 0.0 };
        // Quarter day in: sin(π/2) = 1 → peak.
        let peak = m.rate_bps(SimTime::from_secs(21_600));
        let trough = m.rate_bps(SimTime::from_secs(64_800));
        assert!((peak - 1500.0).abs() < 1.0, "peak={peak}");
        assert!((trough - 500.0).abs() < 1.0, "trough={trough}");
        let mean = m.mean_rate_bps(
            SimTime::ZERO,
            SimTime::from_secs(86_400),
            SimDuration::from_secs(60),
        );
        assert!((mean - 1000.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn diurnal_floors_at_five_percent() {
        let m = BandwidthModel::Diurnal { base: 1000.0, amplitude: 5000.0, phase_secs: 0.0 };
        let trough = m.rate_bps(SimTime::from_secs(64_800));
        assert_eq!(trough, 50.0);
    }

    #[test]
    fn hourly_table_lookup_wraps_daily() {
        let mut rates = vec![100.0; 24];
        rates[3] = 777.0;
        let m = BandwidthModel::Hourly { rates };
        assert_eq!(m.rate_bps(SimTime::from_secs(3 * 3600 + 10)), 777.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(27 * 3600 + 10)), 777.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(4 * 3600)), 100.0);
    }

    #[test]
    fn jitter_is_deterministic_and_slotted() {
        let m = BandwidthModel::Jittered {
            inner: Box::new(BandwidthModel::Constant(1000.0)),
            sigma: 0.4,
            slot: SimDuration::from_mins(2),
            seed: 9,
        };
        let a = m.rate_bps(SimTime::from_secs(10));
        let b = m.rate_bps(SimTime::from_secs(100)); // same 2-min slot
        let c = m.rate_bps(SimTime::from_secs(130)); // next slot
        assert_eq!(a, b, "same slot, same factor");
        assert_ne!(a, c, "different slot, different factor");
        assert_eq!(a, m.rate_bps(SimTime::from_secs(10)), "repeat query agrees");
    }

    #[test]
    fn jitter_respects_bounds_and_keeps_mean_close() {
        let m = BandwidthModel::Jittered {
            inner: Box::new(BandwidthModel::Constant(1000.0)),
            sigma: 0.4,
            slot: SimDuration::from_secs(60),
            seed: 4,
        };
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in 0..2000 {
            let r = m.rate_bps(SimTime::from_secs(s * 60));
            min = min.min(r);
            max = max.max(r);
        }
        assert!(min >= 1000.0 / 1.4 - 1e-9, "min={min}");
        assert!(max <= 1400.0 + 1e-9, "max={max}");
        let mean = m.mean_rate_bps(
            SimTime::ZERO,
            SimTime::from_secs(2000 * 60),
            SimDuration::from_secs(60),
        );
        assert!((mean / 1000.0 - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn trace_model_steps_and_wraps() {
        let m = BandwidthModel::Trace {
            samples: vec![(0.0, 100.0), (60.0, 500.0), (120.0, 200.0)],
            period_secs: 180.0,
        };
        assert_eq!(m.rate_bps(SimTime::from_secs(0)), 100.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(59)), 100.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(60)), 500.0);
        assert_eq!(m.rate_bps(SimTime::from_secs(130)), 200.0);
        // Wraps with the period.
        assert_eq!(m.rate_bps(SimTime::from_secs(180 + 61)), 500.0);
        // Non-wrapping trace holds the last sample.
        let hold = BandwidthModel::Trace {
            samples: vec![(0.0, 100.0), (60.0, 500.0)],
            period_secs: 0.0,
        };
        assert_eq!(hold.rate_bps(SimTime::from_secs(10_000)), 500.0);
    }

    #[test]
    fn trace_lookup_matches_linear_scan_at_every_offset_class() {
        // The binary-search lookup must be bitwise-identical to the old
        // take_while linear scan: before the first sample (samples that
        // don't start at 0), exactly on a sample, between samples, after
        // the last sample, and across the wrap point.
        let samples = vec![(10.0, 100.0), (60.0, 500.0), (120.0, 200.0)];
        for &period in &[0.0, 180.0] {
            let m = BandwidthModel::Trace { samples: samples.clone(), period_secs: period };
            for probe_secs in [0, 5, 10, 11, 59, 60, 61, 119, 120, 121, 500, 10_000] {
                let t = SimTime::from_secs(probe_secs);
                let mut secs = t.as_secs_f64();
                if period > 0.0 {
                    secs %= period;
                }
                let linear = samples
                    .iter()
                    .take_while(|(at, _)| *at <= secs)
                    .last()
                    .map(|(_, r)| *r)
                    .unwrap_or(samples[0].1)
                    .max(1.0);
                assert_eq!(
                    m.rate_bps(t).to_bits(),
                    linear.to_bits(),
                    "offset {probe_secs}s (period {period})"
                );
            }
        }
    }

    #[test]
    fn trace_floors_like_other_models() {
        let m = BandwidthModel::Trace { samples: vec![(0.0, 0.0)], period_secs: 0.0 };
        assert_eq!(m.rate_bps(SimTime::ZERO), 1.0);
    }

    #[test]
    fn rate_never_hits_zero() {
        let m = BandwidthModel::Constant(0.0);
        assert_eq!(m.rate_bps(SimTime::ZERO), 1.0);
    }

    #[test]
    fn high_variation_preset_varies() {
        let m = BandwidthModel::high_variation(7);
        let rates: Vec<f64> =
            (0..100).map(|i| m.rate_bps(SimTime::from_secs(i * 300))).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let sd =
            (rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64).sqrt();
        assert!(sd / mean > 0.15, "cv={} should be high", sd / mean);
    }
}

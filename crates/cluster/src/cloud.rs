//! A pool of machines with an FCFS wait queue — one cloud (IC or EC).

use std::collections::VecDeque;

use cloudburst_sim::{SimDuration, SimTime};

use crate::machine::{Machine, MachineId};

/// The pool state a shard exchanges at an epoch barrier: everything the
/// engine's decision layer is allowed to read about one machine pool,
/// frozen at the barrier instant. Plain `Copy` data — no borrows into the
/// cloud — so boundary snapshots can cross shard workers freely while the
/// pool itself stays owned by its site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolBoundary {
    /// Jobs waiting in the FCFS queue (not yet on a machine).
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Machines currently idle (crashed machines are not idle capacity).
    pub idle: usize,
    /// Total declared drain cost of the queue, in integer microsecond
    /// ticks (the depth-flat drain's O(1) load signal).
    pub queued_cost_ticks: u64,
}

/// A job execution that finished, reported by [`Cloud::advance`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecCompletion<K> {
    /// The caller's job key.
    pub key: K,
    /// Completion instant.
    pub at: SimTime,
    /// Machine that ran the job.
    pub machine: MachineId,
    /// When execution (not queueing) started.
    pub started: SimTime,
}

#[derive(Clone, Debug)]
struct Running<K> {
    key: K,
    machine: MachineId,
    started: SimTime,
    finish: SimTime,
}

/// One FCFS queue entry: the caller's key, the ground-truth standard
/// seconds the simulation will charge, and the caller-declared *drain
/// cost* in integer microsecond ticks (typically the scheduler's estimate
/// of `exec / speed` — never ground truth). The cost rides inside the
/// queue because dispatch consumes entries internally; integer ticks make
/// the maintained total exactly invertible under mid-queue removals and
/// independent of insertion order, which f64 sums are not.
#[derive(Clone, Copy, Debug)]
struct Queued<K> {
    key: K,
    standard_secs: f64,
    cost_ticks: u64,
}

/// A simulated cloud: `n` machines, FCFS queue, deterministic service.
///
/// Passive API in the style of `cloudburst_net::Link`: the engine submits
/// work, then alternates [`Cloud::next_wake`] / [`Cloud::advance`].
#[derive(Clone, Debug)]
pub struct Cloud<K> {
    name: String,
    machines: Vec<Machine>,
    queue: VecDeque<Queued<K>>,
    /// Sum of `cost_ticks` over the queue, maintained on every queue
    /// mutation — the O(1) aggregate the engine's depth-flat fluid drain
    /// reads instead of rescanning the queue.
    queued_cost_ticks: u64,
    running: Vec<Running<K>>,
    clock: SimTime,
    completed: u64,
    /// Only machines `[0, active_limit)` accept new work — the elastic-EC
    /// scaling extension shrinks/grows this without disturbing running jobs.
    active_limit: usize,
    /// Chaos-crashed machines: excluded from dispatch until recovery.
    /// All-false on the fault-free path (`n_failed` gates every check).
    failed: Vec<bool>,
    /// Count of `true` entries in `failed`.
    n_failed: usize,
}

impl<K: Copy + PartialEq + std::fmt::Debug> Cloud<K> {
    /// Creates a cloud of `n` machines with uniform `speed`.
    pub fn homogeneous(name: impl Into<String>, n: usize, speed: f64) -> Cloud<K> {
        assert!(n >= 1, "a cloud needs at least one machine");
        Cloud {
            name: name.into(),
            machines: (0..n).map(|i| Machine::new(MachineId(i), speed)).collect(),
            queue: VecDeque::new(),
            queued_cost_ticks: 0,
            running: Vec::new(),
            clock: SimTime::ZERO,
            completed: 0,
            active_limit: n,
            failed: vec![false; n],
            n_failed: 0,
        }
    }

    /// Creates a cloud from explicit machine speeds (heterogeneous pools).
    pub fn with_speeds(name: impl Into<String>, speeds: &[f64]) -> Cloud<K> {
        assert!(!speeds.is_empty());
        Cloud {
            name: name.into(),
            machines: speeds.iter().enumerate().map(|(i, &s)| Machine::new(MachineId(i), s)).collect(),
            queue: VecDeque::new(),
            queued_cost_ticks: 0,
            running: Vec::new(),
            clock: SimTime::ZERO,
            completed: 0,
            active_limit: speeds.len(),
            failed: vec![false; speeds.len()],
            n_failed: 0,
        }
    }

    /// Limits dispatch to the first `n` machines (clamped to the pool size;
    /// at least 1). Running jobs on deactivated machines finish normally.
    pub fn set_active_limit(&mut self, n: usize) {
        self.active_limit = n.clamp(1, self.machines.len());
        self.dispatch();
    }

    /// Current dispatch limit.
    pub fn active_limit(&self) -> usize {
        self.active_limit
    }

    /// The cloud's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Machines currently idle (crashed machines are not idle capacity).
    pub fn idle_machines(&self) -> usize {
        if self.n_failed == 0 {
            return self.machines.iter().filter(|m| !m.is_busy()).count();
        }
        self.machines
            .iter()
            .zip(&self.failed)
            .filter(|(m, &f)| !m.is_busy() && !f)
            .count()
    }

    /// Machines currently crashed.
    pub fn failed_machines(&self) -> usize {
        self.n_failed
    }

    /// True iff the machine is currently crashed.
    pub fn is_failed(&self, machine: MachineId) -> bool {
        self.failed[machine.0]
    }

    /// Crashes a machine (chaos injection): it stops accepting work until
    /// [`Cloud::recover_machine`]. If a job was running there it is aborted
    /// — busy time up to `now` still accrues, the job does *not* complete —
    /// and its key plus the wasted execution span are returned so the
    /// engine can re-dispatch it and attribute the loss. No-op (returning
    /// `None`) if the machine is already down.
    pub fn fail_machine(&mut self, now: SimTime, machine: MachineId) -> Option<(K, SimDuration)> {
        assert!(now >= self.clock, "cloud must be advanced before fail_machine");
        self.clock = now;
        let idx = machine.0;
        if self.failed[idx] {
            return None;
        }
        self.failed[idx] = true;
        self.n_failed += 1;
        let pos = self.running.iter().position(|r| r.machine == machine)?;
        let r = self.running.remove(pos);
        let span = self.machines[idx].abort(now);
        Some((r.key, span))
    }

    /// Recovers a crashed machine: it rejoins the dispatchable pool and
    /// immediately pulls queued work. No-op if the machine was up.
    pub fn recover_machine(&mut self, now: SimTime, machine: MachineId) {
        assert!(now >= self.clock, "cloud must be advanced before recover_machine");
        self.clock = now;
        let idx = machine.0;
        if !self.failed[idx] {
            return;
        }
        self.failed[idx] = false;
        self.n_failed -= 1;
        self.dispatch();
    }

    /// Jobs waiting in the FCFS queue (not yet on a machine).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Keys of queued jobs in FCFS order (scheduler-observable state).
    pub fn queued_keys(&self) -> impl Iterator<Item = K> + '_ {
        self.queue.iter().map(|q| q.key)
    }

    /// Total declared drain cost of the queue, in integer microsecond
    /// ticks — O(1), maintained across submit/dispatch/cancel. Feeds the
    /// engine's fluid-prefix drain (DESIGN.md §7).
    pub fn queued_cost_ticks(&self) -> u64 {
        self.queued_cost_ticks
    }

    /// `(key, cost_ticks)` of every queued job in FCFS order — the rescan
    /// form of [`Cloud::queued_cost_ticks`], for oracles and probes.
    pub fn queued_detail(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.queue.iter().map(|q| (q.key, q.cost_ticks))
    }

    /// `(key, cost_ticks)` of the last `n` queued jobs in FCFS order (the
    /// whole queue when `n` covers it). O(1) to construct: the exact tail
    /// window of the depth-flat drain.
    pub fn queued_tail(&self, n: usize) -> impl Iterator<Item = (K, u64)> + '_ {
        let start = self.queue.len().saturating_sub(n);
        self.queue.range(start..).map(|q| (q.key, q.cost_ticks))
    }

    /// Number of jobs currently executing.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Keys of running jobs with their start times.
    pub fn running_keys(&self) -> impl Iterator<Item = (K, SimTime)> + '_ {
        self.running.iter().map(|r| (r.key, r.started))
    }

    /// Full detail of running jobs: `(key, machine, started)` — the input
    /// schedulers need to estimate per-machine drain times.
    pub fn running_detail(&self) -> impl Iterator<Item = (K, MachineId, SimTime)> + '_ {
        self.running.iter().map(|r| (r.key, r.machine, r.started))
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The epoch-barrier snapshot of this pool: the decision layer reads
    /// clouds only through this (one coherent freeze instead of piecemeal
    /// accessor calls interleaved with mutation).
    pub fn boundary(&self) -> PoolBoundary {
        PoolBoundary {
            queued: self.queue.len(),
            running: self.running.len(),
            idle: self.idle_machines(),
            queued_cost_ticks: self.queued_cost_ticks,
        }
    }

    /// Submits a job requiring `standard_secs` of standard-machine work.
    /// The caller must have advanced the cloud to `now`. The job carries a
    /// zero drain cost; callers that feed the depth-flat drain use
    /// [`Cloud::submit_weighted`] instead.
    pub fn submit(&mut self, now: SimTime, key: K, standard_secs: f64) {
        self.submit_weighted(now, key, standard_secs, 0);
    }

    /// As [`Cloud::submit`], declaring the job's estimated drain cost in
    /// integer microsecond ticks. The cost is the *caller's estimate* of
    /// the job's seconds-to-drain on this pool (the engine uses
    /// `est_exec / speed`); the cloud only aggregates it.
    pub fn submit_weighted(&mut self, now: SimTime, key: K, standard_secs: f64, cost_ticks: u64) {
        assert!(now >= self.clock, "cloud must be advanced before submit");
        self.clock = now;
        self.queue.push_back(Queued { key, standard_secs, cost_ticks });
        self.queued_cost_ticks += cost_ticks;
        self.dispatch();
    }

    /// Removes a queued (not yet running) job; used by rescheduling
    /// extensions. Returns the remaining standard seconds if found.
    pub fn cancel_queued(&mut self, key: K) -> Option<f64> {
        let idx = self.queue.iter().position(|q| q.key == key)?;
        self.queue.remove(idx).map(|q| {
            self.queued_cost_ticks -= q.cost_ticks;
            q.standard_secs
        })
    }

    /// Pops the *last* queued job (tail scan helper for the push-out
    /// rescheduling strategy of Sec. IV-D).
    pub fn pop_back_queued(&mut self) -> Option<(K, f64)> {
        self.queue.pop_back().map(|q| {
            self.queued_cost_ticks -= q.cost_ticks;
            (q.key, q.standard_secs)
        })
    }

    /// Advances to `to`, returning completions in chronological order.
    /// Test-only convenience wrapper over [`Cloud::advance_into`]: every
    /// production caller uses the buffer-reusing form, so the allocating
    /// wrapper is compiled out of non-test builds and listed under
    /// `disallowed-methods` in `clippy.toml`.
    #[cfg(test)]
    pub fn advance(&mut self, to: SimTime) -> Vec<ExecCompletion<K>> {
        let mut done = Vec::new();
        self.advance_into(to, &mut done);
        done
    }

    /// Advances to `to`, appending completions to the caller-owned `done`
    /// buffer in chronological order, so a driver loop can reuse one
    /// allocation across every wake.
    pub fn advance_into(&mut self, to: SimTime, done: &mut Vec<ExecCompletion<K>>) {
        loop {
            // Earliest finishing running job not after `to`.
            let next = self
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.finish <= to)
                .min_by_key(|(_, r)| (r.finish, r.machine))
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            let r = self.running.remove(i);
            self.clock = self.clock.max(r.finish);
            self.machines[r.machine.0].finish();
            self.completed += 1;
            done.push(ExecCompletion { key: r.key, at: r.finish, machine: r.machine, started: r.started });
            self.dispatch();
        }
        self.clock = self.clock.max(to);
    }

    /// Earliest pending completion, if any work is running.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.running.iter().map(|r| r.finish).min()
    }

    /// Assigns queued jobs to idle machines (FCFS; lowest machine id first).
    // conform::hot_root
    fn dispatch(&mut self) {
        while !self.queue.is_empty() {
            let failed = &self.failed;
            let Some(m_idx) = self.machines[..self.active_limit]
                .iter()
                .enumerate()
                .position(|(i, m)| !m.is_busy() && !failed[i])
            else {
                break;
            };
            let q = self.queue.pop_front().expect("non-empty queue");
            self.queued_cost_ticks -= q.cost_ticks;
            let (key, secs) = (q.key, q.standard_secs);
            let finish = self.machines[m_idx].start(self.clock, secs);
            self.running.push(Running {
                key,
                machine: MachineId(m_idx),
                started: self.clock,
                finish,
            });
        }
    }

    /// Average utilization over the pool up to `now` (Eq. 9).
    pub fn average_utilization(&self, now: SimTime) -> f64 {
        if self.machines.is_empty() || now == SimTime::ZERO {
            return 0.0;
        }
        self.machines.iter().map(|m| m.utilization(now)).sum::<f64>() / self.machines.len() as f64
    }

    /// Total busy machine-time up to `now`.
    pub fn total_busy(&self, now: SimTime) -> SimDuration {
        self.machines
            .iter()
            .fold(SimDuration::ZERO, |acc, m| acc + m.busy_time(now))
    }

    /// Read access to the machine pool.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }
}

#[cfg(test)]
// Unit tests are the sanctioned consumer of the allocating `advance`
// wrapper (it only exists under cfg(test)).
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_fcfs() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.submit(SimTime::ZERO, 1, 100.0);
        c.submit(SimTime::ZERO, 2, 50.0);
        assert_eq!(c.queued(), 1);
        let done = c.advance(SimTime::from_secs(200));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].key, 1);
        assert_eq!(done[0].at, SimTime::from_secs(100));
        assert_eq!(done[1].key, 2);
        assert_eq!(done[1].at, SimTime::from_secs(150));
        assert_eq!(c.completed(), 2);
    }

    #[test]
    fn parallel_machines_run_concurrently() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 2, 1.0);
        c.submit(SimTime::ZERO, 1, 100.0);
        c.submit(SimTime::ZERO, 2, 100.0);
        c.submit(SimTime::ZERO, 3, 100.0);
        let done = c.advance(SimTime::from_secs(100));
        assert_eq!(done.len(), 2, "two run in parallel");
        let done2 = c.advance(SimTime::from_secs(200));
        assert_eq!(done2.len(), 1);
        assert_eq!(done2[0].at, SimTime::from_secs(200));
    }

    #[test]
    fn next_wake_is_earliest_finish() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 2, 1.0);
        assert_eq!(c.next_wake(), None);
        c.submit(SimTime::ZERO, 1, 100.0);
        c.submit(SimTime::ZERO, 2, 60.0);
        assert_eq!(c.next_wake(), Some(SimTime::from_secs(60)));
    }

    #[test]
    fn freed_machine_picks_next_queued() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.submit(SimTime::ZERO, 1, 10.0);
        c.submit(SimTime::ZERO, 2, 10.0);
        c.submit(SimTime::ZERO, 3, 10.0);
        let done = c.advance(SimTime::from_secs(25));
        assert_eq!(done.iter().map(|d| d.key).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.queued(), 0, "third is running");
        assert_eq!(c.running(), 1);
    }

    #[test]
    fn heterogeneous_speeds() {
        let mut c: Cloud<u32> = Cloud::with_speeds("ec", &[1.0, 4.0]);
        c.submit(SimTime::ZERO, 1, 100.0); // machine 0 (slow): 100 s
        c.submit(SimTime::ZERO, 2, 100.0); // machine 1 (fast): 25 s
        let done = c.advance(SimTime::from_secs(100));
        assert_eq!(done[0].key, 2);
        assert_eq!(done[0].at, SimTime::from_secs(25));
        assert_eq!(done[1].key, 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 2, 1.0);
        c.submit(SimTime::ZERO, 1, 50.0);
        c.advance(SimTime::from_secs(100));
        // One machine busy 50 of 100 s, the other idle → average 25 %.
        assert!((c.average_utilization(SimTime::from_secs(100)) - 0.25).abs() < 1e-12);
        assert_eq!(c.total_busy(SimTime::from_secs(100)), SimDuration::from_secs(50));
    }

    #[test]
    fn cancel_and_pop_back() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.submit(SimTime::ZERO, 1, 10.0);
        c.submit(SimTime::ZERO, 2, 20.0);
        c.submit(SimTime::ZERO, 3, 30.0);
        assert_eq!(c.cancel_queued(2), Some(20.0));
        assert_eq!(c.cancel_queued(2), None);
        assert_eq!(c.cancel_queued(1), None, "running job cannot be cancelled");
        assert_eq!(c.pop_back_queued(), Some((3, 30.0)));
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn queued_cost_ticks_track_every_queue_mutation() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        let rescan = |c: &Cloud<u32>| c.queued_detail().map(|(_, t)| t).sum::<u64>();
        c.submit_weighted(SimTime::ZERO, 1, 10.0, 7); // runs immediately
        assert_eq!(c.queued_cost_ticks(), 0, "running jobs carry no queue cost");
        c.submit_weighted(SimTime::ZERO, 2, 20.0, 100);
        c.submit_weighted(SimTime::ZERO, 3, 30.0, 200);
        c.submit_weighted(SimTime::ZERO, 4, 40.0, 400);
        assert_eq!(c.queued_cost_ticks(), 700);
        assert_eq!(c.queued_cost_ticks(), rescan(&c));
        // Mid-queue removal subtracts exactly (integer ticks invert).
        assert_eq!(c.cancel_queued(3), Some(30.0));
        assert_eq!(c.queued_cost_ticks(), 500);
        assert_eq!(c.pop_back_queued(), Some((4, 40.0)));
        assert_eq!(c.queued_cost_ticks(), 100);
        // Dispatch pops the front and subtracts.
        c.advance(SimTime::from_secs(10));
        assert_eq!(c.queued_cost_ticks(), 0);
        assert_eq!(c.queued_cost_ticks(), rescan(&c));
        // Plain submit declares zero cost.
        c.submit(SimTime::from_secs(10), 5, 10.0);
        c.submit(SimTime::from_secs(10), 6, 10.0);
        assert_eq!(c.queued_cost_ticks(), 0);
    }

    #[test]
    fn queued_tail_returns_last_n_in_fcfs_order() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        for (i, w) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            c.submit_weighted(SimTime::ZERO, i, 5.0, w);
        }
        // Job 1 is running; 2, 3, 4 queued.
        assert_eq!(c.queued_tail(2).collect::<Vec<_>>(), vec![(3, 30), (4, 40)]);
        assert_eq!(c.queued_tail(99).collect::<Vec<_>>(), vec![(2, 20), (3, 30), (4, 40)]);
        assert_eq!(c.queued_tail(0).count(), 0);
        assert_eq!(c.queued_detail().collect::<Vec<_>>(), vec![(2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn queued_keys_reflect_fcfs_order() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.submit(SimTime::ZERO, 1, 10.0);
        c.submit(SimTime::ZERO, 2, 10.0);
        c.submit(SimTime::ZERO, 3, 10.0);
        assert_eq!(c.queued_keys().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn failed_machine_aborts_job_and_leaves_pool() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 2, 1.0);
        c.submit(SimTime::ZERO, 1, 100.0);
        c.submit(SimTime::ZERO, 2, 100.0);
        c.submit(SimTime::ZERO, 3, 100.0);
        assert_eq!(c.idle_machines(), 0);
        // Crash machine 0 mid-job: job 1 comes back for re-dispatch, the
        // waiting job 3 must NOT land on the dead machine.
        c.advance(SimTime::from_secs(40));
        let aborted = c.fail_machine(SimTime::from_secs(40), MachineId(0));
        assert_eq!(aborted, Some((1, SimDuration::from_secs(40))));
        assert_eq!(c.failed_machines(), 1);
        assert!(c.is_failed(MachineId(0)));
        assert_eq!(c.running(), 1, "only machine 1's job survives");
        assert_eq!(c.idle_machines(), 0, "dead machine is not idle capacity");
        // Busy time accrued up to the crash, but no completion counted.
        assert_eq!(c.machines()[0].busy_time(SimTime::from_secs(40)), SimDuration::from_secs(40));
        assert_eq!(c.machines()[0].completed(), 0);
        // Job 2 finishes at t=100; job 3 then starts on machine 1 (not 0).
        let done = c.advance(SimTime::from_secs(100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].key, 2);
        assert_eq!(c.running_detail().next().map(|(k, m, _)| (k, m)), Some((3, MachineId(1))));
        // Double-fail is a no-op.
        assert_eq!(c.fail_machine(SimTime::from_secs(100), MachineId(0)), None);
    }

    #[test]
    fn recovered_machine_pulls_queued_work() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.fail_machine(SimTime::ZERO, MachineId(0));
        c.submit(SimTime::ZERO, 1, 10.0);
        assert_eq!(c.queued(), 1, "dead pool queues instead of running");
        assert_eq!(c.next_wake(), None);
        c.recover_machine(SimTime::from_secs(5), MachineId(0));
        assert_eq!(c.queued(), 0);
        assert_eq!(c.running(), 1);
        let done = c.advance(SimTime::from_secs(20));
        assert_eq!(done[0].at, SimTime::from_secs(15), "started at recovery");
        // Recovering an up machine is a no-op.
        c.recover_machine(SimTime::from_secs(20), MachineId(0));
        assert_eq!(c.failed_machines(), 0);
    }

    #[test]
    fn fail_idle_machine_returns_no_job() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 2, 1.0);
        assert_eq!(c.fail_machine(SimTime::ZERO, MachineId(1)), None);
        c.submit(SimTime::ZERO, 1, 10.0);
        assert_eq!(c.running_detail().next().map(|(_, m, _)| m), Some(MachineId(0)));
        assert_eq!(c.idle_machines(), 0);
    }

    #[test]
    fn submissions_at_different_times() {
        let mut c: Cloud<u32> = Cloud::homogeneous("ic", 1, 1.0);
        c.submit(SimTime::ZERO, 1, 100.0);
        c.advance(SimTime::from_secs(30));
        c.submit(SimTime::from_secs(30), 2, 10.0);
        let done = c.advance(SimTime::from_secs(500));
        assert_eq!(done[0].at, SimTime::from_secs(100));
        assert_eq!(done[1].at, SimTime::from_secs(110));
        assert_eq!(done[1].started, SimTime::from_secs(100));
    }
}

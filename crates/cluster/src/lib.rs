//! `cloudburst-cluster` — simulated compute clouds.
//!
//! Stands in for the paper's prototype infrastructure (8-VM Hadoop cluster
//! in the internal cloud, Amazon Elastic MapReduce in the external cloud —
//! Sec. III-B / V-A). Because the workload is embarrassingly parallel and
//! modelled at job/chunk granularity, a cloud reduces to a pool of machines
//! with an FCFS wait queue: exactly the state the paper's schedulers
//! observe. See DESIGN.md §2 for the substitution argument.
//!
//! The cloud is a passive component in the same style as
//! `cloudburst_net::Link`: the engine calls [`Cloud::advance`] to collect
//! completions up to the current instant and [`Cloud::next_wake`] to learn
//! when the next machine frees up.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cloud;
pub mod machine;

pub use cloud::{Cloud, ExecCompletion, PoolBoundary};
pub use machine::{Machine, MachineId};

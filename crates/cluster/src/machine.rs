//! A single simulated machine (printer controller / cloud instance).

use cloudburst_sim::{SimDuration, SimTime};

/// Machine identifier, unique within its cloud.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub usize);

/// One execution slot. `speed` scales service times: a job that takes `s`
/// seconds on a standard machine takes `s / speed` here.
#[derive(Clone, Debug)]
pub struct Machine {
    id: MachineId,
    speed: f64,
    /// When the current job finishes, if busy.
    busy_until: Option<SimTime>,
    /// Cumulative busy time (for the utilization metric, Eq. 8).
    busy_total: SimDuration,
    /// Start of the current job, if busy.
    started: Option<SimTime>,
    /// Jobs completed on this machine.
    completed: u64,
}

impl Machine {
    /// Creates an idle machine.
    pub fn new(id: MachineId, speed: f64) -> Machine {
        assert!(speed > 0.0, "machine speed must be positive");
        Machine { id, speed, busy_until: None, busy_total: SimDuration::ZERO, started: None, completed: 0 }
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Speed factor relative to a standard machine.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// True iff a job is running.
    pub fn is_busy(&self) -> bool {
        self.busy_until.is_some()
    }

    /// Completion time of the running job, if any.
    pub fn busy_until(&self) -> Option<SimTime> {
        self.busy_until
    }

    /// Starts a job with `standard_secs` of work at `now`; returns the
    /// completion time. Panics if already busy.
    pub fn start(&mut self, now: SimTime, standard_secs: f64) -> SimTime {
        assert!(!self.is_busy(), "machine {:?} already busy", self.id);
        assert!(standard_secs >= 0.0);
        let finish = now + SimDuration::from_secs_f64(standard_secs / self.speed);
        self.busy_until = Some(finish);
        self.started = Some(now);
        finish
    }

    /// Marks the running job finished at its completion time. Panics if the
    /// machine is idle. Returns the job's busy span.
    pub fn finish(&mut self) -> SimDuration {
        let until = self.busy_until.take().expect("finish on idle machine");
        let started = self.started.take().expect("busy machine has a start time");
        let span = until - started;
        self.busy_total += span;
        self.completed += 1;
        span
    }

    /// Aborts the running job at `now` (machine crash): busy time up to
    /// `now` still counts, but the job is *not* completed — the caller owns
    /// re-dispatching it. Returns the aborted span. Panics if idle.
    pub fn abort(&mut self, now: SimTime) -> SimDuration {
        let until = self.busy_until.take().expect("abort on idle machine");
        let started = self.started.take().expect("busy machine has a start time");
        let span = now.min(until) - started;
        self.busy_total += span;
        span
    }

    /// Cumulative busy time, including the in-progress job up to `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match (self.started, self.busy_until) {
            (Some(s), Some(u)) => self.busy_total + (now.min(u) - s),
            _ => self.busy_total,
        }
    }

    /// Utilization over `[0, now]` (Eq. 8): busy time / elapsed time.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time(now).as_secs_f64() / now.as_secs_f64()
    }

    /// Jobs completed on this machine.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_finish_cycle() {
        let mut m = Machine::new(MachineId(0), 1.0);
        assert!(!m.is_busy());
        let finish = m.start(SimTime::from_secs(10), 100.0);
        assert_eq!(finish, SimTime::from_secs(110));
        assert!(m.is_busy());
        assert_eq!(m.busy_until(), Some(finish));
        let span = m.finish();
        assert_eq!(span, SimDuration::from_secs(100));
        assert!(!m.is_busy());
        assert_eq!(m.completed(), 1);
    }

    #[test]
    fn speed_scales_service_time() {
        let mut fast = Machine::new(MachineId(1), 2.0);
        assert_eq!(fast.start(SimTime::ZERO, 100.0), SimTime::from_secs(50));
        let mut slow = Machine::new(MachineId(2), 0.5);
        assert_eq!(slow.start(SimTime::ZERO, 100.0), SimTime::from_secs(200));
    }

    #[test]
    fn busy_time_counts_partial_progress() {
        let mut m = Machine::new(MachineId(0), 1.0);
        m.start(SimTime::ZERO, 100.0);
        assert_eq!(m.busy_time(SimTime::from_secs(40)), SimDuration::from_secs(40));
        // Clamped at the completion time even if queried later.
        assert_eq!(m.busy_time(SimTime::from_secs(400)), SimDuration::from_secs(100));
        m.finish();
        assert_eq!(m.busy_time(SimTime::from_secs(400)), SimDuration::from_secs(100));
    }

    #[test]
    fn utilization_is_fractional() {
        let mut m = Machine::new(MachineId(0), 1.0);
        m.start(SimTime::ZERO, 50.0);
        m.finish();
        assert!((m.utilization(SimTime::from_secs(100)) - 0.5).abs() < 1e-12);
        assert_eq!(Machine::new(MachineId(1), 1.0).utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn abort_accrues_partial_busy_without_completion() {
        let mut m = Machine::new(MachineId(0), 2.0);
        m.start(SimTime::ZERO, 100.0); // would finish at t=50
        let span = m.abort(SimTime::from_secs(30));
        assert_eq!(span, SimDuration::from_secs(30));
        assert!(!m.is_busy());
        assert_eq!(m.completed(), 0, "aborted job is not a completion");
        assert_eq!(m.busy_time(SimTime::from_secs(100)), SimDuration::from_secs(30));
        // Machine is reusable after an abort.
        assert_eq!(m.start(SimTime::from_secs(60), 100.0), SimTime::from_secs(110));
    }

    #[test]
    #[should_panic(expected = "abort on idle machine")]
    fn abort_idle_panics() {
        Machine::new(MachineId(0), 1.0).abort(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_panics() {
        let mut m = Machine::new(MachineId(0), 1.0);
        m.start(SimTime::ZERO, 10.0);
        m.start(SimTime::ZERO, 10.0);
    }

    #[test]
    #[should_panic(expected = "idle machine")]
    fn finish_idle_panics() {
        Machine::new(MachineId(0), 1.0).finish();
    }
}

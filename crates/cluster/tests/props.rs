//! Property tests for the compute-cloud substrate: FCFS discipline, work
//! conservation and utilization accounting under arbitrary submissions.

use proptest::prelude::*;

use cloudburst_cluster::Cloud;
use cloudburst_sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every submitted job completes exactly once; completions are
    /// chronological; total busy time equals total work (homogeneous
    /// speed-1 pool).
    #[test]
    fn work_is_conserved(
        services in prop::collection::vec(1u64..2_000, 1..40),
        submit_gaps in prop::collection::vec(0u64..100, 40),
        n_machines in 1usize..6,
    ) {
        let mut cloud: Cloud<usize> = Cloud::homogeneous("p", n_machines, 1.0);
        let mut t = SimTime::ZERO;
        let mut done = Vec::new();
        for (i, &svc) in services.iter().enumerate() {
            t += SimDuration::from_secs(submit_gaps[i]);
            cloud.advance_into(t, &mut done);
            cloud.submit(t, i, svc as f64);
        }
        while let Some(w) = cloud.next_wake() {
            cloud.advance_into(w, &mut done);
        }
        prop_assert_eq!(done.len(), services.len());
        let mut ids: Vec<usize> = done.iter().map(|c| c.key).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..services.len()).collect::<Vec<_>>());
        for w in done.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Each job ran for exactly its service time.
        for c in &done {
            let svc = services[c.key] as f64;
            prop_assert!(((c.at - c.started).as_secs_f64() - svc).abs() < 1e-6);
        }
        // Busy time equals total work.
        let end = done.iter().map(|c| c.at).max().unwrap();
        let total_work: u64 = services.iter().sum();
        prop_assert!(
            (cloud.total_busy(end).as_secs_f64() - total_work as f64).abs() < 1e-3
        );
        // Utilization is bounded by 1 and consistent with busy time.
        let u = cloud.average_utilization(end);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    /// Execution *starts* follow FCFS: job i never starts after job j > i
    /// when both were queued (single machine ⇒ completion order is exactly
    /// submission order).
    #[test]
    fn single_machine_is_fcfs(services in prop::collection::vec(1u64..500, 1..30)) {
        let mut cloud: Cloud<usize> = Cloud::homogeneous("p", 1, 1.0);
        for (i, &svc) in services.iter().enumerate() {
            cloud.submit(SimTime::ZERO, i, svc as f64);
        }
        let mut done = Vec::new();
        while let Some(w) = cloud.next_wake() {
            cloud.advance_into(w, &mut done);
        }
        let ids: Vec<usize> = done.iter().map(|c| c.key).collect();
        prop_assert_eq!(ids, (0..services.len()).collect::<Vec<_>>());
        // Completion time telescopes to the prefix sum of services.
        let mut acc = 0.0;
        for c in &done {
            acc += services[c.key] as f64;
            prop_assert!((c.at.as_secs_f64() - acc).abs() < 1e-6);
        }
    }

    /// Shrinking the active limit delays completions but loses nothing;
    /// restoring it drains the queue.
    #[test]
    fn active_limit_throttles_without_loss(
        services in prop::collection::vec(10u64..200, 4..20),
        limit in 1usize..3,
    ) {
        let mut cloud: Cloud<usize> = Cloud::homogeneous("p", 4, 1.0);
        cloud.set_active_limit(limit);
        for (i, &svc) in services.iter().enumerate() {
            cloud.submit(SimTime::ZERO, i, svc as f64);
        }
        // Run half the work, then scale back up.
        let half = SimTime::from_secs(services.iter().sum::<u64>() / 2);
        let mut done = Vec::new();
        cloud.advance_into(half, &mut done);
        cloud.set_active_limit(4);
        while let Some(w) = cloud.next_wake() {
            cloud.advance_into(w, &mut done);
        }
        prop_assert_eq!(done.len(), services.len());
        prop_assert_eq!(cloud.queued(), 0);
    }
}

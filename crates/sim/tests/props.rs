//! Property tests for the DES kernel: ordering, cancellation, run_until
//! semantics and RNG stream independence under arbitrary inputs.

use std::collections::BTreeSet;

use proptest::prelude::*;

use cloudburst_sim::process::Ticker;
use cloudburst_sim::{EventId, RngFactory, Sim, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events fire exactly once, in (time, insertion) order.
    #[test]
    fn total_order_with_stable_ties(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        for (idx, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<(u64, usize)>, sim| {
                w.push((sim.now().as_micros(), idx));
            });
        }
        let mut seen = Vec::new();
        sim.run(&mut seen);
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset prevents exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..120),
        cancel_mask in prop::collection::vec(any::<bool>(), 120),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<usize>, _| w.push(i))
            })
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(sim.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut seen = Vec::new();
        sim.run(&mut seen);
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// run_until(t) fires exactly the events at or before t and leaves the
    /// clock at t; a subsequent run() finishes the rest.
    #[test]
    fn run_until_partitions_cleanly(
        times in prop::collection::vec(1u64..1_000, 1..100),
        cut in 1u64..1_000,
    ) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        let mut seen = Vec::new();
        sim.run_until(&mut seen, SimTime::from_micros(cut));
        prop_assert!(seen.iter().all(|&t| t <= cut));
        prop_assert_eq!(sim.now(), SimTime::from_micros(cut));
        let before = seen.len();
        sim.run(&mut seen);
        prop_assert!(seen[before..].iter().all(|&t| t > cut));
        prop_assert_eq!(seen.len(), times.len());
    }

    /// Ticker fires ⌊horizon / period⌋ times at exact multiples.
    #[test]
    fn ticker_count_matches_horizon(period in 1u64..50, horizon in 1u64..2_000) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        Ticker::start(
            &mut sim,
            SimDuration::from_micros(period),
            Some(SimTime::from_micros(horizon)),
            |w: &mut Vec<u64>, sim, _| w.push(sim.now().as_micros()),
        );
        let mut seen = Vec::new();
        sim.run(&mut seen);
        prop_assert_eq!(seen.len() as u64, horizon / period);
        for (i, &t) in seen.iter().enumerate() {
            prop_assert_eq!(t, (i as u64 + 1) * period);
        }
    }

    /// Interleaved schedule/cancel/step with slab slot reuse: a cancelled
    /// event never fires, nothing fires twice, a spent id cannot cancel the
    /// slot's next occupant, and no `EventId` is ever issued twice (the
    /// generation half of the id keeps reused slots distinguishable).
    #[test]
    fn slot_reuse_never_confuses_ids(
        ops in prop::collection::vec((0u8..4, 0u64..40, 0usize..1 << 20), 1..400),
    ) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut live: Vec<(EventId, u64)> = Vec::new();
        let mut spent: Vec<EventId> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut issued: BTreeSet<EventId> = BTreeSet::new();
        let mut token = 0u64;
        let mut log: Vec<u64> = Vec::new();
        for (op, delay, pick) in ops {
            match op {
                // Biased 2:1 toward scheduling so slots churn through reuse.
                0 | 1 => {
                    let tk = token;
                    token += 1;
                    let id = sim
                        .schedule_in(SimDuration::from_micros(delay), move |w: &mut Vec<u64>, _| {
                            w.push(tk)
                        });
                    prop_assert!(issued.insert(id), "EventId issued twice: {:?}", id);
                    live.push((id, tk));
                }
                2 => {
                    if !live.is_empty() {
                        let (id, tk) = live.swap_remove(pick % live.len());
                        prop_assert!(sim.cancel(id));
                        prop_assert!(!sim.cancel(id), "double-cancel succeeded");
                        cancelled.push(tk);
                        spent.push(id);
                    }
                }
                _ => {
                    let before = log.len();
                    if sim.step(&mut log) {
                        let tk = log[before];
                        if let Some(i) = live.iter().position(|&(_, t)| t == tk) {
                            spent.push(live.swap_remove(i).0);
                        }
                    }
                }
            }
            // A fired or cancelled id must stay inert even after its slot
            // has been handed to a newer event.
            if let Some(&stale) = spent.last() {
                prop_assert!(!sim.cancel(stale), "stale id cancelled a live event");
            }
        }
        sim.run(&mut log);
        let fired: BTreeSet<u64> = log.iter().copied().collect();
        prop_assert_eq!(fired.len(), log.len(), "an event fired twice");
        for tk in &cancelled {
            prop_assert!(!fired.contains(tk), "cancelled event fired");
        }
        prop_assert_eq!(log.len() + cancelled.len(), token as usize);
    }

    /// RNG streams: same label reproduces, different labels decorrelate.
    #[test]
    fn rng_streams_reproduce(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::Rng;
        let f = RngFactory::new(seed);
        let a: Vec<u64> = {
            let mut r = f.stream(&label);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(&label);
            (0..4).map(|_| r.gen()).collect()
        };
        prop_assert_eq!(&a, &b);
        let c: u64 = f.stream(&format!("{label}/x")).gen();
        prop_assert_ne!(a[0], c);
    }
}

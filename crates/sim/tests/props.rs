//! Property tests for the DES kernel: ordering, cancellation, run_until
//! semantics and RNG stream independence under arbitrary inputs.

use proptest::prelude::*;

use cloudburst_sim::process::Ticker;
use cloudburst_sim::{RngFactory, Sim, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events fire exactly once, in (time, insertion) order.
    #[test]
    fn total_order_with_stable_ties(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        for (idx, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<(u64, usize)>, sim| {
                w.push((sim.now().as_micros(), idx));
            });
        }
        let mut seen = Vec::new();
        sim.run(&mut seen);
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset prevents exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..120),
        cancel_mask in prop::collection::vec(any::<bool>(), 120),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<usize>, _| w.push(i))
            })
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(sim.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut seen = Vec::new();
        sim.run(&mut seen);
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// run_until(t) fires exactly the events at or before t and leaves the
    /// clock at t; a subsequent run() finishes the rest.
    #[test]
    fn run_until_partitions_cleanly(
        times in prop::collection::vec(1u64..1_000, 1..100),
        cut in 1u64..1_000,
    ) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        let mut seen = Vec::new();
        sim.run_until(&mut seen, SimTime::from_micros(cut));
        prop_assert!(seen.iter().all(|&t| t <= cut));
        prop_assert_eq!(sim.now(), SimTime::from_micros(cut));
        let before = seen.len();
        sim.run(&mut seen);
        prop_assert!(seen[before..].iter().all(|&t| t > cut));
        prop_assert_eq!(seen.len(), times.len());
    }

    /// Ticker fires ⌊horizon / period⌋ times at exact multiples.
    #[test]
    fn ticker_count_matches_horizon(period in 1u64..50, horizon in 1u64..2_000) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        Ticker::start(
            &mut sim,
            SimDuration::from_micros(period),
            Some(SimTime::from_micros(horizon)),
            |w: &mut Vec<u64>, sim, _| w.push(sim.now().as_micros()),
        );
        let mut seen = Vec::new();
        sim.run(&mut seen);
        prop_assert_eq!(seen.len() as u64, horizon / period);
        for (i, &t) in seen.iter().enumerate() {
            prop_assert_eq!(t, (i as u64 + 1) * period);
        }
    }

    /// RNG streams: same label reproduces, different labels decorrelate.
    #[test]
    fn rng_streams_reproduce(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::Rng;
        let f = RngFactory::new(seed);
        let a: Vec<u64> = {
            let mut r = f.stream(&label);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(&label);
            (0..4).map(|_| r.gen()).collect()
        };
        prop_assert_eq!(&a, &b);
        let c: u64 = f.stream(&format!("{label}/x")).gen();
        prop_assert_ne!(a[0], c);
    }
}

//! Golden determinism for the slab kernel: the exact same event program
//! must produce the exact same firing trace whether it runs on a virgin
//! slab (slots freshly grown) or on a recycled one (every slot pulled off
//! the free list). Slot indices and free-list order are allowed to differ
//! between the two phases — the observable trace is not.

use cloudburst_sim::{Sim, SimDuration};

/// Deterministic pseudo-random offsets with plenty of exact ties, so the
/// FIFO tie-break is exercised as hard as the time ordering.
fn offsets(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i.wrapping_mul(2_654_435_761)) % 97).collect()
}

/// Runs one round of the program: schedule `n` events relative to `now`,
/// cancel every third one, run to completion, and return the trace of
/// (relative firing time, token) pairs.
fn run_round(sim: &mut Sim<Vec<(u64, usize)>>, n: usize) -> Vec<(u64, usize)> {
    let start = sim.now();
    let ids: Vec<_> = offsets(n)
        .into_iter()
        .enumerate()
        .map(|(token, off)| {
            sim.schedule_in(SimDuration::from_micros(off), move |w: &mut Vec<(u64, usize)>, s| {
                w.push((s.now().as_micros(), token));
            })
        })
        .collect();
    for id in ids.iter().skip(1).step_by(3) {
        assert!(sim.cancel(*id));
    }
    let mut trace = Vec::new();
    sim.run(&mut trace);
    for (t, _) in &mut trace {
        *t -= start.as_micros();
    }
    trace
}

#[test]
fn trace_is_identical_before_and_after_slot_reuse() {
    let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
    let first = run_round(&mut sim, 400);
    let grown = sim.slot_capacity();

    // Round two replays the identical program on the now-populated free
    // list: every schedule recycles a slot instead of growing the slab.
    let second = run_round(&mut sim, 400);
    assert_eq!(sim.slot_capacity(), grown, "round two should reuse, not grow");
    assert_eq!(first, second, "slot reuse changed the observable trace");

    // And the trace itself is the golden shape: time-sorted with FIFO ties.
    for w in first.windows(2) {
        assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
    }
    assert_eq!(first.len(), 400 - 133, "400 scheduled, every third of 399 cancelled");
}

//! Virtual time for the simulation kernel.
//!
//! Time is stored as an integer number of microseconds since the start of the
//! simulation. Integer time gives a total order (events never compare equal
//! due to floating-point fuzz) and makes runs bit-reproducible across
//! platforms. Conversions to/from `f64` seconds are provided at the edges for
//! model code that naturally works in seconds (bandwidth, service rates).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Microseconds per second, as used by all conversions in this module.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant of virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time (non-negative, microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never" by schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input saturates to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; used as "infinite" by schedulers.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input saturates to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative scalar, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_to_micros(self.as_secs_f64() * k))
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if !s.is_finite() {
        return if s > 0.0 { u64::MAX } else { 0 };
    }
    let us = (s * MICROS_PER_SEC as f64).round();
    if us <= 0.0 {
        0
    } else if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(12.345678);
        assert_eq!(t.as_micros(), 12_345_678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_secs(7));
        // saturating: an "earlier minus later" span clamps to zero
        assert_eq!(SimTime::from_secs(3) - SimTime::from_secs(10), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(2));
    }

    #[test]
    fn ordering_is_total_and_integer_based() {
        let a = SimTime::from_secs_f64(1.000001);
        let b = SimTime::from_secs_f64(1.000002);
        // both round to distinct microseconds
        assert!(a < b);
        assert_eq!(SimTime::from_secs_f64(1.0000000001), SimTime::from_secs(1));
    }

    #[test]
    fn helpers() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
        assert_eq!(SimDuration::from_millis(1500).as_micros(), 1_500_000);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
        assert_eq!(
            SimDuration::from_secs(5).saturating_sub(SimDuration::from_secs(9)),
            SimDuration::ZERO
        );
    }
}

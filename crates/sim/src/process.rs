//! Recurring-process helpers on top of the raw event queue.
//!
//! A [`Ticker`] fires a handler on a fixed period until stopped or until an
//! optional horizon is reached — used by the autonomic layer for periodic
//! bandwidth probes and by the metrics layer for OO-metric sampling.

use std::cell::Cell;
use std::rc::Rc;

use crate::event::Sim;
use crate::time::{SimDuration, SimTime};

/// Handle controlling a periodic process started by [`Ticker::start`].
///
/// Dropping the handle does *not* stop the ticker; call [`TickerHandle::stop`].
#[derive(Clone, Debug)]
pub struct TickerHandle {
    alive: Rc<Cell<bool>>,
}

impl TickerHandle {
    /// Stops the ticker; the next scheduled tick becomes a no-op.
    pub fn stop(&self) {
        self.alive.set(false);
    }

    /// True if the ticker has not been stopped.
    pub fn is_running(&self) -> bool {
        self.alive.get()
    }
}

/// A periodic event source.
#[derive(Debug)]
pub struct Ticker;

impl Ticker {
    /// Starts a periodic process firing `f(world, sim, tick_index)` every
    /// `period`, with the first tick after one full period. If `horizon` is
    /// `Some(t)`, ticks strictly after `t` are suppressed and the process
    /// ends.
    pub fn start<W: 'static>(
        sim: &mut Sim<W>,
        period: SimDuration,
        horizon: Option<SimTime>,
        f: impl FnMut(&mut W, &mut Sim<W>, u64) + 'static,
    ) -> TickerHandle {
        assert!(!period.is_zero(), "ticker period must be positive");
        let alive = Rc::new(Cell::new(true));
        let handle = TickerHandle { alive: alive.clone() };
        schedule_tick(sim, period, horizon, alive, Box::new(f), 0);
        handle
    }
}

type TickFn<W> = Box<dyn FnMut(&mut W, &mut Sim<W>, u64)>;

fn schedule_tick<W: 'static>(
    sim: &mut Sim<W>,
    period: SimDuration,
    horizon: Option<SimTime>,
    alive: Rc<Cell<bool>>,
    mut f: TickFn<W>,
    index: u64,
) {
    let at = sim.now() + period;
    if let Some(h) = horizon {
        if at > h {
            return;
        }
    }
    sim.schedule_at(at, move |w, sim| {
        if !alive.get() {
            return;
        }
        f(w, sim, index);
        if alive.get() {
            schedule_tick(sim, period, horizon, alive, f, index + 1);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_on_period() {
        let mut sim: Sim<Vec<(u64, u64)>> = Sim::new();
        Ticker::start(
            &mut sim,
            SimDuration::from_secs(2),
            Some(SimTime::from_secs(7)),
            |w: &mut Vec<(u64, u64)>, sim, i| w.push((i, sim.now().as_micros())),
        );
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![(0, 2_000_000), (1, 4_000_000), (2, 6_000_000)]);
    }

    #[test]
    fn stop_halts_future_ticks() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let h = Ticker::start(
            &mut sim,
            SimDuration::from_secs(1),
            None,
            |w: &mut Vec<u64>, sim, _| w.push(sim.now().as_micros()),
        );
        sim.schedule_at(SimTime::from_secs_f64(2.5), move |_, _| h.stop());
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![1_000_000, 2_000_000]);
    }

    #[test]
    fn handler_can_stop_itself() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let alive_probe: Rc<Cell<Option<TickerHandle>>> = Rc::new(Cell::new(None));
        let slot = alive_probe.clone();
        let h = Ticker::start(&mut sim, SimDuration::from_secs(1), None, move |w: &mut Vec<u64>, _, i| {
            w.push(i);
            if i == 2 {
                if let Some(h) = slot.take() {
                    h.stop();
                }
            }
        });
        alive_probe.set(Some(h));
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let mut sim: Sim<()> = Sim::new();
        Ticker::start(&mut sim, SimDuration::ZERO, None, |_, _, _| {});
    }
}

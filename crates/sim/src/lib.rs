//! `cloudburst-sim` — a small, deterministic discrete-event simulation (DES)
//! kernel used by every other crate in the cloudburst workspace.
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time with
//!   total ordering (no floating-point time comparisons anywhere in the hot
//!   path).
//! * [`Sim`] — an event queue with a stable FIFO tie-break for simultaneous
//!   events, cancellation tokens, and `run`/`run_until`/`step` drivers. The
//!   kernel is generic over a user-supplied world state `W`, so higher layers
//!   (network, cluster, full pipeline) plug their own state in without any
//!   dynamic downcasting.
//! * [`rng`] — reproducible per-component random streams derived from a single
//!   experiment seed, so every figure in the paper regenerates byte-identically.
//! * [`ShardPool`] — deterministic intra-run fan-out: pure per-item work runs
//!   on scoped workers and merges back in input order, byte-identical for any
//!   worker count (the sharded engine's epoch-barrier building block).
//!
//! # Example
//!
//! ```
//! use cloudburst_sim::{Sim, SimDuration, SimTime};
//!
//! let mut sim: Sim<Vec<u64>> = Sim::new();
//! sim.schedule_in(SimDuration::from_secs(5), |w: &mut Vec<u64>, sim| {
//!     w.push(sim.now().as_micros());
//! });
//! let mut world = Vec::new();
//! sim.run(&mut world);
//! assert_eq!(world, vec![5_000_000]);
//! assert_eq!(sim.now(), SimTime::from_secs(5));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod event;
pub mod fxhash;
pub mod process;
pub mod rng;
pub mod shard;
pub mod time;

pub use event::{EventId, Sim};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::RngFactory;
pub use shard::ShardPool;
pub use time::{SimDuration, SimTime};

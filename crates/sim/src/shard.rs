//! Intra-run shard orchestration: deterministic parallel fan-out.
//!
//! A [`ShardPool`] runs *pure, per-item* work on worker threads and writes
//! each result into its input-indexed slot, so the composed output is a
//! pure function of the input — byte-identical for any worker count,
//! including the inline `workers == 1` path. It is the epoch-barrier
//! building block of the sharded engine: between two barriers the engine
//! fans independent per-job computations (admission estimate precompute,
//! report sections) out over shards, then merges them back in id order
//! before the next sequential decision step.
//!
//! Safety/discipline notes, in the house style:
//!
//! * No `unsafe`: disjoint output chunks are handed to workers as
//!   `Mutex<&mut [R]>` slices (each mutex is locked exactly once, by the
//!   worker that claims the chunk off the shared atomic work queue —
//!   uncontended by construction).
//! * Thread nondeterminism cannot leak into results: workers never share
//!   mutable state beyond the claim counter, and every result lands in a
//!   slot determined by its input index. The `#[cfg(test)]` oracle
//!   re-runs the closure inline and asserts slot-for-slot equality on
//!   every parallel call in test builds.
//! * Steady-state allocation: the inline path allocates nothing beyond
//!   the caller's (reusable, amortized) output buffer; the parallel path
//!   allocates `O(chunks + workers)` *per fan-out call* — never per item.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// How many chunks each worker gets on average: small enough that claiming
/// a chunk amortizes the atomic, large enough that an early-finishing
/// worker finds more work instead of idling at the barrier.
const CHUNKS_PER_WORKER: usize = 4;

/// A bounded worker pool for deterministic intra-run fan-out.
///
/// The pool itself holds no threads — workers are scoped to each call, so
/// a `ShardPool` is just a worker-count policy and is cheap to store on
/// the engine world. `workers <= 1` short-circuits every operation to an
/// inline, allocation-free serial run.
#[derive(Clone, Copy, Debug)]
pub struct ShardPool {
    workers: usize,
}

impl ShardPool {
    /// Creates a pool with the given worker count; `0` means "auto" (the
    /// machine's available parallelism). The count only affects wall-clock
    /// speed, never results.
    pub fn new(workers: usize) -> ShardPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |c| c.get())
        } else {
            workers
        };
        ShardPool { workers }
    }

    /// The resolved worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items`, writing `f(i, &items[i])` into `out[i]`.
    /// `out` is cleared and resized to `items.len()`; reusing the same
    /// buffer across calls makes the inline path allocation-free once its
    /// capacity has warmed up.
    ///
    /// `f` must be deterministic per item (every engine use is: pure reads
    /// of frozen snapshot state). Under that contract the output is
    /// byte-identical for every worker count.
    pub fn map_ordered_into<T, R, F>(&self, items: &[T], out: &mut Vec<R>, f: F)
    where
        T: Sync,
        R: Send + Clone + Default + PartialEq + std::fmt::Debug,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        out.clear();
        out.resize(n, R::default());
        if n == 0 {
            return;
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            for (i, (slot, item)) in out.iter_mut().zip(items).enumerate() {
                *slot = f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut [R]>> = out.chunks_mut(chunk).map(Mutex::new).collect();
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= slots.len() {
                        break;
                    }
                    let base = c * chunk;
                    let mut guard = slots[c].lock();
                    for (k, slot) in guard.iter_mut().enumerate() {
                        *slot = f(base + k, &items[base + k]);
                    }
                });
            }
        })
        .expect("shard pool worker panicked");

        // In test builds, every parallel fan-out is checked against an
        // inline re-run: the merged output must be slot-for-slot equal to
        // a serial evaluation, or thread scheduling has leaked into the
        // results.
        #[cfg(test)]
        for (i, (got, item)) in out.iter().zip(items).enumerate() {
            let want = f(i, item);
            assert_eq!(*got, want, "shard oracle: slot {i} diverged from inline run");
        }
    }

    /// Runs two independent tasks, in parallel when the pool has spare
    /// workers, and returns `(fa(), fb())`. At `workers <= 1` the tasks
    /// run inline in that fixed order — results must not depend on
    /// ordering for the parallel path to be equivalent, which holds for
    /// every engine use (disjoint report sections).
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.workers <= 1 {
            let a = fa();
            let b = fb();
            return (a, b);
        }
        let mut out_a = None;
        let mut out_b = None;
        crossbeam::scope(|scope| {
            let handle = scope.spawn(move |_| fa());
            out_b = Some(fb());
            out_a = Some(handle.join().expect("shard pool join task panicked"));
        })
        .expect("shard pool worker panicked");
        (
            out_a.expect("join task a completed"),
            out_b.expect("join task b completed"),
        )
    }
}

impl Default for ShardPool {
    /// The auto-sized pool (available parallelism).
    fn default() -> ShardPool {
        ShardPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_identical_across_worker_counts() {
        let items: Vec<u64> = (0..1037).collect();
        let f = |i: usize, &x: &u64| {
            assert_eq!(i as u64, x);
            // A result whose bytes would expose any index mix-up.
            (x * 2654435761) ^ (x << 7)
        };
        let mut reference: Vec<u64> = Vec::new();
        ShardPool::new(1).map_ordered_into(&items, &mut reference, f);
        for workers in [2, 3, 4, 8] {
            let mut out: Vec<u64> = Vec::new();
            ShardPool::new(workers).map_ordered_into(&items, &mut out, f);
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let pool = ShardPool::new(8);
        let mut out: Vec<u64> = vec![99; 5];
        pool.map_ordered_into(&[], &mut out, |_, &x: &u64| x);
        assert!(out.is_empty());
        pool.map_ordered_into(&[7u64], &mut out, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn map_reuses_output_capacity() {
        let pool = ShardPool::new(1);
        let items: Vec<u64> = (0..256).collect();
        let mut out: Vec<u64> = Vec::new();
        pool.map_ordered_into(&items, &mut out, |_, &x| x);
        let cap = out.capacity();
        for _ in 0..4 {
            pool.map_ordered_into(&items, &mut out, |_, &x| x * 2);
            assert_eq!(out.capacity(), cap, "warm buffer must not reallocate");
        }
    }

    #[test]
    fn auto_pool_resolves_to_at_least_one_worker() {
        assert!(ShardPool::new(0).workers() >= 1);
        assert!(ShardPool::default().workers() >= 1);
        assert_eq!(ShardPool::new(3).workers(), 3);
    }

    #[test]
    fn join_returns_both_results_in_order() {
        for workers in [1, 4] {
            let pool = ShardPool::new(workers);
            let xs: Vec<u64> = (0..100).collect();
            let (a, b) = pool.join(
                || xs.iter().sum::<u64>(),
                || xs.iter().map(|x| x * x).sum::<u64>(),
            );
            assert_eq!(a, 4950, "workers={workers}");
            assert_eq!(b, 328350, "workers={workers}");
        }
    }
}

//! Deterministic per-component random streams.
//!
//! Each stochastic component of an experiment (arrival process, job sizes,
//! bandwidth jitter, service noise, …) draws from its own RNG derived from
//! the experiment's master seed plus a stable component label. Adding a new
//! component therefore never perturbs the streams of existing components,
//! which keeps regression comparisons between code versions meaningful.
//!
//! The derivation is FNV-1a over the label folded into the seed through a
//! few rounds of splitmix64 — dependency-free and stable across platforms and
//! compiler versions (unlike `std::hash::DefaultHasher`, whose algorithm is
//! unspecified).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible [`StdRng`] streams from one master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The master seed this factory was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG stream for a component label, e.g. `"arrivals"` or
    /// `"bandwidth/jitter"`. The same `(seed, label)` pair always yields the
    /// same stream.
    pub fn stream(&self, label: &str) -> StdRng {
        let mut state = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        StdRng::from_seed(key)
    }

    /// Convenience for per-entity streams: `stream` with a numeric suffix.
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        let mut state = splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        StdRng::from_seed(key)
    }
}

/// FNV-1a 64-bit hash (stable, public-domain constants).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One round of splitmix64 (Steele, Lea, Flood 2014) — a strong, cheap
/// bit-mixing finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> = f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream_indexed("m", 0).gen();
        let b: u64 = f.stream_indexed("m", 1).gen();
        assert_ne!(a, b);
        let a2: u64 = f.stream_indexed("m", 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}

//! A tiny FxHash-style hasher for small integer keys.
//!
//! The engine keys its transfer bookkeeping maps by dense `u64` ids; the
//! default SipHash is DoS-resistant but an order of magnitude slower than
//! needed for trusted in-process keys. This is the classic multiply-rotate
//! mix used by rustc's FxHash: one rotate, one xor, one multiply per word.
//! Not DoS-resistant — never use it on attacker-controlled keys.

// This module is the sanctioned exception to the no-std-hash-maps rule: it
// instantiates HashMap/HashSet with the explicit, deterministic
// FxBuildHasher. Mirrors the determinism/default-hasher waiver in
// conform.toml.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc-fx multiplier (64-bit golden-ratio-derived odd constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single word folded once per input word.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for trusted integer-keyed maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_distributes() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        // Distinct small keys hash to distinct values (sanity, not rigor).
        let mut seen = FxHashSet::default();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}

//! The event queue and simulation driver.
//!
//! Events are `FnOnce(&mut W, &mut Sim<W>)` closures ordered by
//! `(time, sequence)`. The monotone sequence number gives simultaneous events
//! a stable first-scheduled-first-fired order, which is essential for
//! reproducibility: two runs with the same seed execute the exact same event
//! interleaving.
//!
//! # Hot-path layout
//!
//! The heap holds only `Copy` `(time, seq, slot)` triples; the closure and
//! liveness state live in a generational slab indexed by `slot`. An
//! [`EventId`] carries both the slot index and the event's globally unique
//! sequence number, so a lookup is one bounds-checked array access plus a
//! `seq` comparison — no hashing anywhere.
//!
//! Cancellation drops the closure immediately and vacates the slot (the slot
//! goes on a free list for reuse); the heap entry becomes a stale triple
//! that is discarded when it reaches the head. Both [`Sim::cancel`] and the
//! driver eagerly pop stale triples off the head, so the head of the heap is
//! always a live event and [`Sim::peek_next`] is a read-only `&self` peek.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// The id stays valid (and inert) after the event fires or is cancelled:
/// the slab slot is generational, so a reused slot cannot be confused with
/// the event that previously occupied it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// Sentinel for "no free slot" in the slab free list.
const NIL: u32 = u32::MAX;

enum Slot<W> {
    Vacant { next_free: u32 },
    Occupied { seq: u64, f: EventFn<W> },
}

/// Capacity floor (entries) below which the kernel never bothers shrinking:
/// a heap or slab this small is noise next to the world state.
const SHRINK_FLOOR: usize = 1024;

/// Fired-event mask between shrink checks: every 4096th event pays one
/// comparison pair; an actual shrink additionally costs O(len) and only
/// triggers in a trough (live ≪ capacity), so sustained load amortizes it
/// to nothing.
const SHRINK_CHECK_MASK: u64 = 0xFFF;

/// Snapshot of the kernel's storage footprint, for RSS attribution by the
/// memory probes: how much of the process's heap is event machinery versus
/// world state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityStats {
    /// Live (scheduled, not cancelled) events.
    pub pending: usize,
    /// Heap triples currently stored, including stale cancelled entries
    /// below the head.
    pub heap_len: usize,
    /// Allocated heap capacity in triples.
    pub heap_capacity: usize,
    /// Slab slots currently addressable (occupied + free-listed).
    pub slab_len: usize,
    /// Allocated slab capacity in slots.
    pub slab_capacity: usize,
    /// Trough-triggered shrinks performed so far (heap and slab count
    /// separately).
    pub shrinks: u64,
}

/// What the heap orders: a `Copy` triple, closure stored out-of-line in the
/// slab so sift-up/down moves 24 bytes and never touches an allocator.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    // Reversed so the std max-heap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulator over a world state `W`.
///
/// The world is passed by `&mut` into every event, alongside the simulator
/// itself so events can schedule follow-up events. See the crate docs for an
/// example.
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<HeapEntry>,
    seq: u64,
    /// Generational slab: slot `i` of a live event holds its closure and
    /// seq; vacated slots chain into a free list for reuse.
    slots: Vec<Slot<W>>,
    free_head: u32,
    live: usize,
    fired: u64,
    shrinks: u64,
}

impl<W> std::fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty simulator at `t = 0`.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            fired: 0,
            shrinks: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Number of slab slots ever allocated — the high-water mark of
    /// simultaneously pending events, not the total scheduled (diagnostics).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Storage-footprint snapshot for RSS attribution (see [`CapacityStats`]).
    pub fn capacity_stats(&self) -> CapacityStats {
        CapacityStats {
            pending: self.live,
            heap_len: self.queue.len(),
            heap_capacity: self.queue.capacity(),
            slab_len: self.slots.len(),
            slab_capacity: self.slots.capacity(),
            shrinks: self.shrinks,
        }
    }

    /// Trough-triggered capacity release. After a burst, the heap and slab
    /// retain their high-water allocations forever unless shrunk; this
    /// releases them once occupancy falls below a quarter of capacity,
    /// keeping 2× the live set as headroom so a rebound does not thrash.
    ///
    /// Deterministic: triggered from [`Sim::step`] on a fired-event counter,
    /// and every condition is a pure function of simulation state. Slot ids
    /// handed out after a slab shrink differ from the never-shrunk run, but
    /// firing order is `(time, seq)` — slot numbering never reaches the
    /// simulation's observable behavior.
    fn maybe_shrink(&mut self) {
        if self.queue.capacity() > SHRINK_FLOOR && self.queue.len() * 4 < self.queue.capacity() {
            self.queue.shrink_to((self.queue.len() * 2).max(SHRINK_FLOOR));
            self.shrinks += 1;
        }
        if self.slots.len() > SHRINK_FLOOR && self.live * 4 < self.slots.len() {
            // Only trailing vacant slots can be released (occupied slots are
            // pinned by pending EventIds); stop at 2× live for headroom.
            let floor = (self.live * 2).max(SHRINK_FLOOR);
            let mut keep = self.slots.len();
            while keep > floor && matches!(self.slots[keep - 1], Slot::Vacant { .. }) {
                keep -= 1;
            }
            if keep < self.slots.len() {
                self.slots.truncate(keep);
                self.slots.shrink_to(keep * 2);
                // The free list may chain through truncated slots: rebuild it
                // over the survivors, low slots first, so reuse order stays a
                // pure function of slab contents.
                self.free_head = NIL;
                for (i, s) in self.slots.iter_mut().enumerate().rev() {
                    if let Slot::Vacant { next_free } = s {
                        *next_free = self.free_head;
                        self.free_head = i as u32;
                    }
                }
                self.shrinks += 1;
            }
        }
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to fire
    /// at the current time instead (it will run before the driver advances
    /// the clock), and in debug builds this panics to surface the bug.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let f: EventFn<W> = Box::new(f);
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            let reused = std::mem::replace(&mut self.slots[slot as usize], Slot::Occupied { seq, f });
            match reused {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied { .. } => unreachable!("free list pointed at an occupied slot"),
            }
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "event slab exhausted");
            self.slots.push(Slot::Occupied { seq, f });
            (self.slots.len() - 1) as u32
        };
        self.live += 1;
        self.queue.push(HeapEntry { at, seq, slot });
        EventId { seq, slot }
    }

    /// Schedules `f` to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, f)
    }

    /// Schedules `f` to fire at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// `true` if `id` refers to a still-pending event.
    fn is_live(&self, seq: u64, slot: u32) -> bool {
        matches!(
            self.slots.get(slot as usize),
            Some(Slot::Occupied { seq: s, .. }) if *s == seq
        )
    }

    /// Takes the closure out of `slot`, vacating it onto the free list.
    /// Caller must have checked liveness.
    fn vacate(&mut self, slot: u32) -> EventFn<W> {
        let vacant = Slot::Vacant { next_free: self.free_head };
        match std::mem::replace(&mut self.slots[slot as usize], vacant) {
            Slot::Occupied { f, .. } => {
                self.free_head = slot;
                self.live -= 1;
                f
            }
            Slot::Vacant { .. } => unreachable!("vacated a vacant slot"),
        }
    }

    /// Pops stale (cancelled) triples off the heap head so the head — and
    /// therefore [`Sim::peek_next`] — always reflects a live event.
    fn compact_head(&mut self) {
        while let Some(e) = self.queue.peek() {
            if self.is_live(e.seq, e.slot) {
                break;
            }
            self.queue.pop();
        }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will now never fire), `false` if it already fired or
    /// was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id.seq, id.slot) {
            return false;
        }
        // Drop the closure now; its heap triple is discarded when it
        // surfaces at the head.
        drop(self.vacate(id.slot));
        self.compact_head();
        true
    }

    /// Pops and fires the next live event. Returns `false` when the queue is
    /// exhausted.
    // conform::hot_root
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        // compact_head keeps the head live; a stale pop means the invariant
        // broke somewhere.
        debug_assert!(self.is_live(ev.seq, ev.slot), "stale event at compacted head");
        let f = self.vacate(ev.slot);
        self.compact_head();
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.fired += 1;
        if self.fired & SHRINK_CHECK_MASK == 0 {
            self.maybe_shrink();
        }
        f(world, self);
        true
    }

    /// Runs until no events remain.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs events up to and including time `until`; the clock ends at
    /// `until` (or at the last event if the queue drains first — in that case
    /// the clock is advanced to `until`). Events scheduled after `until`
    /// remain pending.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.peek_next() {
                Some(at) if at <= until => {
                    let fired = self.step(world);
                    if !fired {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Time of the next live event, if any. Read-only: cancelled events are
    /// compacted off the head eagerly, never here.
    pub fn peek_next(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_in(SimDuration::from_secs(1), |_, sim| {
            sim.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<u64>, sim| {
                w.push(sim.now().as_micros());
            });
        });
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![2_000_000]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let id = sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new();
        assert!(!sim.cancel(EventId { seq: 42, slot: 7 }));
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaks_nothing() {
        let mut sim: Sim<u32> = Sim::new();
        let id = sim.schedule_at(SimTime::from_secs(1), |w: &mut u32, _| *w += 1);
        let mut w = 0;
        sim.run(&mut w);
        assert_eq!(w, 1);
        assert!(!sim.cancel(id), "already-fired event cannot be cancelled");
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn stale_id_cannot_cancel_slot_reuser() {
        // a fires (or is cancelled), its slot is reused by b; a's old id
        // must not cancel b.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        assert!(sim.cancel(a));
        let b = sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        assert_eq!(a.slot, b.slot, "test premise: slot is reused");
        assert!(!sim.cancel(a), "stale id must not hit the reused slot");
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn slots_are_reused_not_grown() {
        let mut sim: Sim<u64> = Sim::new();
        // Self-rescheduling chain: never more than one pending event.
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 1000 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_now(tick);
        let mut w = 0u64;
        sim.run(&mut w);
        assert_eq!(w, 1000);
        assert_eq!(sim.slot_capacity(), 1, "chain must reuse a single slot");
    }

    #[test]
    fn run_until_is_not_fooled_by_cancelled_head() {
        // Regression: a cancelled event at the head of the queue with
        // at <= until must not cause a live event beyond `until` to fire.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let dead = sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        sim.cancel(dead);
        let mut w = Vec::new();
        sim.run_until(&mut w, SimTime::from_secs(3));
        assert!(w.is_empty(), "nothing live at or before t=3: {w:?}");
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        let mut w = Vec::new();
        sim.run_until(&mut w, SimTime::from_secs(3));
        assert_eq!(w, vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w, vec![1, 5]);
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim: Sim<()> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), |_, _| {});
        sim.schedule_at(SimTime::from_secs(2), |_, _| {});
        sim.cancel(a);
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn peek_next_live_after_interleaved_cancels() {
        // Cancel mid-heap entries, then fire past them: the head must stay
        // live at every observation point.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let ids: Vec<EventId> = (1..=10)
            .map(|s| sim.schedule_at(SimTime::from_secs(s), move |w: &mut Vec<u32>, _| w.push(s as u32)))
            .collect();
        for &id in &ids[2..8] {
            sim.cancel(id);
        }
        let mut w = Vec::new();
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(1)));
        assert!(sim.step(&mut w));
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
        assert!(sim.step(&mut w));
        // Events 3..=8 are cancelled; head must already point at 9.
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(9)));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 9, 10]);
    }

    #[test]
    fn pending_counts_live_events() {
        let mut sim: Sim<()> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), |_, _| {});
        sim.schedule_at(SimTime::from_secs(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn burst_then_trough_releases_capacity() {
        // Schedule a large burst at one instant, drain it, then tick long
        // enough past the burst for the shrink check to fire: both the heap
        // and the slab must fall back toward the (tiny) live set.
        let mut sim: Sim<u64> = Sim::new();
        let burst = 40_000u64;
        for i in 0..burst {
            sim.schedule_at(SimTime::from_secs(1), move |w: &mut u64, _| *w += i & 1);
        }
        let mut w = 0u64;
        sim.run(&mut w);
        let at_peak = sim.capacity_stats();
        assert!(at_peak.slab_len >= burst as usize);

        // Self-rescheduling chain: one live event, many fired events.
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 2 * 0x1000 + 2 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        let mut w = 0u64;
        sim.schedule_now(tick);
        sim.run(&mut w);
        let after = sim.capacity_stats();
        assert!(after.shrinks > 0, "trough must trigger a shrink: {after:?}");
        assert!(
            after.slab_len <= SHRINK_FLOOR,
            "slab must shrink to the floor: {after:?}"
        );
        assert!(
            after.heap_capacity <= SHRINK_FLOOR,
            "heap must shrink to the floor: {after:?}"
        );
    }

    #[test]
    fn stale_id_is_inert_after_slab_shrink() {
        // An EventId whose slot was truncated by a shrink must report
        // not-live instead of indexing out of bounds.
        let mut sim: Sim<u64> = Sim::new();
        let ids: Vec<EventId> = (0..40_000)
            .map(|_| sim.schedule_at(SimTime::from_secs(1), |w: &mut u64, _| *w += 1))
            .collect();
        let mut w = 0u64;
        sim.run(&mut w);
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 2 * 0x1000 + 2 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        let mut w = 0u64;
        sim.schedule_now(tick);
        sim.run(&mut w);
        assert!(sim.capacity_stats().slab_len < ids.len(), "premise: slab shrank");
        for id in ids {
            assert!(!sim.cancel(id), "fired-then-truncated id must stay inert");
        }
    }

    #[test]
    fn shrink_preserves_pending_events_and_order() {
        // Live events scheduled far apart survive interleaved shrinks and
        // still fire in (time, seq) order.
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for i in 0..40_000u64 {
            sim.schedule_at(SimTime::from_secs(1), move |w: &mut Vec<u64>, _| {
                if i == 0 {
                    w.push(0);
                }
            });
        }
        // Survivors beyond the churn below.
        sim.schedule_at(SimTime::from_secs(100_000), |w: &mut Vec<u64>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(100_001), |w: &mut Vec<u64>, _| w.push(2));
        // The handler signature is fixed by `Sim<Vec<u64>>`, slice or not.
        #[allow(clippy::ptr_arg)]
        fn tick(_w: &mut Vec<u64>, sim: &mut Sim<Vec<u64>>) {
            if sim.now() < SimTime::from_secs(99_000) {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_at(SimTime::from_secs(2), tick);
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![0, 1, 2]);
        assert!(sim.capacity_stats().shrinks > 0);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, sim| {
            w.push(1);
            sim.schedule_now(|w: &mut Vec<u32>, _| w.push(3));
        });
        sim.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }
}

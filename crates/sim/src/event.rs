//! The event queue and simulation driver.
//!
//! Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures ordered by
//! `(time, sequence)`. The monotone sequence number gives simultaneous events
//! a stable first-scheduled-first-fired order, which is essential for
//! reproducibility: two runs with the same seed execute the exact same event
//! interleaving.
//!
//! Cancellation is tombstone-based: [`Sim::cancel`] marks the event id dead
//! and the driver drops dead events when they surface at the head of the
//! heap. This keeps `cancel` O(1) amortized without requiring a decrease-key
//! heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed so the std max-heap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulator over a world state `W`.
///
/// The world is passed by `&mut` into every event, alongside the simulator
/// itself so events can schedule follow-up events. See the crate docs for an
/// example.
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    seq: u64,
    /// Tombstones for cancelled-but-not-yet-popped events.
    cancelled: HashSet<u64>,
    /// Seqs currently scheduled and not cancelled — the authority on
    /// whether an id is still live (fired and cancelled ids are absent).
    live: HashSet<u64>,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty simulator at `t = 0`.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            cancelled: HashSet::new(),
            live: HashSet::new(),
            fired: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to fire
    /// at the current time instead (it will run before the driver advances
    /// the clock), and in debug builds this panics to surface the bug.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.live.insert(seq);
        self.queue.push(Scheduled { at, seq, f: Box::new(f) });
        EventId(seq)
    }

    /// Schedules `f` to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, f)
    }

    /// Schedules `f` to fire at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will now never fire), `false` if it already fired or
    /// was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            // Tombstone; the driver drops it when it surfaces at the head.
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pops and fires the next live event. Returns `false` when the queue is
    /// exhausted.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.live.remove(&ev.seq);
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.fired += 1;
            (ev.f)(world, self);
            return true;
        }
    }

    /// Runs until no events remain.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs events up to and including time `until`; the clock ends at
    /// `until` (or at the last event if the queue drains first — in that case
    /// the clock is advanced to `until`). Events scheduled after `until`
    /// remain pending.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            // peek_next (not queue.peek) so a cancelled event at the head
            // cannot trick the loop into firing a live event beyond `until`.
            match self.peek_next() {
                Some(at) if at <= until => {
                    let fired = self.step(world);
                    if !fired {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        // Drop dead events off the head so the answer reflects a live event.
        while let Some(ev) = self.queue.peek() {
            if self.cancelled.contains(&ev.seq) {
                let ev = self.queue.pop().expect("peeked");
                self.cancelled.remove(&ev.seq);
            } else {
                return Some(ev.at);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            sim.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_in(SimDuration::from_secs(1), |_, sim| {
            sim.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<u64>, sim| {
                w.push(sim.now().as_micros());
            });
        });
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![2_000_000]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let id = sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_leaks_nothing() {
        let mut sim: Sim<u32> = Sim::new();
        let id = sim.schedule_at(SimTime::from_secs(1), |w: &mut u32, _| *w += 1);
        let mut w = 0;
        sim.run(&mut w);
        assert_eq!(w, 1);
        assert!(!sim.cancel(id), "already-fired event cannot be cancelled");
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn run_until_is_not_fooled_by_cancelled_head() {
        // Regression: a cancelled event at the head of the queue with
        // at <= until must not cause a live event beyond `until` to fire.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let dead = sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        sim.cancel(dead);
        let mut w = Vec::new();
        sim.run_until(&mut w, SimTime::from_secs(3));
        assert!(w.is_empty(), "nothing live at or before t=3: {w:?}");
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_secs(5), |w: &mut Vec<u32>, _| w.push(5));
        let mut w = Vec::new();
        sim.run_until(&mut w, SimTime::from_secs(3));
        assert_eq!(w, vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w, vec![1, 5]);
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim: Sim<()> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), |_, _| {});
        sim.schedule_at(SimTime::from_secs(2), |_, _| {});
        sim.cancel(a);
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut sim: Sim<()> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), |_, _| {});
        sim.schedule_at(SimTime::from_secs(2), |_, _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, sim| {
            w.push(1);
            sim.schedule_now(|w: &mut Vec<u32>, _| w.push(3));
        });
        sim.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, _| w.push(2));
        let mut w = Vec::new();
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }
}

//! Long-run serving memory plateau (ISSUE 9, satellite 3).
//!
//! Drives an open stream for dozens of windows with chaos armed and the
//! counting allocator installed, draining closed window rows as it goes.
//! The O(live-jobs) claim: once the slab and scratch warm up, live heap
//! bytes stop growing with stream length — the per-window high-water mark
//! of the last window stays within 1.5x of the first post-warm-up window.
//!
//! Own binary on purpose: the allocator counter is process-global.

use cloudburst_chaos::FaultProfile;
use cloudburst_core::{ExperimentConfig, SchedulerKind, ServeConfig, ServeHarness};
use cloudburst_sim::{SimDuration, SimTime};
use cloudburst_sla::WindowConfig;
use cloudburst_testsupport::{high_water_bytes, reset_high_water, CountingAlloc};
use cloudburst_workload::{OpenArrivalConfig, SizeBucket};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn live_bytes_plateau_over_a_long_stream() {
    // A stable estate (fast machines, small-biased jobs, utilization well
    // under 1) so live jobs plateau; exec faults armed so the recovery
    // path's scratch is part of the measured steady state.
    let mut cfg = ExperimentConfig {
        seed: 9090,
        scheduler: SchedulerKind::OrderPreserving,
        training_docs: 150,
        ..ExperimentConfig::default()
    };
    cfg.ic_speed = 4.0;
    cfg.rescheduling = true;
    cfg.faults = Some(FaultProfile {
        exec_failure_prob: 0.05,
        ..FaultProfile::dormant()
    });
    let window = SimDuration::from_secs(7_200);
    let horizon_windows = 24u64; // 48 simulated hours
    cfg.serve = Some(ServeConfig {
        arrivals: OpenArrivalConfig {
            epoch: SimDuration::from_secs(120),
            jobs_per_epoch: 10.0,
            bucket: SizeBucket::SmallBiased,
            envelope: cloudburst_workload::RateEnvelope::Flat,
            burst: None,
        },
        horizon: window * horizon_windows,
        window: WindowConfig { window, oo_tolerance: 0 },
    });

    let mut harness = ServeHarness::new(&cfg);
    // Warm-up: slab growth to the live high-water mark, QRSM ring fill,
    // event-slot and scratch capacity growth all happen here.
    let warmup = 3u64;
    harness.run_until(SimTime::ZERO + window * warmup);
    harness.world_mut().drain_serve_windows();

    let mut peaks: Vec<(u64, usize)> = Vec::new();
    for k in warmup..horizon_windows {
        reset_high_water();
        harness.run_until(SimTime::ZERO + window * (k + 1));
        let rows = harness.world_mut().drain_serve_windows();
        assert!(rows.len() <= 2, "window buffer must stay O(1), saw {}", rows.len());
        peaks.push((k, high_water_bytes()));
    }
    harness.run();
    let admitted = harness.world().serve_admitted_jobs();
    let (report, _world) = harness.finish();
    assert_eq!(report.jobs_completed, admitted, "stream must drain");
    assert!(
        admitted > 10_000,
        "stream too small to witness a plateau: {admitted} jobs"
    );

    let (first_k, first) = peaks.first().copied().expect("post-warm-up windows");
    let (last_k, last) = peaks.last().copied().expect("post-warm-up windows");
    assert!(
        (last as f64) <= 1.5 * first as f64,
        "live-bytes high-water grew: window {first_k} = {first} B vs window {last_k} = {last} B \
         over {admitted} jobs (curve: {peaks:?})"
    );
}

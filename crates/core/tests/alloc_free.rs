//! Verifies the tentpole acceptance criterion of the sub-linear decision
//! loop: once warm, a steady-state decision sweep — load-model refresh via
//! the indexed free-time drain, plus pull-back and push-out evaluation —
//! performs zero heap allocations.
//!
//! This is an integration test on purpose: the library is compiled without
//! `cfg(test)`, so the in-crate rescan oracles (which allocate) are not in
//! the measured path — exactly the production configuration.
//!
//! The run carries a dormant chaos profile (`cfg.faults =
//! Some(FaultProfile::dormant())`): the fault-injection plumbing must not
//! cost the steady state a single allocation when no faults are armed.
//!
//! The paper-scale estate here stays at or below `DRAIN_WINDOW`, pinning
//! the exact-replay branch; `alloc_free_deep.rs` (its own binary, own
//! process-global counter) repeats the sweep with the queue thousands of
//! jobs past the window so the hybrid drain's fluid prefix, λ re-base and
//! tail-window push-out pool are covered too.

use cloudburst_chaos::FaultProfile;
use cloudburst_core::{EngineHarness, ExperimentConfig, SchedulerKind};
use cloudburst_sim::RngFactory;
use cloudburst_testsupport::{allocations, CountingAlloc};
use cloudburst_workload::{BatchArrivals, SizeBucket};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

// One test function: the counter is process-global, so concurrent tests in
// this binary would pollute each other's deltas.
#[test]
fn steady_state_decision_sweep_is_allocation_free() {
    // The paper estate under a heavy large-biased workload with the
    // rescheduling extension on: deep IC queues so pull-back and push-out
    // have real candidate sets to evaluate every sweep.
    let mut cfg =
        ExperimentConfig::paper(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, 9);
    cfg.arrivals.jobs_per_batch = 60.0;
    cfg.rescheduling = true;
    cfg.faults = Some(FaultProfile::dormant());

    let rngs = RngFactory::new(cfg.seed);
    let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
    let mut h = EngineHarness::new(&cfg, batches);

    // Advance to a mid-flight state: several batches admitted, queues and
    // links busy.
    h.run_until(cloudburst_sim::SimTime::from_secs(9 * 60));
    let now = h.now();
    let w = h.world_mut();
    assert!(w.outstanding_jobs() > 0, "mid-run state must have work in flight");

    // Warm-up: let the sweep reach its fixed point (no further pull-backs
    // or push-outs fire at this instant) and size every scratch buffer.
    let mut moves = (w.pull_backs(), w.push_outs());
    for _ in 0..32 {
        w.decision_sweep(now);
        let after = (w.pull_backs(), w.push_outs());
        if after == moves {
            break;
        }
        moves = after;
    }

    let (n, _) = allocations(|| {
        for _ in 0..100 {
            w.decision_sweep(now);
        }
    });
    assert_eq!(n, 0, "steady-state decision sweep must not allocate");

    // The run still completes correctly after being probed.
    h.run();
    let (report, _world) = h.finish();
    assert!(report.makespan_secs > 0.0);
}

//! Per-worker steady-state allocation discipline for the sharded engine
//! (own binary, own process-global counter, mirroring `alloc_free.rs`):
//!
//! * the `ShardPool` inline path is allocation-free once its output
//!   buffer has warmed up;
//! * the parallel path's allocations are per *fan-out call* — `O(chunks +
//!   workers)`, measured identical for a 1 000-item and a 10 000-item
//!   map — never per item;
//! * a multi-worker engine's steady-state decision sweep stays at zero
//!   allocations: shard fan-outs happen only at batch/report boundaries,
//!   and the epoch-barrier refit flush is a no-op branch when nothing is
//!   queued.

use cloudburst_chaos::FaultProfile;
use cloudburst_core::{EngineHarness, ExperimentConfig, SchedulerKind};
use cloudburst_sim::{RngFactory, ShardPool};
use cloudburst_testsupport::{allocations, CountingAlloc};
use cloudburst_workload::{BatchArrivals, SizeBucket};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

// One test function: the counter is process-global, so concurrent tests in
// this binary would pollute each other's deltas.
#[test]
fn shard_worker_steady_state_is_allocation_disciplined() {
    // --- ShardPool inline path: allocation-free once warm. ---
    let items: Vec<u64> = (0..10_000).collect();
    let inline = ShardPool::new(1);
    let mut out: Vec<u64> = Vec::new();
    inline.map_ordered_into(&items, &mut out, |_, &x| x.wrapping_mul(2_654_435_761));
    let (n, _) = allocations(|| {
        for _ in 0..50 {
            inline.map_ordered_into(&items, &mut out, |_, &x| x.wrapping_mul(2_654_435_761));
        }
    });
    assert_eq!(n, 0, "warm inline fan-out must not allocate");

    // --- Parallel path: per-call overhead, independent of item count. ---
    // Chunk count is capped by workers × CHUNKS_PER_WORKER, so a 10× larger
    // input must cost exactly the same number of allocations per call.
    let pool = ShardPool::new(4);
    let small = &items[..1_000];
    let warm = |items: &[u64], out: &mut Vec<u64>| {
        pool.map_ordered_into(items, out, |_, &x| x.wrapping_mul(2_654_435_761));
    };
    let mut out_small: Vec<u64> = Vec::new();
    let mut out_large: Vec<u64> = Vec::new();
    warm(small, &mut out_small);
    warm(&items, &mut out_large);
    let (n_small, _) = allocations(|| warm(small, &mut out_small));
    let (n_large, _) = allocations(|| warm(&items, &mut out_large));
    assert_eq!(
        n_small, n_large,
        "parallel fan-out allocations must not scale with item count"
    );

    // --- Multi-worker engine: the decision sweep is still zero-alloc. ---
    let mut cfg =
        ExperimentConfig::paper(SchedulerKind::OrderPreserving, SizeBucket::LargeBiased, 9);
    cfg.arrivals.jobs_per_batch = 60.0;
    cfg.rescheduling = true;
    cfg.faults = Some(FaultProfile::dormant());
    cfg.shard_workers = Some(4);

    let rngs = RngFactory::new(cfg.seed);
    let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
    let mut h = EngineHarness::new(&cfg, batches);
    h.run_until(cloudburst_sim::SimTime::from_secs(9 * 60));
    let now = h.now();
    let w = h.world_mut();
    assert!(w.outstanding_jobs() > 0, "mid-run state must have work in flight");

    // Warm-up: let the sweep reach its fixed point and size every scratch
    // buffer (identical protocol to `alloc_free.rs`).
    let mut moves = (w.pull_backs(), w.push_outs());
    for _ in 0..32 {
        w.decision_sweep(now);
        let after = (w.pull_backs(), w.push_outs());
        if after == moves {
            break;
        }
        moves = after;
    }

    let (n, _) = allocations(|| {
        for _ in 0..100 {
            w.decision_sweep(now);
        }
    });
    assert_eq!(n, 0, "multi-worker steady-state decision sweep must not allocate");

    h.run();
    let (report, _world) = h.finish();
    assert!(report.makespan_secs > 0.0);
}

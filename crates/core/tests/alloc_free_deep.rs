//! Deep-queue companion to `alloc_free.rs`: once warm, a steady-state
//! decision sweep stays allocation-free **with the hybrid drain's fluid
//! prefix live** — queue depth far beyond `DRAIN_WINDOW`, so every sweep
//! runs the water-fill (sort + level fold), the λ anchor re-base, and the
//! tail-window push-out pool on top of the indexed replay.
//!
//! Separate integration binary on purpose: the counting allocator is
//! process-global, and the library compiles without `cfg(test)` so the
//! (allocating) rescan oracles sit outside the measured path.

use cloudburst_core::{EngineHarness, ExperimentConfig, SchedulerKind};
use cloudburst_sched::DRAIN_WINDOW;
use cloudburst_sim::RngFactory;
use cloudburst_testsupport::{allocations, CountingAlloc};
use cloudburst_workload::BatchArrivals;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

// One test function: the counter is process-global, so concurrent tests in
// this binary would pollute each other's deltas.
#[test]
fn deep_queue_decision_sweep_is_allocation_free() {
    // A megascale burst (≈ 12k jobs in two batches against the 256 + 64
    // estate) piles the IC queue thousands of jobs past DRAIN_WINDOW.
    let mut cfg = ExperimentConfig::megascale(SchedulerKind::OrderPreserving, 12_000, 5);
    cfg.rescheduling = true;

    let rngs = RngFactory::new(cfg.seed);
    let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
    let mut h = EngineHarness::new(&cfg, batches);

    // Let both batches land so the backlog is at its deepest.
    h.run_until(cloudburst_sim::SimTime::from_secs(4 * 60));
    let now = h.now();
    let w = h.world_mut();
    let queued = w.ic_cloud().queued();
    assert!(
        queued > 2 * DRAIN_WINDOW,
        "queue depth {queued} must dwarf the exact-tail window"
    );

    // Warm-up: reach the sweep's fixed point and size every scratch
    // buffer (fluid bases, tail-window candidate pool included).
    let mut moves = (w.pull_backs(), w.push_outs());
    for _ in 0..32 {
        w.decision_sweep(now);
        let after = (w.pull_backs(), w.push_outs());
        if after == moves {
            break;
        }
        moves = after;
    }

    let (n, _) = allocations(|| {
        for _ in 0..100 {
            w.decision_sweep(now);
        }
    });
    assert_eq!(n, 0, "deep-queue steady-state decision sweep must not allocate");
}

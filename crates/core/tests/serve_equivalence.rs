//! Closed-batch vs open-serving equivalence golden (ISSUE 9, satellite 3).
//!
//! With a flat envelope, no bursts and no fault profile, an open serving
//! session over `OpenArrivalConfig::matching_closed(..)` must realize the
//! *same physical run* as closed-batch mode: identical jobs at identical
//! instants on identical machines. Job ids are recycled in serve mode, so
//! the comparison goes through order- and id-insensitive invariants plus a
//! windowed oracle: the closed run's per-job admission/completion stream,
//! replayed through a fresh [`WindowSeries`], must reproduce the serving
//! engine's per-window rows byte for byte (via their JSON encoding).
//!
//! Chaos stays OFF here by design: the fault plan hashes per-attempt
//! decisions off the job id, so id recycling legitimately changes fault
//! realization — equivalence is a fault-free claim.

use cloudburst_core::{
    run_experiment_detailed, serve_experiment_detailed, ExperimentConfig, SchedulerKind,
    ServeConfig,
};
use cloudburst_sim::{SimDuration, SimTime};
use cloudburst_sla::{FaultMetrics, WindowConfig, WindowSeries};
use cloudburst_workload::{ArrivalConfig, OpenArrivalConfig, SizeBucket};

/// A closed config plus the serve section that streams the identical
/// workload: same epoch spacing, rate and bucket, horizon = exactly the
/// closed batch count.
fn paired_cfg(kind: SchedulerKind, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        seed,
        scheduler: kind,
        arrivals: ArrivalConfig {
            n_batches: 6,
            jobs_per_batch: 5.0,
            bucket: SizeBucket::SmallBiased,
            ..ArrivalConfig::default()
        },
        training_docs: 150,
        ..ExperimentConfig::default()
    };
    cfg.serve = Some(ServeConfig {
        arrivals: OpenArrivalConfig::matching_closed(&cfg.arrivals),
        horizon: cfg.arrivals.batch_interval * cfg.arrivals.n_batches as u64,
        // Deliberately not a multiple of the 3-minute epoch, so window
        // boundaries fall inside epochs as well as between them.
        window: WindowConfig { window: SimDuration::from_secs(300), oo_tolerance: 0 },
    });
    cfg
}

#[test]
fn open_stream_replays_the_closed_run() {
    for (kind, seed) in
        [(SchedulerKind::OrderPreserving, 11), (SchedulerKind::Greedy, 12), (SchedulerKind::Sibs, 13)]
    {
        let cfg = paired_cfg(kind, seed);
        let (closed, closed_world) = run_experiment_detailed(&cfg);
        let (serve, serve_world) = serve_experiment_detailed(&cfg);

        // Same job population, fully drained.
        assert_eq!(serve.jobs_admitted as usize, closed.n_jobs, "seed {seed}");
        assert_eq!(serve.jobs_completed as usize, closed.n_jobs, "seed {seed}");
        assert_eq!(serve_world.serve_live_jobs(), 0);
        assert!(serve.faults.is_clean(), "no chaos armed, no fault realized");

        // Same delivered bytes (sum over the closed run's per-job ledger).
        let total_bytes: u64 =
            (0..closed.n_jobs as u64).map(|i| closed_world.job_output_bytes(i)).sum();
        assert_eq!(serve.output_bytes, total_bytes, "seed {seed}");

        // Windowed oracle: replay the closed run's stream. Closed-mode ids
        // are dense in admission order, so id == admission seq.
        let tls = closed_world.timelines();
        assert_eq!(tls.len(), closed.n_jobs);
        // (time, kind, id): kind orders same-instant admissions before
        // nothing in particular — completion/admission collisions would
        // need a service time landing on an exact epoch multiple, which the
        // continuous noise law makes a measure-zero event.
        let mut events: Vec<(SimTime, u8, u64)> = Vec::new();
        for tl in tls {
            events.push((tl.arrival, 0, tl.id));
            events.push((tl.completed.expect("closed run drains"), 1, tl.id));
        }
        events.sort();
        let serve_cfg = cfg.serve.clone().expect("paired config has a serve section");
        let mut oracle = WindowSeries::new(serve_cfg.window);
        let clean = FaultMetrics::default();
        for (t, kind, id) in events {
            match kind {
                0 => oracle.on_admit(id, t),
                _ => {
                    let tl = &closed_world.timelines()[id as usize];
                    let turnaround = (t - tl.arrival).as_secs_f64();
                    let met = t <= closed.tickets[id as usize].promised;
                    oracle.on_complete(id, t, closed_world.job_output_bytes(id), turnaround, Some(met));
                }
            }
        }
        let end = SimTime::from_secs_f64(serve.drained_at_secs);
        oracle.finish(end + serve_cfg.window.window, &clean);
        let oracle_rows = oracle.drain_closed();

        assert_eq!(serve.windows.len(), oracle_rows.len(), "seed {seed}");
        for (got, want) in serve.windows.iter().zip(&oracle_rows) {
            assert_eq!(
                serde_json::to_string(got).expect("row"),
                serde_json::to_string(want).expect("row"),
                "seed {seed} window {} diverged from the closed-run oracle",
                want.index,
            );
        }
    }
}

#[test]
fn serve_mode_leaves_closed_mode_bytes_untouched() {
    // The same config run closed must not see the serve section at all:
    // reports with and without it are byte-identical.
    let with = paired_cfg(SchedulerKind::OrderPreserving, 21);
    let mut without = with.clone();
    without.serve = None;
    let (a, _) = run_experiment_detailed(&with);
    let (b, _) = run_experiment_detailed(&without);
    assert_eq!(
        serde_json::to_string(&a).expect("report"),
        serde_json::to_string(&b).expect("report"),
        "closed-batch mode must ignore the serve section byte-for-byte"
    );
}

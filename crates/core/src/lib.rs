//! `cloudburst-core` — the pipelined, event-based cloud-bursting system
//! (Fig. 5 of the paper) tying every substrate together.
//!
//! The architecture is "a network of asynchronous queues — upload,
//! execution, download queues — and \[a\] job moves from one queue to the
//! other" (Sec. III-B). Here those queues are simulated in virtual time on
//! the `cloudburst-sim` kernel:
//!
//! ```text
//!  batches ──► job queue ──► controller/scheduler ──┬──► IC exec ─────────┐
//!                                                   └──► upload queue(s)  │
//!                                                        └► upload link   │
//!                                                            └► EC exec   │
//!                                                                └► download link
//!                                                                    └────┴──► result queue
//! ```
//!
//! * [`config`] — experiment configuration (workload, pools, pipe, models,
//!   scheduler choice, extensions), fully serializable.
//! * [`engine`] — the discrete-event pipeline; runs one experiment and
//!   produces a `cloudburst_sla::RunReport`.
//! * [`autonomic`] — periodic 1 MB probe transfers, EWMA recalibration and
//!   thread-count adaptation (Sec. III-A-2).
//! * [`runner`] — multi-seed replication, parallelized with crossbeam
//!   scoped threads; aggregation helpers.
//! * [`scaling`] — the elastic-EC extension ("the scaling must be just
//!   enough to ensure saturation of the download bandwidth", Sec. V-B-4).
//! * [`multi_ec`] — the multiple-external-clouds extension (Sec. I / VII).
//! * [`live`] — the same pipeline on real threads and crossbeam channels at
//!   a configurable time scale, demonstrating the event-based architecture
//!   outside virtual time.
//! * [`timeline`] — per-job stage timestamps for run auditing.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod autonomic;
pub mod config;
pub mod engine;
pub mod live;
pub mod multi_ec;
pub mod runner;
pub mod scaling;
pub mod timeline;

pub use config::{ExperimentConfig, SchedulerKind, ServeConfig};
pub use engine::{
    run_experiment, run_experiment_detailed, run_with_batches, run_with_plan, serve_experiment,
    serve_experiment_detailed, EngineHarness, ServeHarness,
};
pub use timeline::JobTimeline;
pub use runner::{run_all_buckets, run_replications};

//! Per-job lifecycle timelines.
//!
//! The pipeline of Fig. 5 moves a job through up to six stages; the engine
//! stamps each transition so a run can be audited job by job — which
//! upload blocked which, where a deadline was lost, how long a result sat
//! in the download queue. Timelines are the raw material for the
//! completion-delay and OO analyses and for the stage-ordering invariants
//! in the test suite.

use cloudburst_sched::Placement;
use cloudburst_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Stage timestamps for one job. `None` stages were never entered (local
/// jobs never transfer; a pulled-back job loses its upload stamps).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobTimeline {
    /// 0-based job id.
    pub id: u64,
    /// Arrival at the central job queue.
    pub arrival: SimTime,
    /// When the controller placed it.
    pub scheduled: SimTime,
    /// Final placement (after any rescheduling).
    pub placement: Placement,
    /// Upload transfer start (bursted jobs).
    pub upload_started: Option<SimTime>,
    /// Upload transfer completion.
    pub upload_done: Option<SimTime>,
    /// Execution start on a machine.
    pub exec_started: Option<SimTime>,
    /// Execution completion.
    pub exec_done: Option<SimTime>,
    /// Result download completion (bursted jobs).
    pub download_done: Option<SimTime>,
    /// Arrival in the result queue.
    pub completed: Option<SimTime>,
}

impl JobTimeline {
    /// Creates a fresh timeline at scheduling time.
    pub fn new(id: u64, arrival: SimTime, scheduled: SimTime, placement: Placement) -> Self {
        JobTimeline {
            id,
            arrival,
            scheduled,
            placement,
            upload_started: None,
            upload_done: None,
            exec_started: None,
            exec_done: None,
            download_done: None,
            completed: None,
        }
    }

    /// Seconds from arrival to result (`None` while incomplete).
    pub fn turnaround_secs(&self) -> Option<f64> {
        self.completed.map(|c| (c - self.arrival).as_secs_f64())
    }

    /// Seconds spent waiting in queues (turnaround minus transfer and
    /// execution spans).
    pub fn queueing_secs(&self) -> Option<f64> {
        let total = self.turnaround_secs()?;
        let exec = match (self.exec_started, self.exec_done) {
            (Some(s), Some(e)) => (e - s).as_secs_f64(),
            _ => 0.0,
        };
        let upload = match (self.upload_started, self.upload_done) {
            (Some(s), Some(e)) => (e - s).as_secs_f64(),
            _ => 0.0,
        };
        let download = match (self.exec_done, self.download_done) {
            // Download queueing is folded in here; the pure transfer span
            // is not separately stamped.
            (Some(s), Some(e)) => (e - s).as_secs_f64(),
            _ => 0.0,
        };
        Some((total - exec - upload - download).max(0.0))
    }

    /// Checks internal stage ordering; returns the violated pair if any.
    pub fn check_ordering(&self) -> Result<(), (&'static str, &'static str)> {
        let mut last: (&'static str, SimTime) = ("arrival", self.arrival);
        let stages: [(&'static str, Option<SimTime>); 7] = [
            ("scheduled", Some(self.scheduled)),
            ("upload_started", self.upload_started),
            ("upload_done", self.upload_done),
            ("exec_started", self.exec_started),
            ("exec_done", self.exec_done),
            ("download_done", self.download_done),
            ("completed", self.completed),
        ];
        for (name, at) in stages {
            if let Some(t) = at {
                if t < last.1 {
                    return Err((last.0, name));
                }
                last = (name, t);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn bursted() -> JobTimeline {
        JobTimeline {
            upload_started: Some(t(10)),
            upload_done: Some(t(110)),
            exec_started: Some(t(110)),
            exec_done: Some(t(400)),
            download_done: Some(t(450)),
            completed: Some(t(450)),
            ..JobTimeline::new(3, t(0), t(5), Placement::External)
        }
    }

    #[test]
    fn ordering_accepts_valid_timeline() {
        assert_eq!(bursted().check_ordering(), Ok(()));
        let local = JobTimeline {
            exec_started: Some(t(20)),
            exec_done: Some(t(120)),
            completed: Some(t(120)),
            ..JobTimeline::new(1, t(0), t(5), Placement::Internal)
        };
        assert_eq!(local.check_ordering(), Ok(()));
    }

    #[test]
    fn ordering_detects_violations() {
        let mut bad = bursted();
        bad.exec_started = Some(t(50)); // before upload_done at 110
        assert_eq!(bad.check_ordering(), Err(("upload_done", "exec_started")));
    }

    #[test]
    fn turnaround_and_queueing() {
        let tl = bursted();
        assert_eq!(tl.turnaround_secs(), Some(450.0));
        // exec 290 s + upload 100 s + post-exec 50 s → 10 s of queueing.
        assert_eq!(tl.queueing_secs(), Some(10.0));
        let unfinished = JobTimeline::new(0, t(0), t(1), Placement::Internal);
        assert_eq!(unfinished.turnaround_secs(), None);
        assert_eq!(unfinished.queueing_secs(), None);
    }
}

//! Elastic-EC scaling (extension).
//!
//! Sec. V-B-4: "Due to the data intensive nature of the jobs, the scaling
//! (at EC) must be just enough to ensure saturation of the download
//! bandwidth. Such scaling policies forms part of future work." This module
//! implements that policy: grow the active EC pool with pending work, but
//! collapse it when results are already piling up behind the download pipe
//! — extra instances then burn money without improving completion times.

use crate::config::ScalingPolicy;

/// Seconds of download backlog beyond which extra EC capacity is wasted:
/// results would only queue behind the pipe.
pub const SATURATION_BACKLOG_SECS: f64 = 60.0;

/// Computes the active-instance target for one evaluation period.
///
/// * `pending_jobs` — jobs waiting for or undergoing EC processing
///   (upload queue + EC queue);
/// * `download_backlog_bytes` — result bytes waiting for the pipe;
/// * `predicted_down_bps` — the EWMA download-rate prediction.
pub fn target_instances(
    policy: &ScalingPolicy,
    pending_jobs: usize,
    download_backlog_bytes: u64,
    predicted_down_bps: f64,
) -> usize {
    let backlog_secs = download_backlog_bytes as f64 / predicted_down_bps.max(1.0);
    if backlog_secs > SATURATION_BACKLOG_SECS {
        // The pipe is the bottleneck: anything beyond the minimum idles.
        return policy.min_instances.max(1);
    }
    // One instance per pending job up to the cap — with a saturated pipe
    // check above, this is "just enough to keep the pipe fed".
    pending_jobs.clamp(policy.min_instances.max(1), policy.max_instances.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_sim::SimDuration;

    fn policy(min: usize, max: usize) -> ScalingPolicy {
        ScalingPolicy { min_instances: min, max_instances: max, period: SimDuration::from_mins(2) }
    }

    #[test]
    fn grows_with_pending_work() {
        let p = policy(1, 8);
        assert_eq!(target_instances(&p, 0, 0, 250_000.0), 1);
        assert_eq!(target_instances(&p, 3, 0, 250_000.0), 3);
        assert_eq!(target_instances(&p, 20, 0, 250_000.0), 8, "capped at max");
    }

    #[test]
    fn saturated_download_pipe_scales_down() {
        let p = policy(1, 8);
        // 100 MB backlog at 250 KB/s = 400 s ≫ 60 s: collapse to min.
        assert_eq!(target_instances(&p, 20, 100_000_000, 250_000.0), 1);
        // 10 MB backlog = 40 s: still below saturation, keep scaling.
        assert_eq!(target_instances(&p, 20, 10_000_000, 250_000.0), 8);
    }

    #[test]
    fn never_returns_zero() {
        let p = policy(0, 0);
        assert_eq!(target_instances(&p, 0, 0, 1.0), 1);
        assert_eq!(target_instances(&p, 5, u64::MAX, 1.0), 1);
    }

    #[test]
    fn degenerate_bandwidth_is_safe() {
        let p = policy(1, 4);
        // Zero predicted bandwidth: treat any backlog as saturation.
        assert_eq!(target_instances(&p, 9, 1_000_000, 0.0), 1);
    }
}

//! The discrete-event cloud-bursting pipeline (Fig. 5).
//!
//! One [`EngineWorld`] holds the whole system: the IC pool, one or more EC
//! sites (each with its own upload/download pipe and queues), the estimate
//! provider, and the scheduler under test. Events drive the pipeline:
//!
//! 1. a **batch arrival** invokes the controller, which snapshots the
//!    estimated load, runs the scheduler, re-indexes (possibly chunked)
//!    jobs into the global FCFS id space, and dispatches placements;
//! 2. **link wakes** integrate transfer progress; completed uploads submit
//!    to the EC, completed downloads land results in the result queue;
//! 3. **cloud wakes** collect execution completions; IC completions go
//!    straight to the result queue, EC completions enter the download queue;
//! 4. every completion feeds the autonomic models (QRSM window, bandwidth
//!    EWMAs, thread tuners) — the system learns while it runs.
//!
//! Ground truth (service times, link capacity) is only ever touched by the
//! simulation itself; the scheduler sees estimates. This split is what lets
//! the experiments reproduce the paper's robustness comparisons.

use cloudburst_chaos::{sample_spot_revocations, EstateShape, FaultPlan, FaultProfile, Pool};
use cloudburst_cluster::{Cloud, ExecCompletion, MachineId};
use cloudburst_econ::{AdmissionPolicy, BrokerPolicy, CostMetrics, Money, PenaltySchedule, PriceModel};
use cloudburst_net::link::{CapacityFault, Completion};
use cloudburst_net::queues::{SibsQueues, SizeClass};
use cloudburst_net::{Link, SibsBounds, TransferId};
use cloudburst_qrsm::QrsModel;
use cloudburst_sched::api::Planner;
#[cfg(test)]
use cloudburst_sched::drain::fluid_fill_level;
use cloudburst_sched::drain::{FluidScratch, DRAIN_WINDOW};
use cloudburst_sched::resched::{
    eq1_slack, pull_back_candidate, push_out_candidate, PullBackCandidate, PushOutCandidate,
};
use cloudburst_sched::{
    BurstScheduler, EstimateProvider, FreeTimeIndex, GreedyScheduler, IcOnlyScheduler, LoadModel,
    OrderPreservingScheduler, OutstandingSet, Placement, ProcTimeModel, SibsScheduler,
};
use cloudburst_sim::{EventId, FxHashMap, RngFactory, ShardPool, Sim, SimDuration, SimTime};
use cloudburst_sla::{
    metrics, oo_series, CompletionRecord, FaultMetrics, RunReport, ServeReport, WindowSeries,
    WindowStats,
};
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::{BatchArrivals, Job, JobId, OpenArrivals};

use crate::config::{EcSiteConfig, ExperimentConfig, SchedulerKind, ServeConfig};

/// Size of the autonomic probe transfers (Sec. III-A-2: "periodic test
/// uploads/downloads of size 1MB").
const PROBE_BYTES: u64 = 1_000_000;

/// Fallback execution estimate (standard seconds) for a job the QRSM has
/// no recorded estimate for — only reachable for ids outside the admitted
/// range, which the drain replays defensively rather than panicking on.
const DEFAULT_EST_EXEC_SECS: f64 = 60.0;

/// The recorded QRSM estimate for `id`, or the default fallback.
fn est_exec_or_default(est_exec: &[f64], id: JobId) -> f64 {
    est_exec.get(id.0 as usize).copied().unwrap_or(DEFAULT_EST_EXEC_SECS)
}

/// Integer-tick drain weight a queued job contributes to its pool: its
/// estimated wall seconds on that pool, rounded to microsecond ticks.
/// Integer ticks make the Cloud's maintained queue total exactly
/// invertible under push/pop/cancel in any order — f64 sums are not.
fn drain_cost_ticks(est_exec: &[f64], id: JobId, speed: f64) -> u64 {
    SimDuration::from_secs_f64(est_exec_or_default(est_exec, id) / speed).as_micros()
}

/// Free-time sentinel for a crashed machine: "never frees" while staying
/// finite, because `SimDuration::from_secs_f64` saturates non-finite input
/// to zero — an `INFINITY` sentinel would wrap to "free now" the moment a
/// drain converts it back into a duration.
const DEAD_FREE_SECS: f64 = 1_000_000_000.0;

/// Max over machine free-times that still count as live (crashed machines
/// must not donate their sentinel as Eq. 1 cushion).
fn live_max(free: &[f64]) -> f64 {
    free.iter().copied().filter(|v| *v < DEAD_FREE_SECS).fold(0.0, f64::max)
}

/// Fills `buf` with estimated seconds until each machine frees from its
/// *running* job only (scheduler-side estimates, never ground truth).
/// Reuses `buf`'s capacity; free function so callers can borrow disjoint
/// `EngineWorld` fields.
fn fill_running_free(
    est_exec: &[f64],
    buf: &mut Vec<f64>,
    cloud: &Cloud<JobId>,
    speed: f64,
    now: SimTime,
) {
    buf.clear();
    buf.resize(cloud.n_machines(), 0.0);
    for (key, machine, started) in cloud.running_detail() {
        let est = est_exec_or_default(est_exec, key);
        let elapsed_std = (now - started).as_secs_f64() * speed;
        buf[machine.0] = (est - elapsed_std).max(0.0) / speed;
    }
    if cloud.failed_machines() > 0 {
        for (i, v) in buf.iter_mut().enumerate() {
            if cloud.is_failed(MachineId(i)) {
                *v = DEAD_FREE_SECS;
            }
        }
    }
}

/// Fills `buf` with estimated seconds until each machine frees, including
/// the FCFS drain of the queue — the depth-flat hybrid drain:
///
/// * queue ≤ [`DRAIN_WINDOW`]: the full indexed replay — O(log m) per
///   queued job via the tournament tree, with the same iteration order,
///   tie-breaking, and f64 arithmetic as the pre-index linear rescan, so
///   the result is bitwise identical to `EngineWorld::est_free_secs`;
/// * queue > [`DRAIN_WINDOW`] with at least one live machine: the first
///   `queue − DRAIN_WINDOW` jobs drain as a fluid (their maintained
///   integer-tick cost total water-fills the live bases to a common
///   level), then the last `DRAIN_WINDOW` jobs replay exactly on top —
///   O(m log m + DRAIN_WINDOW log m), independent of queue depth;
/// * all machines dead: exact full replay (depth-flatness is moot — the
///   estate is down and chaos recovery is the bottleneck, not decisions).
fn fill_est_free(
    est_exec: &[f64],
    ft: &mut FreeTimeIndex,
    fluid: &mut FluidScratch,
    buf: &mut Vec<f64>,
    cloud: &Cloud<JobId>,
    speed: f64,
    now: SimTime,
) {
    fill_running_free(est_exec, buf, cloud, speed, now);
    let q = cloud.queued();
    if q > DRAIN_WINDOW {
        let tail_ticks: u64 = cloud.queued_tail(DRAIN_WINDOW).map(|(_, t)| t).sum();
        let prefix_secs =
            SimDuration::from_micros(cloud.queued_cost_ticks() - tail_ticks).as_secs_f64();
        if fluid.fill(buf, prefix_secs, DEAD_FREE_SECS).is_some() {
            ft.reset_from(buf);
            for (key, _) in cloud.queued_tail(DRAIN_WINDOW) {
                let est = est_exec_or_default(est_exec, key);
                ft.fcfs_commit(est / speed);
            }
            buf.clear();
            buf.extend_from_slice(ft.values());
            return;
        }
    }
    ft.reset_from(buf);
    for key in cloud.queued_keys() {
        let est = est_exec_or_default(est_exec, key);
        ft.fcfs_commit(est / speed);
    }
    buf.clear();
    buf.extend_from_slice(ft.values());
}

/// What an in-flight transfer carries.
#[derive(Clone, Copy, Debug)]
enum Payload {
    /// A job's input (upload) or result (download).
    Job(JobId),
    /// An autonomic probe.
    Probe,
}

/// One external-cloud site: compute pool plus its own pipes and queues.
struct EcSite {
    cloud: Cloud<JobId>,
    up_link: Link,
    down_link: Link,
    /// Pending uploads in the three size-interval queues. Non-SIBS runs
    /// push everything as `Small` and drain through a single `Large` slot
    /// (which serves all classes), i.e. one FIFO pipe.
    up_queues: SibsQueues<JobId>,
    /// One upload slot per size class when SIBS routing is on, else one.
    up_slots: Vec<(SizeClass, Option<TransferId>)>,
    /// FIFO download queue of finished EC jobs awaiting result transfer.
    down_queue: std::collections::VecDeque<(JobId, u64)>,
    /// Maintained byte total of `down_queue` — O(1) backlog reads for the
    /// load model instead of an O(queue) sum (oracle-checked in tests).
    down_queue_bytes: u64,
    down_active: Option<TransferId>,
    /// Transfer bookkeeping: id → payload and thread count. Ids are dense
    /// trusted integers, so the maps use the fast in-tree Fx hasher.
    up_map: FxHashMap<TransferId, (Payload, u32)>,
    down_map: FxHashMap<TransferId, (Payload, u32)>,
    sibs_bounds: Option<SibsBounds>,
    uploaded_bytes: u64,
    downloaded_bytes: u64,
    up_wake: Option<EventId>,
    down_wake: Option<EventId>,
    exec_wake: Option<EventId>,
}

impl EcSite {
    fn new(cfg: &ExperimentConfig, site_cfg: &EcSiteConfig, sibs: bool, name: String) -> EcSite {
        let up_slots = if sibs {
            vec![(SizeClass::Small, None), (SizeClass::Medium, None), (SizeClass::Large, None)]
        } else {
            vec![(SizeClass::Large, None)]
        };
        EcSite {
            cloud: Cloud::homogeneous(name, site_cfg.n_machines.max(1), site_cfg.speed),
            up_link: Link::new(site_cfg.upload_model.clone(), cfg.kappa, cfg.link_slot)
                .with_latency(cfg.last_hop_latency),
            down_link: Link::new(site_cfg.download_model.clone(), cfg.kappa, cfg.link_slot)
                .with_latency(cfg.last_hop_latency),
            up_queues: SibsQueues::new(),
            up_slots,
            down_queue: std::collections::VecDeque::new(),
            down_queue_bytes: 0,
            down_active: None,
            up_map: FxHashMap::default(),
            down_map: FxHashMap::default(),
            sibs_bounds: None,
            uploaded_bytes: 0,
            downloaded_bytes: 0,
            up_wake: None,
            down_wake: None,
            exec_wake: None,
        }
    }

    /// Estimated upload backlog in bytes: queued plus in-flight remainder.
    /// Reads the pipe through its epoch-boundary snapshot.
    fn upload_backlog_bytes(&self) -> u64 {
        let (s, m, l) = self.up_queues.queued_bytes();
        s + m + l + self.up_link.boundary().remaining_bytes
    }

    /// Bytes awaiting or undergoing download.
    fn download_backlog_bytes(&self) -> u64 {
        self.down_queue_bytes + self.down_link.boundary().remaining_bytes
    }

    /// Jobs anywhere in this site's pipeline (upload queue/flight, EC
    /// queue/exec, download queue/flight).
    fn pipeline_jobs(&self) -> usize {
        let pool = self.cloud.boundary();
        self.up_queues.len()
            + self.up_map.values().filter(|(p, _)| matches!(p, Payload::Job(_))).count()
            + pool.queued
            + pool.running
            + self.down_queue.len()
            + self.down_map.values().filter(|(p, _)| matches!(p, Payload::Job(_))).count()
    }
}

/// A pending chaos-recovery timer, fired by `process_chaos_timers` in
/// (deadline, seq) order at the first wake that reaches the deadline.
#[derive(Clone, Copy, Debug)]
enum ChaosTimer {
    /// An in-flight upload's recovery deadline.
    UpTimeout { site: usize, tid: TransferId, started: SimTime },
    /// An in-flight download's recovery deadline.
    DownTimeout { site: usize, tid: TransferId, started: SimTime },
    /// Backoff expiry: re-queue the job's upload at the head of its class.
    UpRetry { site: usize, id: JobId },
    /// Backoff expiry: re-queue the job's result download at the head.
    DownRetry { site: usize, id: JobId },
}

/// A heap entry for the pending-timer queue. `Ord` is reversed on
/// (deadline, seq) so `BinaryHeap` (a max-heap) pops the earliest timer
/// first, with the arming sequence breaking deadline ties.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    timer: ChaosTimer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Live chaos bookkeeping. `EngineWorld::chaos` is `None` whenever the
/// compiled plan is empty, so a dormant profile leaves every code path —
/// and therefore every byte of the run — identical to a fault-free one.
struct ChaosState {
    plan: FaultPlan,
    /// Failed attempts so far per job id (grown on admission); the current
    /// attempt index keys the plan's hashed per-attempt deciders.
    exec_attempts: Vec<u32>,
    up_attempts: Vec<u32>,
    down_attempts: Vec<u32>,
    /// Pending recovery timers, ordered by (deadline, seq): peeking the
    /// next deadline and popping the earliest matured timer are O(1) and
    /// O(log n) instead of the linear rescans the unordered Vec needed.
    timers: std::collections::BinaryHeap<TimerEntry>,
    /// Rescan oracle for `timers`: the unordered set the heap replaced.
    /// Test builds mirror every arm/pop and assert the heap's choice
    /// matches the linear (deadline, seq)-minimum scan.
    #[cfg(test)]
    timers_oracle: Vec<(SimTime, u64, ChaosTimer)>,
    /// Tie-break sequence for timers sharing a deadline.
    seq: u64,
    metrics: FaultMetrics,
}

impl ChaosState {
    fn arm(&mut self, at: SimTime, timer: ChaosTimer) {
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(TimerEntry { at, seq, timer });
        #[cfg(test)]
        self.timers_oracle.push((at, seq, timer));
    }

    /// Pops the earliest matured timer, in (deadline, seq) order.
    fn pop_matured(&mut self, now: SimTime) -> Option<ChaosTimer> {
        if self.timers.peek().is_none_or(|e| e.at > now) {
            #[cfg(test)]
            assert!(
                !self.timers_oracle.iter().any(|&(t, _, _)| t <= now),
                "heap says no matured timer but the rescan oracle found one"
            );
            return None;
        }
        let e = self.timers.pop().expect("peeked above");
        #[cfg(test)]
        {
            let i = self
                .timers_oracle
                .iter()
                .enumerate()
                .filter(|(_, (t, _, _))| *t <= now)
                .min_by_key(|(_, (t, s, _))| (*t, *s))
                .map(|(i, _)| i)
                .expect("oracle must agree a timer matured");
            let (t, s, _) = self.timers_oracle.swap_remove(i);
            assert_eq!((t, s), (e.at, e.seq), "heap pop diverged from the rescan oracle");
        }
        Some(e.timer)
    }

    /// Earliest timer deadline, for arming the chaos wake event.
    fn next_deadline(&self) -> Option<SimTime> {
        let next = self.timers.peek().map(|e| e.at);
        #[cfg(test)]
        assert_eq!(
            next,
            self.timers_oracle.iter().map(|&(t, _, _)| t).min(),
            "heap peek diverged from the rescan oracle"
        );
        next
    }
}

/// Live economics bookkeeping. `EngineWorld::econ` is `None` whenever the
/// config's econ section is dormant (or absent) and no site carries a
/// price, so an unpriced run leaves every code path — and therefore every
/// byte of the run — identical to a pre-econ one.
struct EconState {
    /// Deadline-miss penalty schedule.
    penalty: PenaltySchedule,
    /// Admission commitment policy.
    admission: AdmissionPolicy,
    /// Broker site-selection discipline.
    broker: BrokerPolicy,
    /// Price per EC site (index 0 = the primary site); `None` = free,
    /// like the IC.
    prices: Vec<Option<PriceModel>>,
    /// Hourly-rental high-water mark per site per machine: the first
    /// unpaid wall-clock hour index (see [`PriceModel::exec_charge`]).
    paid_until: Vec<Vec<u64>>,
    /// Deadline per job slot — the hard admission commitment under
    /// commit-or-reject, the advisory ticket promise under admit-all.
    /// Kept in lock-step with the job spine (recycled in serve mode).
    deadline: Vec<SimTime>,
    /// Whether the slot's deadline is a hard admission commitment.
    committed: Vec<bool>,
    /// The realized dollar ledger.
    metrics: CostMetrics,
}

/// Open-system serving state. `EngineWorld::serve` is `None` in classic
/// closed-batch mode, so every serving branch is untaken there and a
/// closed run's bytes are identical to what they were before the mode
/// existed.
///
/// The memory contract: completed jobs return their id (= slot in every
/// per-job spine vector) to `free_ids`, the next admission pops it and
/// *overwrites* the slot instead of pushing, and the whole-run accumulators
/// (`batch_decisions`, per-window aggregates) are replaced by the streaming
/// [`WindowSeries`] — so the spine vectors plateau at the live-job
/// high-water mark no matter how many jobs stream through.
struct ServeState {
    /// Lazy arrival generator; one epoch event is pending at any time.
    arrivals: OpenArrivals,
    /// Generation stops at the first epoch at or past this instant.
    horizon: SimTime,
    /// Streaming windowed aggregates (the `RunReport` replacement).
    windows: WindowSeries,
    /// Recycled job ids (= slots), LIFO. Completion order is
    /// deterministic, so recycling is too.
    free_ids: Vec<u64>,
    /// Dense, never-recycled arrival sequence per live slot — the ordered
    /// consumption order the OO frontier runs on (job ids recycle; the
    /// sequence does not).
    seq_of: Vec<u64>,
    /// Jobs placed externally at admission (closed mode's
    /// `batch_decisions`, collapsed to the counter serving actually needs).
    bursted_jobs: u64,
    /// Running total of delivered output bytes (windows may be drained
    /// incrementally, so the report cannot re-sum them at the end).
    output_bytes_total: u64,
    /// Peak live jobs across the run.
    live_high_water: u64,
    /// The generator reached the horizon; the pipeline is draining.
    arrivals_done: bool,
}

/// The whole simulated system.
pub struct EngineWorld {
    cfg: ExperimentConfig,
    est: EstimateProvider,
    scheduler: Box<dyn BurstScheduler>,
    ic: Cloud<JobId>,
    sites: Vec<EcSite>,
    /// All jobs in final (post-chunking) FCFS id order.
    jobs: Vec<Job>,
    /// QRSM estimate (standard seconds) recorded at scheduling time.
    est_exec: Vec<f64>,
    /// Placement decision `d_i` per job.
    placements: Vec<Placement>,
    /// EC site index per bursted job.
    site_of: Vec<usize>,
    /// Completion instant (result in the result queue) per job.
    completions: Vec<Option<SimTime>>,
    /// Actual output bytes delivered per job.
    output_bytes: Vec<u64>,
    /// The scheduler's own completion estimates for unfinished jobs,
    /// maintained incrementally on admission/completion (the load model's
    /// `T_i` pool, no longer rebuilt per decision).
    outstanding: OutstandingSet,
    /// Rebuild oracle for `outstanding`: the per-job completion-estimate
    /// table the pool used to be re-collected from each decision. Kept in
    /// test builds so every decision can assert pool equivalence.
    #[cfg(test)]
    est_completion: Vec<Option<SimTime>>,
    /// Completion promise quoted at admission (estimate + margin).
    ticket_promise: Vec<SimTime>,
    /// Per-job lifecycle stamps.
    timelines: Vec<crate::timeline::JobTimeline>,
    /// Jobs per batch with their placements (burst-ratio per batch).
    batch_decisions: Vec<Vec<bool>>,
    ic_wake: Option<EventId>,
    batches_total: u32,
    batches_seen: u32,
    next_tid: u64,
    /// Transfers pulled back mid-queue; their upload must be ignored.
    rng_probe: rand::rngs::StdRng,
    /// Ground-truth stream for re-sampling chunk service times.
    rng_chunk_truth: rand::rngs::StdRng,
    n_pull_backs: u64,
    n_push_outs: u64,
    /// Integral of active EC machines over time (instance-seconds) — the
    /// cost measure for the elastic-scaling extension.
    ec_provisioned_machine_secs: f64,
    last_provision_accrual: SimTime,
    /// Reusable drain buffers for `on_wake` — completions are copied out
    /// of the components into these so the wake loop never allocates.
    scratch_exec: Vec<ExecCompletion<JobId>>,
    scratch_link: Vec<Completion>,
    /// Tournament tree over machine free-times: replays FCFS drains in
    /// O(log m) per queued job instead of the oracle's O(m) rescan.
    ft_index: FreeTimeIndex,
    /// Water-fill scratch for the hybrid drain's fluid prefix.
    fluid: FluidScratch,
    /// Load-model backing storage, refreshed in place each decision so the
    /// borrowed [`LoadModel`] snapshot allocates nothing.
    ic_free_buf: Vec<f64>,
    ec_free_buf: Vec<f64>,
    /// Pull-back scratch: candidates and their (site, class, id) keys in
    /// lock-step, so `pull_back_candidate` gets a slice directly instead of
    /// a per-iteration double-collect.
    pb_cands: Vec<PullBackCandidate>,
    pb_meta: Vec<(usize, SizeClass, JobId)>,
    /// Push-out scratch: the IC wait queue snapshot and its Eq. 1/2
    /// candidate view.
    po_waiting: Vec<JobId>,
    po_queue: Vec<PushOutCandidate>,
    /// Fault-injection bookkeeping; `None` ⇔ no fault can ever realize.
    chaos: Option<ChaosState>,
    chaos_wake: Option<EventId>,
    /// Worker policy for intra-run shard fan-outs (admission estimate
    /// precompute, report sections). Results are byte-identical for any
    /// worker count; `cfg.shard_workers` only trades wall-clock time.
    pool: ShardPool,
    /// Reusable buffer for the sharded admission precompute: per-job
    /// `(QRSM exec estimate, serving-model RMSE)` read against the frozen
    /// post-flush estimator, merged back in job-id order.
    admit_scratch: Vec<(f64, f64)>,
    /// Open-system serving state; `None` ⇔ classic closed-batch mode.
    serve: Option<ServeState>,
    /// Economics state; `None` ⇔ no price, penalty, admission commitment
    /// or broker policy can ever affect this run.
    econ: Option<EconState>,
}

impl std::fmt::Debug for EngineWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineWorld")
            .field("jobs", &self.jobs.len())
            .field("sites", &self.sites.len())
            .field("completed", &self.completions.iter().filter(|c| c.is_some()).count())
            .finish_non_exhaustive()
    }
}

impl EngineWorld {
    fn new(cfg: ExperimentConfig, plan: Option<FaultPlan>) -> EngineWorld {
        let rngs = RngFactory::new(cfg.seed);
        // Initial QRSM: trained on the standard production corpus.
        let mut train_rng = rngs.stream("qrsm/training");
        let corpus = training_corpus(&mut train_rng, &cfg.truth, cfg.training_docs.max(64));
        let xs: Vec<Vec<f64>> = corpus.iter().map(|(f, _)| f.regressors()).collect();
        let ys: Vec<f64> = corpus.iter().map(|(_, t)| *t).collect();
        let time_model = if cfg.per_class_qrsm {
            let samples: Vec<(u64, Vec<f64>, f64)> = corpus
                .iter()
                .map(|(f, t)| (f.job_type.code() as u64, f.regressors(), *t))
                .collect();
            ProcTimeModel::PerClass(
                cloudburst_qrsm::ClassedModel::fit(&samples, cfg.fit.to_method(), 60)
                    .expect("training corpus must support a quadratic fit")
                    .with_refit_every(1),
            )
        } else {
            // Sliding-window RLS makes refits O(terms³) instead of
            // O(window·terms²), so the model re-solves on every observation
            // instead of batching 25 of them — estimate error tracks drift
            // as tightly as the window allows.
            ProcTimeModel::Pooled(
                QrsModel::fit(&xs, &ys, cfg.fit.to_method())
                    .expect("training corpus must support a quadratic fit")
                    .with_refit_every(1),
            )
        };

        // Bandwidth prior: the pre-run calibration pass. Seeded with the
        // true mean so runs start sensibly calibrated; the EWMAs keep
        // adapting from real observations afterwards.
        let prior_up = cfg
            .upload_model
            .mean_rate_bps(SimTime::ZERO, SimTime::from_secs(86_400), SimDuration::from_mins(30));
        let mut est = EstimateProvider::with_model(time_model);
        est.up = cloudburst_net::BandwidthEstimator::new(cfg.ewma_slots.max(1), cfg.ewma_alpha)
            .with_prior(prior_up);
        est.down = cloudburst_net::BandwidthEstimator::new(cfg.ewma_slots.max(1), cfg.ewma_alpha)
            .with_prior(prior_up);
        est.kappa = cfg.kappa;
        est.ic_speed = cfg.ic_speed;
        est.ec_speed = cfg.ec_speed;

        let sibs = cfg.scheduler == SchedulerKind::Sibs;
        let scheduler: Box<dyn BurstScheduler> = match cfg.scheduler {
            SchedulerKind::IcOnly => Box::new(IcOnlyScheduler::new()),
            SchedulerKind::Greedy => Box::new(GreedyScheduler::new()),
            SchedulerKind::OrderPreserving => Box::new(OrderPreservingScheduler::new(
                cfg.chunk_policy.clone(),
                cfg.seed ^ 0xc4a2,
            )),
            SchedulerKind::OrderPreservingNoChunk => Box::new(
                OrderPreservingScheduler::new(cfg.chunk_policy.clone(), cfg.seed ^ 0xc4a2)
                    .without_chunking(),
            ),
            SchedulerKind::Sibs => Box::new(SibsScheduler::new(OrderPreservingScheduler::new(
                cfg.chunk_policy.clone(),
                cfg.seed ^ 0xc4a2,
            ))),
        };

        // The primary EC site from the main config, plus any extras.
        let mut site_cfgs = vec![EcSiteConfig {
            n_machines: cfg.n_ec,
            speed: cfg.ec_speed,
            upload_model: cfg.upload_model.clone(),
            download_model: cfg.download_model.clone(),
            price: None,
        }];
        site_cfgs.extend(cfg.extra_ec_sites.iter().cloned());
        let mut sites: Vec<EcSite> = site_cfgs
            .iter()
            .enumerate()
            .map(|(i, sc)| EcSite::new(&cfg, sc, sibs, format!("ec{i}")))
            .collect();

        // Economics: armed iff the econ section is non-dormant or any site
        // carries a price. A dormant (or absent) section arms nothing,
        // keeping the run byte-identical to an econ-free one.
        let econ_cfg = cfg.econ.clone().unwrap_or_default();
        let prices: Vec<Option<PriceModel>> = std::iter::once(econ_cfg.primary_price.clone())
            .chain(cfg.extra_ec_sites.iter().map(|s| s.price.clone()))
            .collect();
        let econ_armed = !econ_cfg.is_dormant() || prices.iter().any(|p| p.is_some());
        let mut econ = econ_armed.then(|| EconState {
            penalty: econ_cfg.penalty,
            admission: econ_cfg.admission,
            broker: econ_cfg.broker,
            paid_until: site_cfgs.iter().map(|s| vec![0u64; s.n_machines.max(1)]).collect(),
            metrics: CostMetrics::with_sites(site_cfgs.len()),
            prices,
            deadline: Vec::new(),
            committed: Vec::new(),
        });

        // Chaos: an explicit plan (replay path) wins verbatim; otherwise
        // compile the config's profile against this estate, then merge in
        // the revocation cycles of any spot-priced site — the spot model's
        // revocation law is realized through the same fault machinery, so
        // revocations are ordinary machine crash/recover events and a pure
        // function of the seeded plan. An empty plan arms nothing, keeping
        // the run byte-identical to a fault-free one.
        let shape = EstateShape {
            n_ic: cfg.n_ic as u32,
            ec_machines: site_cfgs.iter().map(|s| s.n_machines.max(1) as u32).collect(),
        };
        let explicit_plan = plan.is_some();
        let mut plan = plan.or_else(|| cfg.faults.as_ref().map(|p| p.compile(cfg.seed, &shape)));
        if !explicit_plan {
            if let Some(econ) = &mut econ {
                let horizon = cfg.faults.as_ref().map(|p| p.horizon_secs).unwrap_or(86_400.0);
                let mut spot = Vec::new();
                for (site, price) in econ.prices.iter().enumerate() {
                    if let Some(law) = price.as_ref().and_then(|p| p.revocation_law()) {
                        sample_spot_revocations(
                            cfg.seed,
                            site as u32,
                            site_cfgs[site].n_machines.max(1) as u32,
                            law,
                            horizon,
                            &mut spot,
                        );
                    }
                }
                if !spot.is_empty() {
                    econ.metrics.spot_revocations = spot.len() as u64;
                    plan.get_or_insert_with(|| FaultProfile::dormant().compile(cfg.seed, &shape))
                        .machine_faults
                        .extend(spot);
                }
            }
        }
        let chaos = plan.filter(|p| !p.is_empty()).map(|plan| ChaosState {
            metrics: FaultMetrics {
                blackout_secs: plan.blackout_secs(),
                ..FaultMetrics::default()
            },
            exec_attempts: Vec::new(),
            up_attempts: Vec::new(),
            down_attempts: Vec::new(),
            timers: std::collections::BinaryHeap::new(),
            #[cfg(test)]
            timers_oracle: Vec::new(),
            seq: 0,
            plan,
        });
        if let Some(ch) = &chaos {
            for (i, site) in sites.iter_mut().enumerate() {
                let windows: Vec<CapacityFault> = ch
                    .plan
                    .windows_for_site(i)
                    .iter()
                    .map(|f| CapacityFault {
                        from: SimTime::from_secs_f64(f.from_secs),
                        until: SimTime::from_secs_f64(f.until_secs),
                        factor: f.factor,
                    })
                    .collect();
                if !windows.is_empty() {
                    site.up_link.set_faults(windows.clone());
                    site.down_link.set_faults(windows);
                }
            }
        }

        let rng_probe = rngs.stream("probe");
        let rng_chunk_truth = rngs.stream("chunk-truth");
        let pool = ShardPool::new(cfg.shard_workers.unwrap_or(0));
        EngineWorld {
            ic: Cloud::homogeneous("ic", cfg.n_ic, cfg.ic_speed),
            sites,
            est,
            scheduler,
            jobs: Vec::new(),
            est_exec: Vec::new(),
            placements: Vec::new(),
            site_of: Vec::new(),
            completions: Vec::new(),
            output_bytes: Vec::new(),
            outstanding: OutstandingSet::new(),
            #[cfg(test)]
            est_completion: Vec::new(),
            ticket_promise: Vec::new(),
            timelines: Vec::new(),
            batch_decisions: Vec::new(),
            ic_wake: None,
            batches_total: cfg.arrivals.n_batches,
            batches_seen: 0,
            next_tid: 0,
            rng_probe,
            rng_chunk_truth,
            cfg,
            n_pull_backs: 0,
            n_push_outs: 0,
            ec_provisioned_machine_secs: 0.0,
            last_provision_accrual: SimTime::ZERO,
            scratch_exec: Vec::new(),
            scratch_link: Vec::new(),
            ft_index: FreeTimeIndex::new(),
            fluid: FluidScratch::new(),
            ic_free_buf: Vec::new(),
            ec_free_buf: Vec::new(),
            pb_cands: Vec::new(),
            pb_meta: Vec::new(),
            po_waiting: Vec::new(),
            po_queue: Vec::new(),
            chaos,
            chaos_wake: None,
            pool,
            admit_scratch: Vec::new(),
            serve: None,
            econ,
        }
    }

    /// Accrues active-EC instance-seconds up to `now`. Called whenever the
    /// active limits are about to change, and once at run end.
    fn accrue_provisioning(&mut self, now: SimTime) {
        let span = (now - self.last_provision_accrual).as_secs_f64();
        if span > 0.0 {
            let active: usize = self.sites.iter().map(|s| s.cloud.active_limit()).sum();
            self.ec_provisioned_machine_secs += active as f64 * span;
            self.last_provision_accrual = now;
        }
    }

    /// Instance-seconds of EC capacity provisioned over the run.
    pub fn ec_provisioned_machine_secs(&self) -> f64 {
        self.ec_provisioned_machine_secs
    }

    /// The autonomic estimation models in their end-of-run state.
    pub fn estimates(&self) -> &EstimateProvider {
        &self.est
    }

    /// Per-job lifecycle timelines, indexed by job id.
    pub fn timelines(&self) -> &[crate::timeline::JobTimeline] {
        &self.timelines
    }

    /// The internal-cloud pool (probe API — lets external probes replay
    /// the decision loop's inputs through the public `Cloud` iterators).
    pub fn ic_cloud(&self) -> &Cloud<JobId> {
        &self.ic
    }

    /// An external-cloud pool (probe API; site 0 is the primary EC).
    pub fn ec_cloud(&self, site: usize) -> &Cloud<JobId> {
        &self.sites[site].cloud
    }

    /// The recorded QRSM estimate (standard seconds) per admitted job.
    pub fn est_exec_estimates(&self) -> &[f64] {
        &self.est_exec
    }

    /// Number of admitted jobs still outstanding (no result delivered).
    pub fn outstanding_jobs(&self) -> usize {
        self.outstanding.len()
    }

    /// The experiment configuration this world was built from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    fn fresh_tid(&mut self) -> TransferId {
        self.next_tid += 1;
        TransferId(self.next_tid)
    }

    fn all_done(&self) -> bool {
        match &self.serve {
            // Serving: the generator reached the horizon and every admitted
            // job has delivered — O(1), no scan over a per-job vector.
            Some(s) => s.arrivals_done && self.outstanding.is_empty(),
            None => {
                self.batches_seen == self.batches_total
                    && self.completions.iter().all(|c| c.is_some())
            }
        }
    }

    /// Rescan oracle for [`fill_running_free`]: estimated seconds until
    /// each machine frees from its *running* job only.
    #[cfg(test)]
    fn est_running_free_secs(&self, cloud: &Cloud<JobId>, speed: f64, now: SimTime) -> Vec<f64> {
        let mut free = vec![0.0; cloud.n_machines()];
        for (key, machine, started) in cloud.running_detail() {
            let est = est_exec_or_default(&self.est_exec, key);
            let elapsed_std = (now - started).as_secs_f64() * speed;
            free[machine.0] = (est - elapsed_std).max(0.0) / speed;
        }
        if cloud.failed_machines() > 0 {
            for (i, v) in free.iter_mut().enumerate() {
                if cloud.is_failed(MachineId(i)) {
                    *v = DEAD_FREE_SECS;
                }
            }
        }
        free
    }

    /// Rescan oracle for [`fill_est_free`]: re-derives the hybrid drain
    /// semantics by full O(queue × machines) rescan — the original linear
    /// `min_by` replay at or below [`DRAIN_WINDOW`], and an independently
    /// recomputed fluid-prefix + exact-tail drain above it (prefix ticks
    /// re-summed from `queued_detail`, bases independently sorted, level
    /// via the shared [`fluid_fill_level`] fold). Retained so tests can
    /// pin the indexed path to it decision by decision, bitwise.
    #[cfg(test)]
    fn est_free_secs(&self, cloud: &Cloud<JobId>, speed: f64, now: SimTime) -> Vec<f64> {
        let mut free = self.est_running_free_secs(cloud, speed, now);
        let q = cloud.queued();
        let mut tail_start = 0;
        if q > DRAIN_WINDOW && free.iter().any(|v| *v < DEAD_FREE_SECS) {
            tail_start = q - DRAIN_WINDOW;
            // Prefix ticks re-summed job by job, independent of the
            // Cloud's maintained total.
            let prefix_ticks: u64 =
                cloud.queued_detail().take(tail_start).map(|(_, t)| t).sum();
            let prefix_secs = SimDuration::from_micros(prefix_ticks).as_secs_f64();
            let mut bases: Vec<f64> =
                free.iter().copied().filter(|v| *v < DEAD_FREE_SECS).collect();
            bases.sort_unstable_by(f64::total_cmp);
            let level = fluid_fill_level(&bases, prefix_secs);
            for v in free.iter_mut() {
                if *v < DEAD_FREE_SECS && *v < level {
                    *v = level;
                }
            }
        }
        // Tail jobs drain onto the earliest-free machines, FCFS.
        for (key, _) in cloud.queued_detail().skip(tail_start) {
            let est = est_exec_or_default(&self.est_exec, key);
            let (idx, _) = free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .expect("machines exist");
            free[idx] += est / speed;
        }
        free
    }

    /// Refreshes the load-model backing buffers in place and returns the
    /// broker's site choice. Allocation-free once the buffers are warm.
    fn refresh_load_model(&mut self, now: SimTime) -> usize {
        let site = self.broker_site(now);
        fill_est_free(
            &self.est_exec,
            &mut self.ft_index,
            &mut self.fluid,
            &mut self.ic_free_buf,
            &self.ic,
            self.cfg.ic_speed,
            now,
        );
        fill_est_free(
            &self.est_exec,
            &mut self.ft_index,
            &mut self.fluid,
            &mut self.ec_free_buf,
            &self.sites[site].cloud,
            self.cfg.ec_speed,
            now,
        );
        #[cfg(test)]
        self.assert_decision_state_matches_oracles(site, now);
        site
    }

    /// The borrowed scheduler snapshot over the refreshed buffers. The EC
    /// view reflects the least-backlogged site (the broker's first choice).
    fn load_view(&self, site: usize, now: SimTime) -> LoadModel<'_> {
        let s = &self.sites[site];
        LoadModel {
            now,
            ic_free_secs: &self.ic_free_buf,
            ec_free_secs: &self.ec_free_buf,
            upload_backlog_bytes: s.upload_backlog_bytes(),
            download_backlog_bytes: s.download_backlog_bytes(),
            outstanding_est_completions: self.outstanding.values(),
        }
    }

    /// Probe API: refreshes and returns the scheduler's state snapshot as
    /// of `now`, exactly as the controller would see it before a batch.
    /// Read-only with respect to pipeline state; allocation-free once warm.
    pub fn load_snapshot(&mut self, now: SimTime) -> LoadModel<'_> {
        let site = self.refresh_load_model(now);
        self.load_view(site, now)
    }

    /// Probe API: one steady-state decision sweep — refresh the load
    /// model, then (when the rescheduling extension is on) evaluate
    /// pull-back and push-out. This is the engine's per-event decision
    /// cost without the event-queue machinery around it; live drivers
    /// must still resync component wakes after any state change.
    // conform::hot_root
    pub fn decision_sweep(&mut self, now: SimTime) {
        let _ = self.load_snapshot(now);
        if self.cfg.rescheduling {
            try_pull_back(self, now);
            try_push_out(self, now);
        }
    }

    /// In test builds every decision cross-checks the indexed free-time
    /// drain and the incremental outstanding pool against the retained
    /// rescan oracles — bitwise for free-times, multiset for the pool.
    #[cfg(test)]
    fn assert_decision_state_matches_oracles(&self, site: usize, now: SimTime) {
        let ic_oracle = self.est_free_secs(&self.ic, self.cfg.ic_speed, now);
        assert_eq!(self.ic_free_buf, ic_oracle, "indexed IC drain diverged from rescan");
        let ec_oracle = self.est_free_secs(&self.sites[site].cloud, self.cfg.ec_speed, now);
        assert_eq!(self.ec_free_buf, ec_oracle, "indexed EC drain diverged from rescan");
        let mut want: Vec<SimTime> = self.est_completion.iter().flatten().copied().collect();
        let mut got: Vec<SimTime> = self.outstanding.values().to_vec();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "incremental outstanding pool diverged from rebuild");
        // The maintained queue-cost tick totals the fluid prefix relies on
        // must equal a per-job recompute from the estimate table.
        let tick_rescan = |cloud: &Cloud<JobId>, speed: f64| -> u64 {
            cloud
                .queued_detail()
                .map(|(key, _)| drain_cost_ticks(&self.est_exec, key, speed))
                .sum()
        };
        assert_eq!(
            self.ic.queued_cost_ticks(),
            tick_rescan(&self.ic, self.cfg.ic_speed),
            "maintained IC queue-cost ticks diverged from rescan"
        );
        for (i, s) in self.sites.iter().enumerate() {
            assert_eq!(
                s.cloud.queued_cost_ticks(),
                tick_rescan(&s.cloud, self.cfg.ec_speed),
                "maintained EC queue-cost ticks diverged from rescan (site {i})"
            );
            assert_eq!(
                s.down_queue_bytes,
                s.down_queue.iter().map(|(_, b)| *b).sum::<u64>(),
                "maintained download-queue bytes diverged from rescan (site {i})"
            );
        }
    }

    /// The site a new burst would go to: least upload backlog, ties to the
    /// lowest index.
    fn least_loaded_site(&self) -> usize {
        self.sites
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.upload_backlog_bytes() + s.cloud.boundary().queued as u64, *i))
            .map(|(i, _)| i)
            .expect("at least one EC site")
    }

    /// The broker's site pick for the next burst. The legacy (default)
    /// policy is earliest-round-trip via [`Self::least_loaded_site`]; the
    /// cost-aware policy scores each site by estimated dollar pressure and
    /// keys ties back through the legacy ordering, so with equal prices it
    /// degenerates to the legacy broker exactly (oracle-asserted in test
    /// builds).
    fn broker_site(&self, now: SimTime) -> usize {
        match &self.econ {
            Some(e) if e.broker == BrokerPolicy::CostAware => {
                let site = self.cost_aware_site(e, now);
                #[cfg(test)]
                if e.prices.iter().all(|p| *p == e.prices[0]) && e.penalty.is_free() {
                    assert_eq!(
                        site,
                        self.least_loaded_site(),
                        "degenerate cost-aware broker diverged from the legacy pick"
                    );
                }
                site
            }
            _ => self.least_loaded_site(),
        }
    }

    /// Cost-aware broker score, minimized over sites: the site's hourly
    /// compute rate as of `now` (the spot trace makes this time-varying)
    /// plus its per-GB transfer rate plus the penalty a job would accrue
    /// waiting out the site's upload backlog — the $-cost × deadline
    /// feasibility product collapsed to one integer [`Money`] key. Unpriced
    /// sites score zero on the dollar axes; exact ties fall through to the
    /// legacy (backlog, index) key.
    fn cost_aware_site(&self, econ: &EconState, now: SimTime) -> usize {
        let at_micros = (now - SimTime::ZERO).as_micros();
        let mut best: Option<((Money, u64, usize), usize)> = None;
        for (i, (s, price)) in self.sites.iter().zip(&econ.prices).enumerate() {
            let legacy = s.upload_backlog_bytes() + s.cloud.boundary().queued as u64;
            let score = match price {
                None => {
                    // A free site still exposes deadline risk through its
                    // backlog delay.
                    let wait = self.est.upload_secs(now, s.upload_backlog_bytes());
                    econ.penalty.charge(SimDuration::from_secs_f64(wait).as_micros())
                }
                Some(p) => {
                    let wait = self.est.upload_secs(now, s.upload_backlog_bytes());
                    p.hourly_rate_at(at_micros)
                        + p.transfer_rate()
                        + econ.penalty.charge(SimDuration::from_secs_f64(wait).as_micros())
                }
            };
            let key = (score, legacy, i);
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, i));
            }
        }
        best.map(|(_, i)| i).unwrap_or(0)
    }

    /// Probe API: the broker's current site choice at `now`, exactly as
    /// the next burst decision would compute it (golden tie-break tests
    /// and the perf probes drive this directly).
    pub fn broker_site_choice(&self, now: SimTime) -> usize {
        self.broker_site(now)
    }

    fn classify(&self, site: usize, bytes: u64) -> SizeClass {
        match self.sites[site].sibs_bounds {
            Some(b) if self.cfg.scheduler == SchedulerKind::Sibs => b.classify(bytes),
            _ => SizeClass::Small,
        }
    }

    fn report(&self, end: SimTime) -> RunReport {
        let completion_times: Vec<SimTime> =
            self.completions.iter().map(|c| c.expect("run finished")).collect();
        let arrival = SimTime::ZERO;
        let makespan_secs = metrics::makespan(&completion_times, arrival);
        // Eq. 11/12 use the *decision-time* placements per batch; the flat
        // `self.placements` can differ after rescheduling moves jobs.
        let (per_batch, overall) = metrics::burst_ratio_batched(&self.batch_decisions);
        // The two heavy report sections are disjoint pure reads of the
        // finished run, so they go through the shard pool's join — inline
        // (same order) at one worker, concurrent otherwise. The closures
        // capture bound field refs rather than `&self` because the
        // scheduler box is not `Sync`.
        let jobs = &self.jobs;
        let output_bytes = &self.output_bytes;
        let ticket_promise = &self.ticket_promise;
        let ct = &completion_times;
        let oo_cfg = self.cfg.oo;
        let horizon = SimTime::from_secs_f64(makespan_secs) + oo_cfg.sample_interval;
        let (oo, (batch_turnaround_secs, sequential, tickets, completion_delays)) =
            self.pool.join(
                move || {
                    let records: Vec<CompletionRecord> = ct
                        .iter()
                        .enumerate()
                        .map(|(i, &at)| CompletionRecord {
                            id: i as u64,
                            at,
                            bytes: output_bytes[i],
                        })
                        .collect();
                    oo_series(&records, jobs.len().max(1), horizon, oo_cfg)
                },
                move || {
                    let batch_of: Vec<u32> = jobs.iter().map(|j| j.batch).collect();
                    let n_batches =
                        batch_of.iter().map(|&b| b as usize + 1).max().unwrap_or(0);
                    // First-arrival per batch in a single pass over the
                    // jobs (the old per-batch `find` scan was O(batches·n)).
                    let mut batch_arrivals = vec![SimTime::ZERO; n_batches];
                    let mut seen = vec![false; n_batches];
                    for j in jobs.iter() {
                        let b = j.batch as usize;
                        if !seen[b] {
                            seen[b] = true;
                            batch_arrivals[b] = j.arrival;
                        }
                    }
                    let batch_turnaround_secs =
                        metrics::batch_turnarounds(ct, &batch_of, &batch_arrivals);
                    let sequential: f64 = jobs.iter().map(|j| j.true_service_secs).sum();
                    let tickets: Vec<cloudburst_sla::TicketOutcome> = ct
                        .iter()
                        .enumerate()
                        .map(|(i, &completed)| cloudburst_sla::TicketOutcome {
                            id: i as u64,
                            issued: jobs[i].arrival,
                            promised: ticket_promise[i],
                            completed,
                        })
                        .collect();
                    let completion_delays = metrics::completion_delay_series(ct, arrival);
                    (batch_turnaround_secs, sequential, tickets, completion_delays)
                },
            );
        RunReport {
            scheduler: self.scheduler.name().to_string(),
            bucket: self.cfg.arrivals.bucket.label().to_string(),
            seed: self.cfg.seed,
            n_jobs: self.jobs.len(),
            makespan_secs,
            speedup: metrics::speedup(sequential, makespan_secs),
            sequential_secs: sequential,
            ic_utilization: self.ic.average_utilization(end.min(
                SimTime::from_secs_f64(makespan_secs),
            )),
            ec_utilization: {
                let t = end.min(SimTime::from_secs_f64(makespan_secs));
                let n: usize = self.sites.iter().map(|s| s.cloud.n_machines()).sum();
                if n == 0 {
                    0.0
                } else {
                    self.sites
                        .iter()
                        .map(|s| s.cloud.average_utilization(t) * s.cloud.n_machines() as f64)
                        .sum::<f64>()
                        / n as f64
                }
            },
            burst_ratio: overall,
            burst_ratio_per_batch: per_batch,
            batch_turnaround_secs,
            completion_delays,
            completion_times,
            oo_series: oo,
            uploaded_bytes: self.sites.iter().map(|s| s.uploaded_bytes).sum(),
            downloaded_bytes: self.sites.iter().map(|s| s.downloaded_bytes).sum(),
            tickets,
            faults: self.chaos.as_ref().map(|c| c.metrics.clone()).unwrap_or_default(),
            econ: self.econ.as_ref().map(|e| e.metrics.clone()),
        }
    }

    /// Realized fault/recovery counters (`None` on fault-free runs, where
    /// no chaos state is armed at all).
    pub fn fault_metrics(&self) -> Option<&FaultMetrics> {
        self.chaos.as_ref().map(|c| &c.metrics)
    }

    /// Realized economics ledger (`None` when no econ layer is armed).
    pub fn econ_metrics(&self) -> Option<&CostMetrics> {
        self.econ.as_ref().map(|e| &e.metrics)
    }

    /// The compiled fault plan driving this run, if any — serialize it with
    /// [`FaultPlan::to_json`] for a byte-identical replay.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref().map(|c| &c.plan)
    }

    /// Number of pull-back rescheduling actions taken (diagnostics).
    pub fn pull_backs(&self) -> u64 {
        self.n_pull_backs
    }

    /// Number of push-out rescheduling actions taken (diagnostics).
    pub fn push_outs(&self) -> u64 {
        self.n_push_outs
    }

    /// Delivered output bytes recorded for job `id` (0 until delivery).
    /// Used by the closed-vs-open equivalence oracle to replay the closed
    /// run's byte stream through a fresh [`WindowSeries`].
    pub fn job_output_bytes(&self, id: u64) -> u64 {
        self.output_bytes[id as usize]
    }

    /// Serving: live (admitted, not yet delivered) jobs right now.
    /// Panics unless the world is in serve mode.
    pub fn serve_live_jobs(&self) -> u64 {
        self.serve.as_ref().expect("serve-mode world").windows.live()
    }

    /// Serving: jobs admitted so far.
    pub fn serve_admitted_jobs(&self) -> u64 {
        self.serve.as_ref().expect("serve-mode world").windows.total_admitted()
    }

    /// Serving: jobs placed externally at admission so far.
    pub fn serve_bursted_jobs(&self) -> u64 {
        self.serve.as_ref().expect("serve-mode world").bursted_jobs
    }

    /// Serving: takes the closed per-window rows buffered so far, leaving
    /// the series running — long-run probes call this every window so the
    /// buffer never grows past O(1). Rows drained here are *not* repeated
    /// in the final [`ServeReport`].
    pub fn drain_serve_windows(&mut self) -> Vec<WindowStats> {
        self.serve.as_mut().expect("serve-mode world").windows.drain_closed()
    }

    /// Serving: assembles the windowed report at drain time. Closes every
    /// window up to (and including the partial one containing) `end`.
    fn serve_report(&mut self, end: SimTime) -> ServeReport {
        let faults = self.chaos.as_ref().map(|c| c.metrics.clone()).unwrap_or_default();
        let econ = self.econ.as_ref().map(|e| e.metrics.clone());
        let scheduler = self.scheduler.name().to_string();
        let seed = self.cfg.seed;
        let serve = self.serve.as_mut().expect("serve-mode world");
        let window = serve.windows.config().window;
        // Final econ snapshot, so the last (partial) window's delta covers
        // everything billed since the previous epoch heartbeat.
        if let Some(e) = &econ {
            serve.windows.observe_econ(end, e.snapshot());
        }
        // `end + window` flushes the partial final window (advance_to only
        // closes windows that end at or before the flush instant).
        serve.windows.finish(end + window, &faults);
        let windows = serve.windows.drain_closed();
        let drained_at_secs = (end - SimTime::ZERO).as_secs_f64();
        ServeReport {
            scheduler,
            seed,
            horizon_secs: (serve.horizon - SimTime::ZERO).as_secs_f64(),
            drained_at_secs,
            jobs_admitted: serve.windows.total_admitted(),
            jobs_completed: serve.windows.total_completed(),
            output_bytes: serve.output_bytes_total,
            mean_completion_rate_per_sec: if drained_at_secs > 0.0 {
                serve.windows.total_completed() as f64 / drained_at_secs
            } else {
                0.0
            },
            live_high_water: serve.live_high_water,
            faults,
            windows,
            econ,
        }
    }
}

// ---------------------------------------------------------------------------
// Event handlers
// ---------------------------------------------------------------------------

type W = EngineWorld;

/// Cancels and re-arms all component wake events from their `next_wake`s.
fn resync(w: &mut W, sim: &mut Sim<W>) {
    if let Some(id) = w.ic_wake.take() {
        sim.cancel(id);
    }
    if let Some(t) = w.ic.next_wake() {
        w.ic_wake = Some(sim.schedule_at(t, |w, sim| {
            w.ic_wake = None;
            on_wake(w, sim);
        }));
    }
    for i in 0..w.sites.len() {
        if let Some(id) = w.sites[i].exec_wake.take() {
            sim.cancel(id);
        }
        if let Some(t) = w.sites[i].cloud.next_wake() {
            w.sites[i].exec_wake = Some(sim.schedule_at(t, move |w, sim| {
                w.sites[i].exec_wake = None;
                on_wake(w, sim);
            }));
        }
        if let Some(id) = w.sites[i].up_wake.take() {
            sim.cancel(id);
        }
        if let Some(t) = w.sites[i].up_link.next_wake() {
            w.sites[i].up_wake = Some(sim.schedule_at(t, move |w, sim| {
                w.sites[i].up_wake = None;
                on_wake(w, sim);
            }));
        }
        if let Some(id) = w.sites[i].down_wake.take() {
            sim.cancel(id);
        }
        if let Some(t) = w.sites[i].down_link.next_wake() {
            w.sites[i].down_wake = Some(sim.schedule_at(t, move |w, sim| {
                w.sites[i].down_wake = None;
                on_wake(w, sim);
            }));
        }
    }
    if let Some(id) = w.chaos_wake.take() {
        sim.cancel(id);
    }
    if let Some(t) = w.chaos.as_ref().and_then(|c| c.next_deadline()) {
        w.chaos_wake = Some(sim.schedule_at(t, |w, sim| {
            w.chaos_wake = None;
            on_wake(w, sim);
        }));
    }
}

/// Advances every component to `now` and handles all completions, looping
/// until quiescent, then pumps idle slots. All wake events funnel here.
fn on_wake(w: &mut W, sim: &mut Sim<W>) {
    let now = sim.now();
    // The drain buffers live on the world; they're taken out for the loop
    // (completions are `Copy`) so handlers below can borrow `w` freely.
    let mut execs = std::mem::take(&mut w.scratch_exec);
    let mut transfers = std::mem::take(&mut w.scratch_link);
    loop {
        let mut any = false;

        // IC executions.
        execs.clear();
        w.ic.advance_into(now, &mut execs);
        for c in &execs {
            if chaos_exec_failed(w, c, now, None) {
                continue;
            }
            finish_exec(w, c.key, c.at, c.started, true);
            // IC result goes straight to the result queue.
            record_completion(w, c.key, c.at);
        }
        if !execs.is_empty() {
            any = true;
            if w.cfg.rescheduling {
                try_pull_back(w, now);
            }
        }

        for i in 0..w.sites.len() {
            // Upload completions.
            transfers.clear();
            w.sites[i].up_link.advance_into(now, &mut transfers);
            for &c in &transfers {
                any = true;
                on_upload_done(w, i, c);
            }
            // EC executions.
            execs.clear();
            w.sites[i].cloud.advance_into(now, &mut execs);
            for &c in &execs {
                any = true;
                // Bill before the fault check: a failed attempt still ran
                // on metered capacity. (A crash-aborted attempt never
                // completes, so it never reaches this loop — unbilled.)
                econ_bill_exec(w, i, &c);
                if chaos_exec_failed(w, &c, now, Some(i)) {
                    continue;
                }
                finish_exec(w, c.key, c.at, c.started, false);
                let out = w.jobs[c.key.0 as usize].output_bytes;
                w.sites[i].down_queue.push_back((c.key, out));
                w.sites[i].down_queue_bytes += out;
            }
            // Download completions.
            transfers.clear();
            w.sites[i].down_link.advance_into(now, &mut transfers);
            for &c in &transfers {
                any = true;
                on_download_done(w, i, c);
            }
        }
        if !any {
            break;
        }
    }
    execs.clear();
    transfers.clear();
    w.scratch_exec = execs;
    w.scratch_link = transfers;
    if w.chaos.is_some() {
        process_chaos_timers(w, now);
    }
    // Refill transfer slots.
    for i in 0..w.sites.len() {
        pump_uploads(w, i, now);
        pump_downloads(w, i, now);
    }
    if w.cfg.rescheduling {
        try_push_out(w, now);
    }
    resync(w, sim);
}

/// Applies one batch arrival: snapshot → schedule → re-index → dispatch.
///
/// A batch arrival is an epoch barrier of the sharded engine: every
/// component has been advanced to `now` (completed transfers and
/// executions exchanged), the QRSM observations queued during the epoch
/// are refit in exactly once, and the pure per-job estimate reads fan out
/// over the shard pool against that frozen model before the sequential
/// decision spine (planner commits, queue pushes) replays them in job-id
/// order — byte-identical for any worker count.
fn on_batch(w: &mut W, sim: &mut Sim<W>, batch_jobs: Vec<Job>) {
    let now = sim.now();
    // Process anything that completed up to now first.
    on_wake(w, sim);
    // Epoch barrier: the scheduler, planner, and ticket quotes below all
    // read the QRSM; queued observations become current here, once.
    w.est.flush_refits();

    let site = w.refresh_load_model(now);
    w.scheduler.set_upload_queue_state(w.sites[site].up_queues.queued_bytes());
    // Built from direct field borrows (not `load_view`) so the borrow
    // checker sees the snapshot and `w.scheduler`/`w.est` as disjoint.
    let load = LoadModel {
        now,
        ic_free_secs: &w.ic_free_buf,
        ec_free_secs: &w.ec_free_buf,
        upload_backlog_bytes: w.sites[site].upload_backlog_bytes(),
        download_backlog_bytes: w.sites[site].download_backlog_bytes(),
        outstanding_est_completions: w.outstanding.values(),
    };
    let schedule = w.scheduler.schedule_batch(batch_jobs, &load, &w.est);
    if let Some(b) = schedule.sibs {
        w.sites[site].sibs_bounds = Some(b);
    }

    // Re-index into the global FCFS id space and record estimates by
    // replaying the scheduler's own planner commitments. The admission is
    // split into three phases so the per-job estimate reads can fan out
    // over the shard pool without perturbing a single sequential byte:
    //
    // Phase 1 (sequential): chunk ground-truth resampling on the one
    // shared RNG stream (call order preserved exactly). The scheduler
    // fabricates a pro-rata service time when it splits a job; the engine
    // is the authority on ground truth, so chunk times are re-sampled
    // from the truth law on the chunk's own features (documents are
    // embarrassingly parallel) plus the split/merge overhead. Without
    // this, chunks would secretly carry their parent's superlinear cost
    // and every QRSM estimate of a chunk would be biased low. Global ids
    // materialize in phase 3, after the admission gate — a rejected job
    // must not consume an id (the spine slot would leak).
    let mut admitted = schedule.jobs;
    let base = w.jobs.len() as u64;
    let mut fresh = 0u64;
    for (job, _) in admitted.iter_mut() {
        if job.is_chunk() {
            job.true_service_secs = w.cfg.truth.sample_secs(&mut w.rng_chunk_truth, &job.features)
                + w.cfg.chunk_policy.per_chunk_overhead_secs;
        }
    }

    // Phase 2 (shard fan-out): each job's execution estimate and RMSE
    // quote is a pure read of the frozen post-barrier model, so the pool
    // computes them in parallel and merges results back in id order —
    // byte-identical for any worker count.
    let mut planner_inputs = std::mem::take(&mut w.admit_scratch);
    let pool = w.pool;
    {
        let est = &w.est;
        pool.map_ordered_into(&admitted, &mut planner_inputs, |_, (job, _)| {
            (
                est.exec_secs(job),
                est.qrsm.rmse_for(job.features.job_type.code() as u64),
            )
        });
    }

    // Phase 3 (sequential spine): the admission gate, planner
    // commitments, dispatch pushes, and ticket quotes replay in id order
    // exactly as the serial engine.
    let mut planner = Planner::new(&load, &w.est);
    let mut decisions = Vec::with_capacity(admitted.len());
    for ((mut job, placement), &(est_secs, rmse_secs)) in
        admitted.into_iter().zip(&planner_inputs)
    {
        // The ticket quote's k-RMSE confidence margin (also the admission
        // gate's safety margin below).
        let margin = cloudburst_sim::SimDuration::from_secs_f64(
            w.cfg.ticket_margin_k.max(0.0) * rmse_secs,
        );
        // Admission gate: under commit-or-reject the broker either commits
        // to the job's Eq. 1 deadline (arrival + turnaround budget) or
        // turns the job away before it consumes an id, a planner
        // commitment, or a ticket. The feasibility probe reads the planner
        // without mutating it, so rejected jobs leave no trace.
        if let Some(econ) = &mut w.econ {
            if let AdmissionPolicy::CommitOrReject { max_turnaround_secs } = econ.admission {
                let est_finish = match placement {
                    Placement::Internal => planner.ft_ic(&job),
                    Placement::External => planner.ft_ec(&job),
                };
                let deadline = job.arrival + SimDuration::from_secs_f64(max_turnaround_secs);
                if est_finish + margin > deadline {
                    econ.metrics.jobs_rejected += 1;
                    continue;
                }
            }
        }
        // Serving recycles the slot of a completed job (LIFO); closed mode
        // has no free list, so every id is fresh — `base + k` exactly as
        // before the serving mode existed.
        job.id = match w.serve.as_mut().and_then(|s| s.free_ids.pop()) {
            Some(id) => JobId(id),
            None => {
                let id = JobId(base + fresh);
                fresh += 1;
                id
            }
        };
        let id = job.id;
        let idx = id.0 as usize;
        let est_ct = planner.commit(&job, placement);
        decisions.push(placement == Placement::External);
        // The ticket quote: estimate plus the confidence margin.
        let promise = est_ct + margin;
        let timeline = crate::timeline::JobTimeline::new(id.0, job.arrival, now, placement);

        debug_assert!(idx <= w.jobs.len(), "admitted id beyond the spine");
        if idx == w.jobs.len() {
            // Fresh slot — the only arm closed mode ever takes.
            w.est_exec.push(est_secs);
            w.placements.push(placement);
            w.site_of.push(site);
            w.completions.push(None);
            w.output_bytes.push(0);
            w.outstanding.insert(id.0, est_ct);
            #[cfg(test)]
            w.est_completion.push(Some(est_ct));
            w.ticket_promise.push(promise);
            w.timelines.push(timeline);
        } else {
            // Recycled slot (serving only): overwrite in place — the spine
            // stays at the live-job high-water mark.
            w.est_exec[idx] = est_secs;
            w.placements[idx] = placement;
            w.site_of[idx] = site;
            w.completions[idx] = None;
            w.output_bytes[idx] = 0;
            w.outstanding.reinstate(id.0, est_ct);
            #[cfg(test)]
            {
                w.est_completion[idx] = Some(est_ct);
            }
            w.ticket_promise[idx] = promise;
            w.timelines[idx] = timeline;
            if let Some(ch) = &mut w.chaos {
                ch.exec_attempts[idx] = 0;
                ch.up_attempts[idx] = 0;
                ch.down_attempts[idx] = 0;
            }
        }
        if let Some(serve) = &mut w.serve {
            // The dense arrival sequence number survives id recycling —
            // it is what the windowed OO frontier orders on.
            let seq = serve.windows.total_admitted();
            serve.windows.on_admit(seq, now);
            if idx == serve.seq_of.len() {
                serve.seq_of.push(seq);
            } else {
                serve.seq_of[idx] = seq;
            }
            if placement == Placement::External {
                serve.bursted_jobs += 1;
            }
            serve.live_high_water = serve.live_high_water.max(serve.windows.live());
        }
        if let Some(econ) = &mut w.econ {
            // The deadline spine, in lock-step with the job spine: a hard
            // committed deadline under commit-or-reject (the gate above
            // admitted this job), the advisory promise under admit-all.
            let (deadline, committed) = match econ.admission {
                AdmissionPolicy::CommitOrReject { max_turnaround_secs } => {
                    econ.metrics.jobs_committed += 1;
                    (job.arrival + SimDuration::from_secs_f64(max_turnaround_secs), true)
                }
                AdmissionPolicy::AdmitAll => (promise, false),
            };
            if idx == econ.deadline.len() {
                econ.deadline.push(deadline);
                econ.committed.push(committed);
            } else {
                econ.deadline[idx] = deadline;
                econ.committed[idx] = committed;
            }
        }
        match placement {
            Placement::Internal => {
                let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ic_speed);
                w.ic.submit_weighted(now, id, job.true_service_secs, ticks);
            }
            Placement::External => {
                let class = w.classify(site, job.input_bytes());
                w.sites[site].up_queues.push(class, id, job.input_bytes());
            }
        }
        if idx == w.jobs.len() {
            w.jobs.push(job);
        } else {
            w.jobs[idx] = job;
        }
    }
    // Hand the warm precompute buffer back for the next batch.
    w.admit_scratch = planner_inputs;
    if let Some(ch) = &mut w.chaos {
        ch.exec_attempts.resize(w.jobs.len(), 0);
        ch.up_attempts.resize(w.jobs.len(), 0);
        ch.down_attempts.resize(w.jobs.len(), 0);
    }
    if w.serve.is_none() {
        // Closed mode keeps the whole-run per-batch decision log for the
        // Eq. 11/12 burst ratios; serving folds it into the counter above,
        // because an unbounded stream cannot keep a per-batch vector.
        w.batch_decisions.push(decisions);
    }
    w.batches_seen += 1;

    for i in 0..w.sites.len() {
        pump_uploads(w, i, now);
    }
    resync(w, sim);
}

/// One serving epoch: generate the next batch lazily, admit it through the
/// ordinary epoch-barrier machinery, fold a fault heartbeat into the
/// window series, and schedule the next epoch — exactly one arrival event
/// is ever pending, so the event queue stays O(live) no matter how long
/// the stream runs. This is the sustained-throughput hot loop of the
/// serving mode.
// conform::hot_root
fn on_serve_epoch(w: &mut W, sim: &mut Sim<W>) {
    let now = sim.now();
    let batch = {
        let serve = w.serve.as_mut().expect("serve epoch implies serve state");
        debug_assert_eq!(serve.arrivals.next_arrival(), now, "epoch event drifted");
        serve.arrivals.next_batch()
    };
    on_batch(w, sim, batch.jobs);
    // Heartbeat at epoch granularity: the window series attributes fault
    // counters to windows by cumulative snapshot deltas.
    let faults = w.chaos.as_ref().map(|c| c.metrics.clone()).unwrap_or_default();
    let econ_snap = w.econ.as_ref().map(|e| e.metrics.snapshot());
    let serve = w.serve.as_mut().expect("serve state");
    serve.windows.heartbeat(now, &faults);
    if let Some(snap) = econ_snap {
        serve.windows.observe_econ(now, snap);
    }
    let next = serve.arrivals.next_arrival();
    if next < serve.horizon {
        sim.schedule_at(next, on_serve_epoch);
    } else {
        serve.arrivals_done = true;
    }
}

/// Starts transfers on any idle upload slots.
fn pump_uploads(w: &mut W, site: usize, now: SimTime) {
    for slot in 0..w.sites[site].up_slots.len() {
        if w.sites[site].up_slots[slot].1.is_some() {
            continue;
        }
        let class = w.sites[site].up_slots[slot].0;
        let Some((id, bytes)) = w.sites[site].up_queues.pop_for(class) else {
            continue;
        };
        let threads = w.est.up_tuner.threads_for(now);
        let tid = w.fresh_tid();
        w.timelines[id.0 as usize].upload_started = Some(now);
        // Chaos: arm the recovery timeout; a stalled transfer occupies its
        // slot but never reaches the link — only the timeout frees it.
        let mut stalled = false;
        if let Some(ch) = &mut w.chaos {
            stalled = ch.plan.transfer_stalls(id.0, true, ch.up_attempts[id.0 as usize]);
            let timeout = ch.plan.retry.timeout_secs(w.est.upload_secs(now, bytes));
            ch.arm(
                now + SimDuration::from_secs_f64(timeout),
                ChaosTimer::UpTimeout { site, tid, started: now },
            );
        }
        let s = &mut w.sites[site];
        if !stalled {
            s.up_link.start(now, tid, bytes, threads);
        }
        s.up_slots[slot].1 = Some(tid);
        s.up_map.insert(tid, (Payload::Job(id), threads));
    }
}

/// Starts the next download if the slot is free.
fn pump_downloads(w: &mut W, site: usize, now: SimTime) {
    if w.sites[site].down_active.is_some() {
        return;
    }
    let Some((id, bytes)) = w.sites[site].down_queue.pop_front() else {
        return;
    };
    w.sites[site].down_queue_bytes -= bytes;
    let threads = w.est.down_tuner.threads_for(now);
    let tid = w.fresh_tid();
    let mut stalled = false;
    if let Some(ch) = &mut w.chaos {
        stalled = ch.plan.transfer_stalls(id.0, false, ch.down_attempts[id.0 as usize]);
        let timeout = ch.plan.retry.timeout_secs(w.est.download_secs(now, bytes));
        ch.arm(
            now + SimDuration::from_secs_f64(timeout),
            ChaosTimer::DownTimeout { site, tid, started: now },
        );
    }
    let s = &mut w.sites[site];
    if !stalled {
        s.down_link.start(now, tid, bytes, threads);
    }
    s.down_active = Some(tid);
    s.down_map.insert(tid, (Payload::Job(id), threads));
}

/// Upload finished: learn from it and submit to the EC (or close a probe).
fn on_upload_done(w: &mut W, site: usize, c: Completion) {
    let Some((payload, threads)) = w.sites[site].up_map.remove(&c.id) else {
        return; // aborted (pulled back)
    };
    let other = w.sites[site].up_link.active_threads();
    observe_transfer(&mut w.est, true, &c, threads, other);
    // Free the slot that carried this transfer.
    if let Some(slot) = w.sites[site].up_slots.iter_mut().find(|(_, t)| *t == Some(c.id)) {
        slot.1 = None;
    }
    match payload {
        Payload::Job(id) => {
            w.sites[site].uploaded_bytes += c.bytes;
            // The bytes physically moved even if the payload is then
            // declared lost below — the provider charges either way.
            econ_bill_transfer(w, site, c.bytes);
            if chaos_transfer_lost(w, site, id, &c, true) {
                return;
            }
            w.timelines[id.0 as usize].upload_done = Some(c.at);
            let svc = w.jobs[id.0 as usize].true_service_secs;
            let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ec_speed);
            w.sites[site].cloud.submit_weighted(c.at, id, svc, ticks);
        }
        Payload::Probe => {}
    }
}

/// Download finished: the result reaches the result queue.
fn on_download_done(w: &mut W, site: usize, c: Completion) {
    let Some((payload, threads)) = w.sites[site].down_map.remove(&c.id) else {
        return;
    };
    let other = w.sites[site].down_link.active_threads();
    observe_transfer(&mut w.est, false, &c, threads, other);
    if w.sites[site].down_active == Some(c.id) {
        w.sites[site].down_active = None;
    }
    match payload {
        Payload::Job(id) => {
            w.sites[site].downloaded_bytes += c.bytes;
            econ_bill_transfer(w, site, c.bytes);
            if chaos_transfer_lost(w, site, id, &c, false) {
                return;
            }
            w.timelines[id.0 as usize].download_done = Some(c.at);
            record_completion(w, id, c.at);
        }
        Payload::Probe => {}
    }
}

/// Feeds a finished transfer into the EWMA estimator and the thread tuner.
/// The raw-pipe estimate inverts the saturation law *including the threads
/// of transfers still contending at completion time* (`other_threads`) —
/// without this, concurrent size-interval uploads would teach the estimator
/// a pipe several times slower than reality and starve the burst decisions.
/// Transfers that finished mid-span are not counted, so the estimate stays
/// slightly conservative — the realistic error mode.
fn observe_transfer(
    est: &mut EstimateProvider,
    upload: bool,
    c: &Completion,
    threads: u32,
    other_threads: u32,
) {
    let observed = c.observed_rate_bps();
    let w = (threads + other_threads) as f64;
    let raw = observed * (w + est.kappa) / threads as f64;
    if upload {
        est.up.observe(c.at, raw);
        est.up_tuner.report(c.at, threads, observed);
    } else {
        est.down.observe(c.at, raw);
        est.down_tuner.report(c.at, threads, observed);
    }
}

/// Execution finished anywhere: tune the QRSM with the observed time.
/// The observation is *queued* — the sliding-window rank-1 update lands
/// now, but the `O(terms³)` coefficient refit is deferred to the next
/// epoch barrier where predictions are actually read (`on_batch`,
/// `try_pull_back`, `try_push_out`, or run end). That keeps a completion
/// burst O(completions × terms²) instead of O(completions × terms³), and
/// the flushed coefficients are bitwise what eager per-completion refits
/// would have produced at each read point.
fn finish_exec(w: &mut W, id: JobId, at: SimTime, started: SimTime, ic: bool) {
    let speed = if ic { w.cfg.ic_speed } else { w.cfg.ec_speed };
    w.timelines[id.0 as usize].exec_started = Some(started);
    w.timelines[id.0 as usize].exec_done = Some(at);
    let standard_secs = (at - started).as_secs_f64() * speed;
    let job = &w.jobs[id.0 as usize];
    let class = job.features.job_type.code() as u64;
    let regress = job.features.regressors_arr();
    w.est.qrsm.observe_queued(class, &regress, standard_secs);
}

/// A job's result entered the result queue.
fn record_completion(w: &mut W, id: JobId, at: SimTime) {
    let idx = id.0 as usize;
    debug_assert!(w.completions[idx].is_none(), "job completed twice: {id}");
    econ_settle_completion(w, id, at);
    w.completions[idx] = Some(at);
    w.output_bytes[idx] = w.jobs[idx].output_bytes;
    w.outstanding.remove(id.0);
    #[cfg(test)]
    {
        w.est_completion[idx] = None;
    }
    w.timelines[idx].completed = Some(at);
    if w.serve.is_some() {
        // Serving: fold the completion into the windowed aggregates and
        // recycle the slot. Everything per-job dies here; only the window
        // rows survive.
        let out = w.jobs[idx].output_bytes;
        let turnaround_secs = (at - w.jobs[idx].arrival).as_secs_f64();
        let met = at <= w.ticket_promise[idx];
        let Some(serve) = w.serve.as_mut() else { return };
        serve.windows.on_complete(serve.seq_of[idx], at, out, turnaround_secs, Some(met));
        serve.output_bytes_total += out;
        serve.free_ids.push(id.0);
    }
}

// ---------------------------------------------------------------------------
// Economics (cost accounting — see DESIGN.md §10)
// ---------------------------------------------------------------------------

/// Econ: bills one completed EC execution attempt at its site's price.
/// On-demand and spot meter the occupancy span; hourly rental acquires
/// whole wall-clock hours through the per-machine `paid_until` mark.
fn econ_bill_exec(w: &mut W, site: usize, c: &ExecCompletion<JobId>) {
    let Some(econ) = &mut w.econ else { return };
    let Some(price) = econ.prices.get(site).and_then(|p| p.as_ref()) else { return };
    let Some(paid) = econ.paid_until.get_mut(site).and_then(|v| v.get_mut(c.machine.0)) else {
        return;
    };
    let started = (c.started - SimTime::ZERO).as_micros();
    let ended = (c.at - SimTime::ZERO).as_micros();
    let before = *paid;
    let amount = price.exec_charge(started, ended, paid);
    let acquired = *paid - before;
    if acquired > 0 {
        econ.metrics.add_rental_hours(site, acquired);
    }
    econ.metrics.add_compute(site, amount);
}

/// Econ: bills the bytes a completed job transfer physically moved.
/// Probe transfers are the autonomic layer's own overhead and stay free.
fn econ_bill_transfer(w: &mut W, site: usize, bytes: u64) {
    let Some(econ) = &mut w.econ else { return };
    let Some(price) = econ.prices.get(site).and_then(|p| p.as_ref()) else { return };
    econ.metrics.add_transfer(site, price.transfer_charge(bytes));
}

/// Econ: settles a delivered job against its deadline — the penalty
/// schedule prices the lateness, and a miss counts as a commitment
/// violation (hard deadline) or ordinary lateness (advisory promise).
fn econ_settle_completion(w: &mut W, id: JobId, at: SimTime) {
    let Some(econ) = &mut w.econ else { return };
    let Some(&deadline) = econ.deadline.get(id.0 as usize) else { return };
    if at <= deadline {
        return;
    }
    econ.metrics.penalty += econ.penalty.charge((at - deadline).as_micros());
    if econ.committed.get(id.0 as usize).copied().unwrap_or(false) {
        econ.metrics.commitment_violations += 1;
    } else {
        econ.metrics.late_completions += 1;
    }
}

// ---------------------------------------------------------------------------
// Chaos recovery (fault injection — see DESIGN.md §9)
// ---------------------------------------------------------------------------

/// Chaos: the plan declares this completed execution attempt failed. The
/// work is wasted (the QRSM learns nothing from it) and the job re-runs on
/// the same pool; the hashed per-attempt decider plus the retry cap bound
/// the number of re-runs, so every job still terminates.
fn chaos_exec_failed(
    w: &mut W,
    c: &ExecCompletion<JobId>,
    now: SimTime,
    site: Option<usize>,
) -> bool {
    let Some(ch) = &mut w.chaos else { return false };
    let idx = c.key.0 as usize;
    if !ch.plan.exec_fails(c.key.0, ch.exec_attempts[idx]) {
        return false;
    }
    ch.exec_attempts[idx] += 1;
    ch.metrics.exec_failures += 1;
    ch.metrics.fault_delay_secs += (c.at - c.started).as_secs_f64();
    let svc = w.jobs[idx].true_service_secs;
    match site {
        None => {
            let ticks = drain_cost_ticks(&w.est_exec, c.key, w.cfg.ic_speed);
            w.ic.submit_weighted(now, c.key, svc, ticks);
        }
        Some(s) => {
            let ticks = drain_cost_ticks(&w.est_exec, c.key, w.cfg.ec_speed);
            w.sites[s].cloud.submit_weighted(now, c.key, svc, ticks);
        }
    }
    true
}

/// Chaos: a completed transfer whose payload the plan declares lost. The
/// bytes physically moved (and taught the estimator), but the job must go
/// again — retry with backoff while the budget lasts, then re-dispatch to
/// the IC.
fn chaos_transfer_lost(w: &mut W, site: usize, id: JobId, c: &Completion, upload: bool) -> bool {
    let Some(ch) = &mut w.chaos else { return false };
    let idx = id.0 as usize;
    let attempts = if upload { &mut ch.up_attempts } else { &mut ch.down_attempts };
    if !ch.plan.transfer_lost(id.0, upload, attempts[idx]) {
        return false;
    }
    attempts[idx] += 1;
    let attempt = attempts[idx];
    ch.metrics.transfer_losses += 1;
    if attempt <= ch.plan.retry.max_transfer_retries {
        let backoff = ch.plan.retry.backoff_secs(attempt - 1);
        ch.metrics.transfer_retries += 1;
        ch.metrics.fault_delay_secs += backoff;
        let timer = if upload {
            ChaosTimer::UpRetry { site, id }
        } else {
            ChaosTimer::DownRetry { site, id }
        };
        ch.arm(c.at + SimDuration::from_secs_f64(backoff), timer);
    } else {
        redispatch_to_ic(w, id, c.at);
    }
    true
}

/// Chaos recovery of last resort: hand the job back to the IC wait queue,
/// where the ordinary FCFS/pull-back machinery owns it again — recovery
/// re-enters the normal scheduling path rather than a special case. The
/// outstanding estimate is revised so Eq. 1 slack keeps governing.
fn redispatch_to_ic(w: &mut W, id: JobId, now: SimTime) {
    let idx = id.0 as usize;
    w.placements[idx] = Placement::Internal;
    w.timelines[idx].placement = Placement::Internal;
    let svc = w.jobs[idx].true_service_secs;
    let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ic_speed);
    w.ic.submit_weighted(now, id, svc, ticks);
    reinstate_estimate(w, id, now, w.cfg.ic_speed);
    let ch = w.chaos.as_mut().expect("re-dispatch implies chaos state");
    ch.metrics.redispatches += 1;
}

/// Revises the outstanding completion estimate of a re-dispatched job (and
/// its test-build rebuild oracle, in lock step).
fn reinstate_estimate(w: &mut W, id: JobId, now: SimTime, speed: f64) {
    let est = est_exec_or_default(&w.est_exec, id);
    let est_ct = now + SimDuration::from_secs_f64(est / speed);
    w.outstanding.reinstate(id.0, est_ct);
    #[cfg(test)]
    {
        w.est_completion[id.0 as usize] = Some(est_ct);
    }
}

/// Fires every matured chaos timer in (deadline, seq) order. Runs after
/// the completion loop, so a transfer that physically finished by `now`
/// has already vacated its map entry and its stale timer no-ops.
fn process_chaos_timers(w: &mut W, now: SimTime) {
    loop {
        let Some(ch) = &mut w.chaos else { return };
        let Some(timer) = ch.pop_matured(now) else { return };
        match timer {
            ChaosTimer::UpTimeout { site, tid, started } => {
                on_transfer_timeout(w, site, tid, started, now, true);
            }
            ChaosTimer::DownTimeout { site, tid, started } => {
                on_transfer_timeout(w, site, tid, started, now, false);
            }
            ChaosTimer::UpRetry { site, id } => {
                let bytes = w.jobs[id.0 as usize].input_bytes();
                let class = w.classify(site, bytes);
                w.sites[site].up_queues.push_front(class, id, bytes);
            }
            ChaosTimer::DownRetry { site, id } => {
                let bytes = w.jobs[id.0 as usize].output_bytes;
                w.sites[site].down_queue.push_front((id, bytes));
                w.sites[site].down_queue_bytes += bytes;
            }
        }
    }
}

/// A transfer blew its recovery deadline: abort it (a stalled one never
/// reached the link), free its slot, and retry with backoff — or, once the
/// budget is exhausted, re-dispatch the job to the IC.
fn on_transfer_timeout(
    w: &mut W,
    site: usize,
    tid: TransferId,
    started: SimTime,
    now: SimTime,
    upload: bool,
) {
    let s = &mut w.sites[site];
    let removed = if upload { s.up_map.remove(&tid) } else { s.down_map.remove(&tid) };
    let Some((Payload::Job(id), _threads)) = removed else {
        return; // completed in the meantime — stale timer
    };
    if upload {
        let _ = s.up_link.abort(now, tid);
        if let Some(slot) = s.up_slots.iter_mut().find(|(_, t)| *t == Some(tid)) {
            slot.1 = None;
        }
    } else {
        let _ = s.down_link.abort(now, tid);
        if s.down_active == Some(tid) {
            s.down_active = None;
        }
    }
    let ch = w.chaos.as_mut().expect("chaos timers imply chaos state");
    let idx = id.0 as usize;
    ch.metrics.transfer_timeouts += 1;
    ch.metrics.fault_delay_secs += (now - started).as_secs_f64();
    let attempts = if upload { &mut ch.up_attempts } else { &mut ch.down_attempts };
    attempts[idx] += 1;
    let attempt = attempts[idx];
    if attempt <= ch.plan.retry.max_transfer_retries {
        let backoff = ch.plan.retry.backoff_secs(attempt - 1);
        ch.metrics.transfer_retries += 1;
        ch.metrics.fault_delay_secs += backoff;
        let timer = if upload {
            ChaosTimer::UpRetry { site, id }
        } else {
            ChaosTimer::DownRetry { site, id }
        };
        ch.arm(now + SimDuration::from_secs_f64(backoff), timer);
    } else {
        redispatch_to_ic(w, id, now);
    }
}

/// Chaos: a machine crashes. Any running job is aborted and re-submitted
/// through its pool's ordinary wait queue; the crashed machine leaves the
/// dispatch rotation (and the free-time index sees it as never freeing)
/// until recovery.
fn on_machine_down(w: &mut W, sim: &mut Sim<W>, pool: Pool, machine: u32) {
    if w.all_done() {
        return;
    }
    let now = sim.now();
    on_wake(w, sim);
    let m = MachineId(machine as usize);
    let aborted = match pool {
        Pool::Ic if m.0 < w.ic.n_machines() => w.ic.fail_machine(now, m),
        Pool::Ec(s)
            if (s as usize) < w.sites.len() && m.0 < w.sites[s as usize].cloud.n_machines() =>
        {
            w.sites[s as usize].cloud.fail_machine(now, m)
        }
        _ => return, // plan compiled against a wider estate — ignore
    };
    {
        let ch = w.chaos.as_mut().expect("machine events imply chaos state");
        ch.metrics.machine_crashes += 1;
        if let Some((_, span)) = aborted {
            ch.metrics.fault_delay_secs += span.as_secs_f64();
        }
    }
    if let Some((id, _)) = aborted {
        let svc = w.jobs[id.0 as usize].true_service_secs;
        match pool {
            Pool::Ic => {
                let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ic_speed);
                w.ic.submit_weighted(now, id, svc, ticks);
                reinstate_estimate(w, id, now, w.cfg.ic_speed);
            }
            Pool::Ec(s) => {
                let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ec_speed);
                w.sites[s as usize].cloud.submit_weighted(now, id, svc, ticks);
                reinstate_estimate(w, id, now, w.cfg.ec_speed);
            }
        }
        let ch = w.chaos.as_mut().expect("chaos state");
        ch.metrics.redispatches += 1;
    }
    resync(w, sim);
}

/// Chaos: a crashed machine comes back and immediately pulls queued work.
fn on_machine_up(w: &mut W, sim: &mut Sim<W>, pool: Pool, machine: u32) {
    if w.all_done() {
        return;
    }
    let now = sim.now();
    on_wake(w, sim);
    let m = MachineId(machine as usize);
    match pool {
        Pool::Ic if m.0 < w.ic.n_machines() => w.ic.recover_machine(now, m),
        Pool::Ec(s)
            if (s as usize) < w.sites.len() && m.0 < w.sites[s as usize].cloud.n_machines() =>
        {
            w.sites[s as usize].cloud.recover_machine(now, m)
        }
        _ => return,
    }
    let ch = w.chaos.as_mut().expect("machine events imply chaos state");
    ch.metrics.machine_recoveries += 1;
    resync(w, sim);
}

/// Sec. IV-D pull-back: a freed IC machine reclaims the head of an EC
/// upload queue when local re-execution beats the estimated EC remainder.
// conform::hot_root
fn try_pull_back(w: &mut W, now: SimTime) {
    // Epoch barrier: queued QRSM observations become current before any
    // estimate read below (no-op branch when nothing is pending).
    w.est.flush_refits();
    // The IC pool is read through its boundary snapshot, re-frozen per
    // reclaimed job (each pull-back mutates the pool).
    while matches!(w.ic.boundary(), b if b.idle > 0 && b.queued == 0) {
        // Head candidates: the front of each class queue at each site.
        // `pb_cands`/`pb_meta` are persistent world scratch kept in
        // lock-step, so the decision slice feeds `pull_back_candidate`
        // directly — no per-iteration Vecs.
        w.pb_cands.clear();
        w.pb_meta.clear();
        for (si, s) in w.sites.iter().enumerate() {
            for class in SizeClass::ALL {
                if let Some((&id, bytes)) = s.up_queues.front(class) {
                    let backlog = s.up_link.remaining_bytes();
                    let wait = w.est.upload_secs(now, backlog);
                    let up = w.est.upload_secs(now, bytes);
                    let job = &w.jobs[id.0 as usize];
                    let exec = w.est.exec_secs_ec(job);
                    let down = w.est.download_secs(now, w.est.output_bytes(job));
                    w.pb_cands.push(PullBackCandidate {
                        est_remaining_ec_secs: wait + up + exec + down,
                        est_ic_reexec_secs: w.est.exec_secs_ic(job),
                        not_yet_running: true,
                    });
                    w.pb_meta.push((si, class, id));
                }
            }
        }
        let Some(k) = pull_back_candidate(&w.pb_cands) else { break };
        let (si, class, id) = w.pb_meta[k];
        let (got, _) = w.sites[si]
            .up_queues
            .pop_front_class(class)
            .expect("candidate still at the head");
        debug_assert_eq!(got, id);
        w.placements[id.0 as usize] = Placement::Internal;
        w.timelines[id.0 as usize].placement = Placement::Internal;
        let svc = w.jobs[id.0 as usize].true_service_secs;
        let ticks = drain_cost_ticks(&w.est_exec, id, w.cfg.ic_speed);
        w.ic.submit_weighted(now, id, svc, ticks);
        w.n_pull_backs += 1;
    }
}

/// Sec. IV-D push-out: an idle upload pipe steals slack-satisfying work
/// from the tail of the IC wait queue.
// conform::hot_root
fn try_push_out(w: &mut W, now: SimTime) {
    let site = w.broker_site(now);
    if !w.sites[site].up_queues.is_empty() || w.sites[site].up_link.boundary().in_flight > 0 {
        return;
    }
    let q = w.ic.queued();
    if q == 0 {
        return;
    }
    // Epoch barrier: the candidate scan below reads QRSM predictions, so
    // queued observations must be refit in first (after the early returns
    // — a wake that evaluates no candidate reads no estimate).
    w.est.flush_refits();
    // Fresh Eq. 1 anchors: replay the IC's FCFS drain with *current*
    // estimates. Using the completion estimates recorded at batch time
    // would bake in everything the system has since fallen behind on, and
    // late in a run those instants are already in the past. The drain
    // commits through the tournament index — O(log m) per waiting job.
    //
    // Beyond DRAIN_WINDOW the candidate pool is the queue's last
    // DRAIN_WINDOW jobs on top of the fluid prefix (the paper's scan
    // starts from the tail anyway, and the prefix collapses into the λ
    // anchor re-base), keeping one sweep depth-flat.
    let speed = w.cfg.ic_speed;
    fill_running_free(&w.est_exec, &mut w.ic_free_buf, &w.ic, speed, now);
    w.po_waiting.clear();
    if q > DRAIN_WINDOW {
        let tail_ticks: u64 = w.ic.queued_tail(DRAIN_WINDOW).map(|(_, t)| t).sum();
        let prefix_secs =
            SimDuration::from_micros(w.ic.queued_cost_ticks() - tail_ticks).as_secs_f64();
        if w.fluid.fill(&mut w.ic_free_buf, prefix_secs, DEAD_FREE_SECS).is_some() {
            w.po_waiting.extend(w.ic.queued_tail(DRAIN_WINDOW).map(|(key, _)| key));
        }
    }
    if w.po_waiting.is_empty() {
        // At or below the window — or every machine dead (fall back to
        // the exact full-queue scan; depth-flatness is moot then).
        w.po_waiting.extend(w.ic.queued_keys());
    }
    w.ft_index.reset_from(&w.ic_free_buf);
    let mut ahead_max: f64 = live_max(&w.ic_free_buf);
    w.po_queue.clear();
    for i in 0..w.po_waiting.len() {
        let id = w.po_waiting[i];
        let slack = eq1_slack(now, ahead_max);
        let job = &w.jobs[id.0 as usize];
        let up = w.est.upload_secs(now, job.input_bytes());
        let exec = w.est.exec_secs_ec(job);
        let down = w.est.download_secs(now, w.est.output_bytes(job));
        // Commit this job onto the planned drain for its successors.
        let est = est_exec_or_default(&w.est_exec, id);
        let idx = w.ft_index.fcfs_commit(est / speed);
        let committed = w.ft_index.value(idx);
        if committed < DEAD_FREE_SECS {
            ahead_max = ahead_max.max(committed);
        }
        w.po_queue.push(PushOutCandidate { slack, round_trip_secs: up + exec + down });
    }
    #[cfg(test)]
    assert_push_out_queue_matches_oracle(w, now, speed);
    let Some(k) = push_out_candidate(now, &w.po_queue) else {
        return;
    };
    let id = w.po_waiting[k];
    if w.ic.cancel_queued(id).is_none() {
        return;
    }
    let bytes = w.jobs[id.0 as usize].input_bytes();
    let class = w.classify(site, bytes);
    w.placements[id.0 as usize] = Placement::External;
    w.timelines[id.0 as usize].placement = Placement::External;
    w.site_of[id.0 as usize] = site;
    w.sites[site].up_queues.push(class, id, bytes);
    w.n_push_outs += 1;
    pump_uploads(w, site, now);
}

/// Rescan oracle for the indexed push-out drain: re-derives the hybrid
/// candidate pool (full queue at or below [`DRAIN_WINDOW`] or with a dead
/// estate, tail window over an independently recomputed fluid prefix
/// above it) and the per-job linear min-scan, then asserts the indexed
/// path produced the identical pool and bitwise-identical slacks, round
/// trips, and drain state.
#[cfg(test)]
fn assert_push_out_queue_matches_oracle(w: &W, now: SimTime, speed: f64) {
    let mut free = w.est_running_free_secs(&w.ic, speed, now);
    let q = w.ic.queued();
    let mut expected: Vec<JobId> = Vec::new();
    if q > DRAIN_WINDOW && free.iter().any(|v| *v < DEAD_FREE_SECS) {
        let prefix_ticks: u64 =
            w.ic.queued_detail().take(q - DRAIN_WINDOW).map(|(_, t)| t).sum();
        let prefix_secs = SimDuration::from_micros(prefix_ticks).as_secs_f64();
        let mut bases: Vec<f64> = free.iter().copied().filter(|v| *v < DEAD_FREE_SECS).collect();
        bases.sort_unstable_by(f64::total_cmp);
        let level = fluid_fill_level(&bases, prefix_secs);
        for v in free.iter_mut() {
            if *v < DEAD_FREE_SECS && *v < level {
                *v = level;
            }
        }
        expected.extend(w.ic.queued_detail().skip(q - DRAIN_WINDOW).map(|(key, _)| key));
    } else {
        expected.extend(w.ic.queued_keys());
    }
    assert_eq!(w.po_waiting, expected, "push-out candidate pool diverged from rescan");
    let mut ahead_max: f64 = live_max(&free);
    for (i, id) in w.po_waiting.iter().enumerate() {
        let slack = eq1_slack(now, ahead_max);
        let job = &w.jobs[id.0 as usize];
        let up = w.est.upload_secs(now, job.input_bytes());
        let exec = w.est.exec_secs_ec(job);
        let down = w.est.download_secs(now, w.est.output_bytes(job));
        let est = est_exec_or_default(&w.est_exec, *id);
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("IC has machines");
        free[idx] += est / speed;
        if free[idx] < DEAD_FREE_SECS {
            ahead_max = ahead_max.max(free[idx]);
        }
        let got = &w.po_queue[i];
        assert_eq!(got.slack, slack, "push-out slack diverged at queue pos {i}");
        assert_eq!(
            got.round_trip_secs.to_bits(),
            (up + exec + down).to_bits(),
            "push-out round trip diverged at queue pos {i}"
        );
    }
    assert_eq!(w.ft_index.values(), &free[..], "indexed push-out drain diverged from rescan");
}

/// Autonomic probe: a 1 MB transfer each way, then self-reschedule.
fn on_probe(w: &mut W, sim: &mut Sim<W>, interval: SimDuration) {
    if w.all_done() {
        return; // run is over; let the event queue drain
    }
    let now = sim.now();
    use rand::Rng;
    let site = w.rng_probe.gen_range(0..w.sites.len());
    let up_threads = w.est.up_tuner.threads_for(now);
    let down_threads = w.est.down_tuner.threads_for(now);
    let up_tid = w.fresh_tid();
    let down_tid = w.fresh_tid();
    let s = &mut w.sites[site];
    s.up_link.start(now, up_tid, PROBE_BYTES, up_threads);
    s.up_map.insert(up_tid, (Payload::Probe, up_threads));
    s.down_link.start(now, down_tid, PROBE_BYTES, down_threads);
    s.down_map.insert(down_tid, (Payload::Probe, down_threads));
    resync(w, sim);
    sim.schedule_in(interval, move |w, sim| on_probe(w, sim, interval));
}

/// Elastic-EC scaling tick: size the active EC pool to just saturate the
/// download pipe (Sec. V-B-4). See `crate::scaling` for the policy.
fn on_scaling_tick(w: &mut W, sim: &mut Sim<W>, period: SimDuration) {
    if w.all_done() {
        return;
    }
    let now = sim.now();
    w.accrue_provisioning(now);
    if let Some(policy) = w.cfg.scaling {
        for s in &mut w.sites {
            let target = crate::scaling::target_instances(
                &policy,
                s.pipeline_jobs(),
                s.download_backlog_bytes(),
                w.est.down.predict(now),
            );
            s.cloud.set_active_limit(target);
        }
    }
    resync(w, sim);
    sim.schedule_in(period, move |w, sim| on_scaling_tick(w, sim, period));
}

/// Runs one experiment to completion and returns its SLA report.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunReport {
    let (report, _world) = run_experiment_detailed(cfg);
    report
}

/// As [`run_experiment`], also returning the final world for diagnostics
/// (rescheduling counters, estimator state, timelines).
pub fn run_experiment_detailed(cfg: &ExperimentConfig) -> (RunReport, EngineWorld) {
    let rngs = RngFactory::new(cfg.seed);
    let gen = BatchArrivals::new(cfg.arrivals.clone());
    let batches = gen.generate(&rngs, &cfg.truth);
    run_with_batches(cfg, batches)
}

/// Runs the engine against an explicit arrival schedule — a replayed
/// [`cloudburst_workload::WorkloadTrace`], a production log import, or a
/// hand-built scenario — instead of generating the workload from
/// `cfg.arrivals`. The config's arrival section only seeds the estimator
/// training in this mode.
pub fn run_with_batches(
    cfg: &ExperimentConfig,
    batches: Vec<cloudburst_workload::Batch>,
) -> (RunReport, EngineWorld) {
    let mut harness = EngineHarness::new(cfg, batches);
    harness.run();
    harness.finish()
}

/// As [`run_with_batches`], with an explicit pre-compiled fault plan — the
/// serialize → replay path of the chaos layer. Replaying a plan produced
/// by a prior run (same config, same batches) is byte-identical to that
/// run. `None` falls back to compiling `cfg.faults`.
pub fn run_with_plan(
    cfg: &ExperimentConfig,
    batches: Vec<cloudburst_workload::Batch>,
    plan: Option<FaultPlan>,
) -> (RunReport, EngineWorld) {
    let mut harness = EngineHarness::new_with_plan(cfg, batches, plan);
    harness.run();
    harness.finish()
}

/// Schedules the control-plane events both modes share: the fault plan's
/// machine crash/recover cycles, the autonomic probe, and the elastic
/// scaling tick. Scheduling order (faults, probe, scaling) is part of the
/// byte contract — same-instant events fire in schedule order.
fn schedule_control_events(world: &EngineWorld, sim: &mut Sim<EngineWorld>) {
    if let Some(ch) = &world.chaos {
        for f in ch.plan.machine_faults.clone() {
            let (pool, machine) = (f.pool, f.machine);
            sim.schedule_at(SimTime::from_secs_f64(f.down_at_secs), move |w, sim| {
                on_machine_down(w, sim, pool, machine)
            });
            sim.schedule_at(SimTime::from_secs_f64(f.up_at_secs), move |w, sim| {
                on_machine_up(w, sim, pool, machine)
            });
        }
    }
    if let Some(interval) = world.cfg.probe_interval {
        sim.schedule_in(interval, move |w, sim| on_probe(w, sim, interval));
    }
    if let Some(policy) = world.cfg.scaling {
        sim.schedule_in(policy.period, move |w, sim| on_scaling_tick(w, sim, policy.period));
    }
}

/// Runs an open-system serving session to drain and returns its windowed
/// report: arrivals stream in lazily until the horizon, the pipeline
/// drains, and per-job state is recycled throughout — memory is O(live
/// jobs + windows) for any stream length.
pub fn serve_experiment(cfg: &ExperimentConfig) -> ServeReport {
    serve_experiment_detailed(cfg).0
}

/// As [`serve_experiment`], also returning the final world for diagnostics.
pub fn serve_experiment_detailed(cfg: &ExperimentConfig) -> (ServeReport, EngineWorld) {
    let mut harness = ServeHarness::new(cfg);
    harness.run();
    harness.finish()
}

/// A steppable serving driver — [`EngineHarness`]'s open-system twin. The
/// long-run probes step it window by window, draining closed rows as they
/// go, so even a multi-day stream holds only live state.
pub struct ServeHarness {
    world: EngineWorld,
    sim: Sim<EngineWorld>,
}

impl std::fmt::Debug for ServeHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHarness")
            .field("now", &self.sim.now())
            .field("pending", &self.sim.pending())
            .field("world", &self.world)
            .finish()
    }
}

impl ServeHarness {
    /// Builds the serving world from `cfg.serve` (defaults when absent)
    /// and schedules the first epoch plus the control-plane events.
    pub fn new(cfg: &ExperimentConfig) -> ServeHarness {
        let serve_cfg = cfg.serve.clone().unwrap_or_default();
        ServeHarness::with_serve_config(cfg, serve_cfg)
    }

    /// As [`ServeHarness::new`] with an explicit serving section (the
    /// probes' path: one base config, many stream shapes).
    pub fn with_serve_config(cfg: &ExperimentConfig, serve_cfg: ServeConfig) -> ServeHarness {
        let mut world = EngineWorld::new(cfg.clone(), None);
        let rngs = RngFactory::new(cfg.seed);
        let arrivals = OpenArrivals::new(serve_cfg.arrivals, &rngs, cfg.truth.clone());
        world.serve = Some(ServeState {
            arrivals,
            horizon: SimTime::ZERO + serve_cfg.horizon,
            windows: WindowSeries::new(serve_cfg.window),
            free_ids: Vec::new(),
            seq_of: Vec::new(),
            bursted_jobs: 0,
            output_bytes_total: 0,
            live_high_water: 0,
            arrivals_done: false,
        });
        let mut sim: Sim<EngineWorld> = Sim::new();
        // Exactly one arrival event is pending at any time: the first epoch
        // here, each successor from `on_serve_epoch` itself.
        sim.schedule_at(SimTime::ZERO, on_serve_epoch);
        schedule_control_events(&world, &mut sim);
        ServeHarness { world, sim }
    }

    /// Fires the next event; `false` once the queue is empty.
    pub fn step(&mut self) -> bool {
        self.sim.step(&mut self.world)
    }

    /// Fires every event scheduled up to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(&mut self.world, until);
    }

    /// Drains the event queue completely (horizon, then pipeline drain).
    pub fn run(&mut self) {
        self.sim.run(&mut self.world);
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The simulated world, for inspection.
    pub fn world(&self) -> &EngineWorld {
        &self.world
    }

    /// Mutable world access (window draining, probe APIs).
    pub fn world_mut(&mut self) -> &mut EngineWorld {
        &mut self.world
    }

    /// Asserts the stream drained, accrues provisioning, and produces the
    /// windowed serving report.
    pub fn finish(mut self) -> (ServeReport, EngineWorld) {
        assert!(
            self.world.all_done(),
            "serving deadlock: {} jobs live after the event queue drained",
            self.world.outstanding.len(),
        );
        let end = self.sim.now();
        self.world.accrue_provisioning(end);
        // Final epoch barrier, as in closed mode: the handed-back world's
        // QRSM state matches the eager-refit engine's.
        self.world.est.flush_refits();
        let report = self.world.serve_report(end);
        (report, self.world)
    }
}

/// A steppable engine driver: the event queue plus the world, exposed so
/// probes, benchmarks, and tests can advance a run to a mid-flight state
/// and exercise the decision path ([`EngineWorld::load_snapshot`],
/// [`EngineWorld::decision_sweep`]) directly. [`run_with_batches`] is
/// `new` → `run` → `finish`.
pub struct EngineHarness {
    world: EngineWorld,
    sim: Sim<EngineWorld>,
}

impl std::fmt::Debug for EngineHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHarness")
            .field("now", &self.sim.now())
            .field("pending", &self.sim.pending())
            .field("world", &self.world)
            .finish()
    }
}

impl EngineHarness {
    /// Builds the world and schedules the arrival/probe/scaling events.
    pub fn new(cfg: &ExperimentConfig, batches: Vec<cloudburst_workload::Batch>) -> EngineHarness {
        EngineHarness::new_with_plan(cfg, batches, None)
    }

    /// As [`EngineHarness::new`], with an explicit pre-compiled fault plan
    /// (the replay path); `None` compiles `cfg.faults` instead. The plan's
    /// machine crash/recover cycles become ordinary DES events here.
    pub fn new_with_plan(
        cfg: &ExperimentConfig,
        batches: Vec<cloudburst_workload::Batch>,
        plan: Option<FaultPlan>,
    ) -> EngineHarness {
        let mut world = EngineWorld::new(cfg.clone(), plan);
        world.batches_total = batches.len() as u32;
        let mut sim: Sim<EngineWorld> = Sim::new();
        for b in batches {
            sim.schedule_at(b.arrival, move |w, sim| on_batch(w, sim, b.jobs));
        }
        schedule_control_events(&world, &mut sim);
        EngineHarness { world, sim }
    }

    /// Fires the next event; `false` once the queue is empty.
    pub fn step(&mut self) -> bool {
        self.sim.step(&mut self.world)
    }

    /// Fires every event scheduled up to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(&mut self.world, until);
    }

    /// Drains the event queue completely.
    pub fn run(&mut self) {
        self.sim.run(&mut self.world);
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The simulated world, for inspection.
    pub fn world(&self) -> &EngineWorld {
        &self.world
    }

    /// Mutable world access for probe APIs. Callers that mutate pipeline
    /// state must drive the run to completion through events they schedule
    /// themselves — the harness only resyncs on its own event handlers.
    pub fn world_mut(&mut self) -> &mut EngineWorld {
        &mut self.world
    }

    /// Asserts the run completed, accrues provisioning, and produces the
    /// SLA report.
    pub fn finish(mut self) -> (RunReport, EngineWorld) {
        assert!(
            self.world.all_done(),
            "engine deadlock: {} of {} jobs incomplete",
            self.world.completions.iter().filter(|c| c.is_none()).count(),
            self.world.jobs.len()
        );
        let end = self.sim.now();
        self.world.accrue_provisioning(end);
        // Final epoch barrier: observations queued after the last decision
        // point still refit in, so the handed-back world's QRSM state is
        // identical to the eager-refit engine's.
        self.world.est.flush_refits();
        let report = self.world.report(end);
        (report, self.world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_workload::{ArrivalConfig, SizeBucket};

    fn small_cfg(kind: SchedulerKind, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            scheduler: kind,
            arrivals: ArrivalConfig {
                n_batches: 3,
                jobs_per_batch: 6.0,
                bucket: SizeBucket::Uniform,
                ..ArrivalConfig::default()
            },
            training_docs: 150,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn ic_only_run_completes_all_jobs() {
        let r = run_experiment(&small_cfg(SchedulerKind::IcOnly, 1));
        assert!(r.n_jobs > 0);
        assert_eq!(r.completion_times.len(), r.n_jobs);
        assert_eq!(r.burst_ratio, 0.0);
        assert_eq!(r.ec_utilization, 0.0);
        assert!(r.makespan_secs > 0.0);
        assert!(r.speedup > 1.0, "8 machines must beat sequential: {}", r.speedup);
        assert_eq!(r.uploaded_bytes, 0);
    }

    #[test]
    fn greedy_run_completes_and_reports() {
        let r = run_experiment(&small_cfg(SchedulerKind::Greedy, 2));
        assert_eq!(r.completion_times.len(), r.n_jobs);
        assert!(r.ic_utilization > 0.0 && r.ic_utilization <= 1.0);
        assert!((0.0..=1.0).contains(&r.burst_ratio));
        assert!(!r.oo_series.is_empty());
    }

    #[test]
    fn op_run_satisfies_basic_invariants() {
        let r = run_experiment(&small_cfg(SchedulerKind::OrderPreserving, 3));
        assert_eq!(r.completion_times.len(), r.n_jobs);
        // Makespan at least the largest single service time.
        assert!(r.makespan_secs * 1.02 >= r.sequential_secs / r.n_jobs as f64);
        // OO series is monotone.
        for w2 in r.oo_series.windows(2) {
            assert!(w2[1].o_t >= w2[0].o_t);
        }
    }

    #[test]
    fn sibs_run_completes() {
        let r = run_experiment(&small_cfg(SchedulerKind::Sibs, 4));
        assert_eq!(r.completion_times.len(), r.n_jobs);
        assert_eq!(r.scheduler, "op+sibs");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_experiment(&small_cfg(SchedulerKind::Greedy, 7));
        let b = run_experiment(&small_cfg(SchedulerKind::Greedy, 7));
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.completion_times, b.completion_times);
        assert_eq!(a.burst_ratio, b.burst_ratio);
        let c = run_experiment(&small_cfg(SchedulerKind::Greedy, 8));
        assert_ne!(a.makespan_secs, c.makespan_secs);
    }

    #[test]
    fn bursting_uploads_and_downloads_bytes() {
        // Load the IC hard enough that bursts happen.
        let mut cfg = small_cfg(SchedulerKind::Greedy, 5);
        cfg.n_ic = 2;
        cfg.arrivals.jobs_per_batch = 12.0;
        let r = run_experiment(&cfg);
        assert!(r.burst_ratio > 0.0, "2 IC machines should force bursting");
        assert!(r.uploaded_bytes > 0);
        assert!(r.downloaded_bytes > 0);
        assert!(r.ec_utilization > 0.0);
    }

    #[test]
    fn rescheduling_extension_runs() {
        let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 6);
        cfg.n_ic = 2;
        cfg.rescheduling = true;
        let (r, world) = run_experiment_detailed(&cfg);
        assert_eq!(r.completion_times.len(), r.n_jobs);
        // Counters exist (may legitimately be zero on an easy run).
        let _ = world.pull_backs() + world.push_outs();
    }

    #[test]
    fn trace_replay_reproduces_the_generated_run() {
        // Replaying the exact batches the generator would produce yields
        // the identical report.
        let cfg = small_cfg(SchedulerKind::OrderPreserving, 33);
        let rngs = RngFactory::new(cfg.seed);
        let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
        let trace = cloudburst_workload::WorkloadTrace::new("test", batches);
        let replayed = cloudburst_workload::WorkloadTrace::from_json(&trace.to_json())
            .expect("round trip");
        let (a, _) = run_with_batches(&cfg, replayed.batches);
        let b = run_experiment(&cfg);
        assert_eq!(a.n_jobs, b.n_jobs);
        assert_eq!(a.burst_ratio, b.burst_ratio);
        // Completion times agree to within JSON f64 printing precision.
        for (x, y) in a.completion_times.iter().zip(&b.completion_times) {
            assert!((x.as_secs_f64() - y.as_secs_f64()).abs() < 1e-3);
        }
    }

    #[test]
    fn timelines_are_complete_and_ordered() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 14);
        cfg.n_ic = 2; // force some bursting so both paths are exercised
        let (r, world) = run_experiment_detailed(&cfg);
        let tls = world.timelines();
        assert_eq!(tls.len(), r.n_jobs);
        let mut saw_external = false;
        for tl in tls {
            tl.check_ordering().unwrap_or_else(|(a, b)| {
                panic!("job {} stage {} precedes {}", tl.id, b, a);
            });
            assert!(tl.completed.is_some(), "job {} never completed", tl.id);
            assert_eq!(tl.completed, Some(r.completion_times[tl.id as usize]));
            match tl.placement {
                Placement::Internal => {
                    assert!(tl.upload_started.is_none(), "local job {} uploaded", tl.id);
                    assert!(tl.download_done.is_none());
                }
                Placement::External => {
                    saw_external = true;
                    assert!(tl.upload_started.is_some(), "bursted job {} has no upload", tl.id);
                    assert!(tl.upload_done.is_some());
                    assert!(tl.download_done.is_some());
                    // Completion is the download arrival for bursted jobs.
                    assert_eq!(tl.completed, tl.download_done);
                }
            }
            assert!(tl.exec_started.is_some() && tl.exec_done.is_some());
            assert!(tl.turnaround_secs().expect("complete") > 0.0);
        }
        assert!(saw_external, "config should force at least one burst");
    }

    #[test]
    fn tickets_are_issued_and_margin_improves_attainment() {
        let run_with_k = |k: f64| {
            let mut cfg = small_cfg(SchedulerKind::Greedy, 12);
            cfg.ticket_margin_k = k;
            run_experiment(&cfg)
        };
        let r0 = run_with_k(0.0);
        assert_eq!(r0.tickets.len(), r0.n_jobs);
        let t0 = r0.ticket_report();
        assert!((0.0..=1.0).contains(&t0.attainment));
        // A generous margin must not reduce attainment, and pushes it high.
        let r3 = run_with_k(3.0);
        let t3 = r3.ticket_report();
        assert!(t3.attainment >= t0.attainment, "{} vs {}", t3.attainment, t0.attainment);
        assert!(t3.mean_quote_secs > t0.mean_quote_secs, "margin lengthens quotes");
        // Placements are identical (the margin only changes the quote).
        assert_eq!(r0.completion_times, r3.completion_times);
    }

    #[test]
    fn per_class_models_improve_class_varied_truth() {
        // Under a class-varied truth law the pooled QRSM averages regimes;
        // per-class models quote tighter tickets.
        let run = |per_class: bool| {
            let mut cfg = small_cfg(SchedulerKind::Greedy, 21);
            cfg.truth = cloudburst_workload::GroundTruth::class_varied();
            cfg.per_class_qrsm = per_class;
            cfg.training_docs = 1200; // enough per-class coverage
            cfg.ticket_margin_k = 0.5;
            run_experiment(&cfg)
        };
        let pooled = run(false);
        let classed = run(true);
        assert_eq!(pooled.n_jobs, classed.n_jobs, "same workload");
        let a_pooled = pooled.ticket_report().attainment;
        let a_classed = classed.ticket_report().attainment;
        assert!(
            a_classed >= a_pooled - 0.05,
            "per-class models shouldn't hurt: {a_classed} vs {a_pooled}"
        );
    }

    #[test]
    fn probing_feeds_the_estimators() {
        let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 9);
        cfg.probe_interval = Some(SimDuration::from_mins(2));
        let (_, world) = run_experiment_detailed(&cfg);
        assert!(world.est.up.observations() > 0, "probes must feed the upload EWMA");
        assert!(world.est.down.observations() > 0);
    }

    #[test]
    fn multi_ec_sites_share_load() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 10);
        cfg.n_ic = 1; // force heavy bursting
        cfg.extra_ec_sites = vec![EcSiteConfig {
            n_machines: 2,
            speed: 1.0,
            upload_model: cfg.upload_model.clone(),
            download_model: cfg.download_model.clone(),
            price: None,
        }];
        let (r, world) = run_experiment_detailed(&cfg);
        assert_eq!(r.completion_times.len(), r.n_jobs);
        if r.burst_ratio > 0.2 {
            let used_sites: std::collections::BTreeSet<usize> = world
                .placements
                .iter()
                .zip(&world.site_of)
                .filter(|(p, _)| **p == Placement::External)
                .map(|(_, s)| *s)
                .collect();
            assert!(used_sites.len() >= 2, "broker should spread across sites");
        }
    }

    #[test]
    fn deep_queue_hybrid_drain_is_oracle_checked() {
        // Push the IC queue far past DRAIN_WINDOW so every in-loop oracle
        // (`est_free_secs`, `assert_push_out_queue_matches_oracle`, the
        // maintained tick totals) exercises the fluid-prefix + exact-tail
        // hybrid rather than the at-or-below-window exact replay.
        let mut cfg = small_cfg(SchedulerKind::OrderPreserving, 77);
        cfg.n_ic = 4;
        cfg.n_ec = 2;
        cfg.rescheduling = true;
        cfg.arrivals.n_batches = 2;
        cfg.arrivals.jobs_per_batch = 700.0;
        let rngs = RngFactory::new(cfg.seed);
        let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
        let total: usize = batches.iter().map(|b| b.jobs.len()).sum();
        assert!(total > 2 * DRAIN_WINDOW, "workload too small to exceed the window");
        let mut h = EngineHarness::new(&cfg, batches);
        // Right after the first batch lands, the IC backlog dwarfs the
        // exact-tail window — the hybrid branch is live from here on.
        h.run_until(SimTime::from_secs(1));
        let queued = h.world().ic_cloud().queued();
        assert!(queued > DRAIN_WINDOW, "queue depth {queued} never exceeded the window");
        h.run();
        let (r, _) = h.finish();
        assert_eq!(r.completion_times.len(), r.n_jobs);
    }

    fn serve_cfg(seed: u64) -> ExperimentConfig {
        use cloudburst_workload::OpenArrivalConfig;
        let mut cfg = small_cfg(SchedulerKind::OrderPreserving, seed);
        cfg.serve = Some(crate::config::ServeConfig {
            arrivals: OpenArrivalConfig {
                epoch: SimDuration::from_secs(120),
                jobs_per_epoch: 4.0,
                bucket: SizeBucket::SmallBiased,
                ..OpenArrivalConfig::default()
            },
            horizon: SimDuration::from_secs(3600),
            window: cloudburst_sla::WindowConfig {
                window: SimDuration::from_secs(300),
                ..cloudburst_sla::WindowConfig::default()
            },
        });
        cfg
    }

    #[test]
    fn serve_run_drains_and_reports_windows() {
        let (r, world) = serve_experiment_detailed(&serve_cfg(41));
        assert!(r.jobs_admitted >= 30 * 4, "30 epochs x >=4 jobs: {}", r.jobs_admitted);
        assert_eq!(r.jobs_completed, r.jobs_admitted, "open stream must drain");
        assert_eq!(world.serve_live_jobs(), 0);
        assert!(r.drained_at_secs >= 3480.0, "last epoch fires before the horizon");
        assert!(r.mean_completion_rate_per_sec > 0.0);
        assert!(r.output_bytes > 0);
        assert!(r.live_high_water >= 1);
        assert!(!r.windows.is_empty());
        // Window rows are contiguous and conserve the job count.
        for pair in r.windows.windows(2) {
            assert_eq!(pair[1].index, pair[0].index + 1);
        }
        let arr: u64 = r.windows.iter().map(|w| w.arrivals).sum();
        let done: u64 = r.windows.iter().map(|w| w.completions).sum();
        assert_eq!(arr, r.jobs_admitted);
        assert_eq!(done, r.jobs_completed);
        // Ticket verdicts were folded for every completion.
        let verdicts: u64 = r.windows.iter().map(|w| w.tickets_met + w.tickets_missed).sum();
        assert_eq!(verdicts, r.jobs_completed);
    }

    #[test]
    fn serve_runs_are_deterministic() {
        let a = serve_experiment(&serve_cfg(42));
        let b = serve_experiment(&serve_cfg(42));
        assert_eq!(
            serde_json::to_string(&a).expect("json"),
            serde_json::to_string(&b).expect("json"),
            "same seed, byte-identical serve report"
        );
        let c = serve_experiment(&serve_cfg(43));
        assert_ne!(a.output_bytes, c.output_bytes, "different seed, different stream");
    }

    #[test]
    fn serve_recycles_job_slots() {
        // A stable (underloaded) stream admits far more jobs than it ever
        // holds live: the slab stops growing at the live high-water mark.
        let (r, world) = serve_experiment_detailed(&serve_cfg(44));
        let slots = world.jobs.len() as u64;
        assert_eq!(slots, r.live_high_water, "slab high-water == live high-water");
        assert!(
            slots < r.jobs_admitted / 2,
            "slots {} should be far below admitted {}",
            slots,
            r.jobs_admitted
        );
        // Chaos scratch tracks the slab, not the stream.
        assert_eq!(world.completions.len() as u64, slots);
        assert_eq!(world.output_bytes.len() as u64, slots);
    }

    #[test]
    fn serve_windows_drain_incrementally() {
        // Stepping window-by-window and draining as we go yields the same
        // totals as the final report, with the buffer held at O(1).
        let cfg = serve_cfg(45);
        let mut h = ServeHarness::new(&cfg);
        let window = SimDuration::from_secs(300);
        let mut drained: Vec<WindowStats> = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += window;
            h.run_until(t);
            let batch = h.world_mut().drain_serve_windows();
            assert!(batch.len() <= 2, "buffer must stay O(1): {}", batch.len());
            drained.extend(batch);
        }
        h.run();
        let admitted = h.world().serve_admitted_jobs();
        let (r, _) = h.finish();
        assert_eq!(r.jobs_admitted, admitted);
        let all: u64 =
            drained.iter().chain(r.windows.iter()).map(|w| w.arrivals).sum();
        assert_eq!(all, r.jobs_admitted, "drained + final rows conserve arrivals");
        for (i, w) in drained.iter().chain(r.windows.iter()).enumerate() {
            assert_eq!(w.index, i as u64, "window rows stay contiguous across drains");
        }
    }

    #[test]
    fn serve_with_chaos_still_drains() {
        let mut cfg = serve_cfg(46);
        cfg.faults = Some(cloudburst_chaos::FaultProfile {
            exec_failure_prob: 0.1,
            ..cloudburst_chaos::FaultProfile::dormant()
        });
        let r = serve_experiment(&cfg);
        assert_eq!(r.jobs_completed, r.jobs_admitted, "retries must converge");
        assert!(r.faults.exec_failures > 0, "10% fault rate over {} jobs", r.jobs_admitted);
        let window_faults: u64 = r.windows.iter().map(|w| w.faults.exec_failures).sum();
        assert_eq!(window_faults, r.faults.exec_failures, "heartbeat deltas conserve faults");
    }

    /// A minimal econ section: the given primary price, everything else
    /// dormant (free penalty, admit-all, legacy broker).
    fn econ_section(primary: Option<PriceModel>) -> cloudburst_econ::EconConfig {
        cloudburst_econ::EconConfig {
            primary_price: primary,
            ..cloudburst_econ::EconConfig::dormant()
        }
    }

    #[test]
    fn dormant_econ_section_is_byte_identical_to_absent() {
        let without = run_experiment(&small_cfg(SchedulerKind::Greedy, 7));
        let mut cfg = small_cfg(SchedulerKind::Greedy, 7);
        cfg.econ = Some(cloudburst_econ::EconConfig::dormant());
        let (with, world) = run_experiment_detailed(&cfg);
        assert!(world.econ_metrics().is_none(), "dormant section must arm nothing");
        assert_eq!(
            serde_json::to_string(&with).expect("json"),
            serde_json::to_string(&without).expect("json"),
            "dormant econ section changed the run bytes"
        );
    }

    #[test]
    fn pricing_alone_bills_without_perturbing_the_run() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 5);
        cfg.n_ic = 2;
        cfg.arrivals.jobs_per_batch = 12.0;
        let base = run_experiment(&cfg);
        cfg.econ = Some(econ_section(Some(PriceModel::OnDemand {
            usd_per_machine_hour: Money::from_usd(2),
            usd_per_gb_transfer: Money::from_cents(9),
        })));
        let (priced, world) = run_experiment_detailed(&cfg);
        // The ledger is an observer: the schedule itself is unchanged.
        assert_eq!(priced.completion_times, base.completion_times);
        assert_eq!(priced.burst_ratio, base.burst_ratio);
        let m = world.econ_metrics().expect("priced run arms the ledger");
        assert!(m.compute > Money::ZERO, "bursts ran on metered machines");
        assert!(m.transfer > Money::ZERO, "bursts moved billable bytes");
        assert_eq!(m.net_cost(), m.compute + m.transfer + m.penalty);
        assert!(m.per_site[0].execs_billed > 0);
        assert_eq!(m.jobs_rejected, 0, "admit-all rejects nothing");
        assert_eq!(priced.econ.as_ref().map(|e| e.compute), Some(m.compute));
    }

    #[test]
    fn hourly_rental_bills_whole_acquired_hours() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 5);
        cfg.n_ic = 2;
        cfg.arrivals.jobs_per_batch = 12.0;
        cfg.econ = Some(econ_section(Some(PriceModel::HourlyRental {
            usd_per_machine_hour: Money::from_usd(3),
            usd_per_gb_transfer: Money::ZERO,
        })));
        let (_, world) = run_experiment_detailed(&cfg);
        let m = world.econ_metrics().expect("armed");
        let hours = m.per_site[0].rental_hours;
        assert!(hours > 0, "bursts must acquire rental hours");
        assert_eq!(m.compute, Money::from_usd(3 * hours as i64), "rent = rate × whole hours");
        assert_eq!(m.transfer, Money::ZERO);
    }

    #[test]
    fn spot_revocations_realize_through_the_fault_plan() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 11);
        cfg.n_ic = 2;
        cfg.arrivals.jobs_per_batch = 12.0;
        cfg.econ = Some(econ_section(Some(PriceModel::Spot {
            base_usd_per_machine_hour: Money::from_usd(1),
            usd_per_gb_transfer: Money::ZERO,
            multipliers: vec![(0.0, 500)],
            period_secs: 0.0,
            revocation: Some(cloudburst_chaos::CrashLaw {
                mean_uptime_secs: 400.0,
                mean_downtime_secs: 60.0,
                max_faults_per_machine: 2,
            }),
        })));
        let (r, world) = run_experiment_detailed(&cfg);
        let m = world.econ_metrics().expect("armed");
        assert!(m.spot_revocations > 0, "the revocation law must sample cycles");
        let plan = world.fault_plan().expect("revocations arm the chaos layer");
        assert_eq!(plan.machine_faults.len() as u64, m.spot_revocations);
        assert!(
            plan.machine_faults.iter().all(|f| f.pool == Pool::Ec(0)),
            "spot cycles hit only the spot-priced site"
        );
        // Revocations are a pure function of the seeded plan: reruns are
        // byte-identical.
        let (r2, _) = run_experiment_detailed(&cfg);
        assert_eq!(
            serde_json::to_string(&r).expect("json"),
            serde_json::to_string(&r2).expect("json"),
        );
    }

    #[test]
    fn commit_or_reject_gates_admission_up_front() {
        let mut cfg = small_cfg(SchedulerKind::Greedy, 13);
        cfg.n_ic = 2;
        cfg.arrivals.jobs_per_batch = 12.0;
        let rngs = RngFactory::new(cfg.seed);
        let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
        let offered: u64 = batches.iter().map(|b| b.jobs.len() as u64).sum();
        cfg.econ = Some(cloudburst_econ::EconConfig {
            admission: AdmissionPolicy::CommitOrReject { max_turnaround_secs: 420.0 },
            ..cloudburst_econ::EconConfig::dormant()
        });
        let (r, world) = run_with_batches(&cfg, batches);
        let m = world.econ_metrics().expect("armed");
        assert_eq!(m.jobs_committed + m.jobs_rejected, offered, "every offered job is decided");
        assert_eq!(m.jobs_committed, r.n_jobs as u64, "admitted ⇔ committed");
        assert!(m.jobs_rejected > 0, "a 7-minute budget on a loaded IC must reject some");
        assert!(m.jobs_committed > 0, "and admit the feasible rest");
        assert_eq!(r.completion_times.len(), r.n_jobs, "admitted jobs all complete");
        // Under commit-or-reject every deadline is a hard commitment, so
        // misses are violations, never ordinary lateness.
        assert_eq!(m.late_completions, 0);
        assert!(m.commitment_violations <= m.jobs_committed);
    }

    #[test]
    fn cost_aware_broker_tie_breaks_to_the_lowest_index() {
        // Two extra sites identical to the primary in machines, speed,
        // bandwidth, and price: every round-trip estimate ties exactly, so
        // the cost-aware broker must reduce to the legacy lowest-index
        // pick — deterministically, run after run.
        let mut cfg = small_cfg(SchedulerKind::Greedy, 10);
        cfg.n_ic = 1; // force heavy bursting
        let price = Some(PriceModel::flat(Money::from_usd(1)));
        let twin = EcSiteConfig {
            n_machines: cfg.n_ec,
            speed: cfg.ec_speed,
            upload_model: cfg.upload_model.clone(),
            download_model: cfg.download_model.clone(),
            price: price.clone(),
        };
        cfg.extra_ec_sites = vec![twin.clone(), twin];
        cfg.econ = Some(cloudburst_econ::EconConfig {
            primary_price: price,
            broker: BrokerPolicy::CostAware,
            ..cloudburst_econ::EconConfig::dormant()
        });
        let rngs = RngFactory::new(cfg.seed);
        let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
        let h = EngineHarness::new(&cfg, batches.clone());
        assert_eq!(h.world().broker_site_choice(SimTime::ZERO), 0, "exact tie → lowest index");
        let (a, _) = run_with_batches(&cfg, batches.clone());
        let (b, _) = run_with_batches(&cfg, batches);
        assert_eq!(
            serde_json::to_string(&a).expect("json"),
            serde_json::to_string(&b).expect("json"),
            "tie-broken broker runs must be byte-identical"
        );
    }

    #[test]
    fn serve_windows_carry_per_window_econ_deltas() {
        let mut cfg = serve_cfg(47);
        cfg.n_ic = 1; // force bursting so compute dollars accrue
        cfg.econ = Some(econ_section(Some(PriceModel::OnDemand {
            usd_per_machine_hour: Money::from_usd(2),
            usd_per_gb_transfer: Money::from_cents(9),
        })));
        let r = serve_experiment(&cfg);
        assert_eq!(r.jobs_completed, r.jobs_admitted, "priced stream still drains");
        let total = r.econ.as_ref().expect("priced serve run carries a ledger");
        assert!(total.compute > Money::ZERO);
        let compute: Money =
            r.windows.iter().filter_map(|w| w.econ.as_ref()).map(|e| e.compute).sum();
        let transfer: Money =
            r.windows.iter().filter_map(|w| w.econ.as_ref()).map(|e| e.transfer).sum();
        assert_eq!(compute, total.compute, "window deltas conserve compute spend");
        assert_eq!(transfer, total.transfer, "window deltas conserve transfer spend");
    }

    // Equivalence property: a full run in test builds cross-checks the
    // indexed free-time drain, the incremental outstanding pool and the
    // push-out queue scan against the retained rescan oracles on *every*
    // decision (`assert_decision_state_matches_oracles`,
    // `assert_push_out_queue_matches_oracle`). Driving randomized
    // configurations through `run_experiment` therefore pins the fast
    // paths to the originals across scheduler kinds, pool shapes, the
    // rescheduling extension and the multi-EC broker.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// An armed (non-dormant) fault plan: crashes, a scripted
        /// blackout, lossy transfers and exec failures — every recovery
        /// path a run can take.
        fn armed_fault_profile() -> cloudburst_chaos::FaultProfile {
            cloudburst_chaos::FaultProfile {
                ic_crash: Some(cloudburst_chaos::CrashLaw {
                    mean_uptime_secs: 500.0,
                    mean_downtime_secs: 90.0,
                    max_faults_per_machine: 2,
                }),
                ec_crash: Some(cloudburst_chaos::CrashLaw {
                    mean_uptime_secs: 400.0,
                    mean_downtime_secs: 120.0,
                    max_faults_per_machine: 2,
                }),
                fixed_blackouts: vec![cloudburst_chaos::Window {
                    from_secs: 120.0,
                    until_secs: 170.0,
                }],
                transfer_loss_prob: 0.05,
                exec_failure_prob: 0.05,
                ..cloudburst_chaos::FaultProfile::dormant()
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            #[test]
            fn fast_paths_match_rescan_oracles_on_every_decision(
                seed in 0u64..10_000,
                kind_idx in 0usize..3,
                n_ic in 1usize..6,
                n_ec in 1usize..4,
                jobs_per_batch in 4.0f64..14.0,
                bucket_idx in 0usize..3,
                rescheduling in any::<bool>(),
                extra_site in any::<bool>(),
                faulty in any::<bool>(),
            ) {
                let kind = [
                    SchedulerKind::Greedy,
                    SchedulerKind::OrderPreserving,
                    SchedulerKind::Sibs,
                ][kind_idx];
                let mut cfg = small_cfg(kind, seed);
                cfg.n_ic = n_ic;
                cfg.n_ec = n_ec;
                cfg.arrivals.jobs_per_batch = jobs_per_batch;
                cfg.arrivals.bucket = SizeBucket::ALL[bucket_idx];
                cfg.rescheduling = rescheduling;
                if extra_site {
                    cfg.extra_ec_sites = vec![EcSiteConfig {
                        n_machines: 2,
                        speed: 1.5,
                        upload_model: cfg.upload_model.clone(),
                        download_model: cfg.download_model.clone(),
                        price: None,
                    }];
                }
                if faulty {
                    // An armed (non-dormant) plan, so the oracles also pin
                    // the fast paths through recovery paths and
                    // DEAD_FREE_SECS poisoning.
                    cfg.faults = Some(armed_fault_profile());
                }
                // The run itself is the assertion: every decision re-checks
                // the indexed state against the O(queue × machines) rescan.
                let (a, _) = run_experiment_detailed(&cfg);
                prop_assert_eq!(a.completion_times.len(), a.n_jobs);
                // And the fast paths stay deterministic: an identical run
                // reproduces the report exactly.
                let (b, _) = run_experiment_detailed(&cfg);
                prop_assert_eq!(a.completion_times, b.completion_times);
                prop_assert_eq!(a.makespan_secs, b.makespan_secs);
                prop_assert_eq!(a.burst_ratio, b.burst_ratio);
            }

            /// The tentpole's composition guarantee: the sharded engine's
            /// report is a pure function of (config, seed) — the
            /// shard-worker count never reaches a byte of output. Checked
            /// over every scheduler, with and without an armed chaos
            /// plan, by comparing the full serialized `RunReport` of the
            /// pinned serial path against 2/4/8-worker runs.
            #[test]
            fn shard_composition_is_byte_identical_across_worker_counts(
                seed in 0u64..10_000,
                kind_idx in 0usize..3,
                jobs_per_batch in 4.0f64..14.0,
                rescheduling in any::<bool>(),
                faulty in any::<bool>(),
            ) {
                let kind = [
                    SchedulerKind::Greedy,
                    SchedulerKind::OrderPreserving,
                    SchedulerKind::Sibs,
                ][kind_idx];
                let mut cfg = small_cfg(kind, seed);
                cfg.n_ic = 2; // load the IC so bursts (and EC paths) happen
                cfg.arrivals.jobs_per_batch = jobs_per_batch;
                cfg.rescheduling = rescheduling;
                if faulty {
                    cfg.faults = Some(armed_fault_profile());
                }
                cfg.shard_workers = Some(1);
                let (serial, _) = run_experiment_detailed(&cfg);
                let reference = serde_json::to_string(&serial).expect("report serializes");
                for workers in [2usize, 4, 8] {
                    cfg.shard_workers = Some(workers);
                    let (sharded, _) = run_experiment_detailed(&cfg);
                    let got = serde_json::to_string(&sharded).expect("report serializes");
                    prop_assert_eq!(
                        &got,
                        &reference,
                        "worker count {} leaked into the report bytes",
                        workers
                    );
                }
            }

            /// The econ tentpole's degenerate-case guarantee: with equal
            /// flat prices on every site, free penalties and admit-all,
            /// the cost-aware broker's scores tie everywhere and the
            /// legacy (backlog, index) key decides — so placements, and
            /// therefore the whole schedule, match the legacy broker
            /// exactly, across schedulers and under an armed chaos plan.
            /// (Test builds also assert the pick per decision inside
            /// `broker_site`.)
            #[test]
            fn cost_aware_broker_with_equal_prices_matches_legacy(
                seed in 0u64..10_000,
                kind_idx in 0usize..3,
                jobs_per_batch in 4.0f64..14.0,
                extra_site in any::<bool>(),
                faulty in any::<bool>(),
            ) {
                let kind = [
                    SchedulerKind::Greedy,
                    SchedulerKind::OrderPreserving,
                    SchedulerKind::Sibs,
                ][kind_idx];
                let mut cfg = small_cfg(kind, seed);
                cfg.n_ic = 2; // load the IC so bursts exercise the broker
                cfg.arrivals.jobs_per_batch = jobs_per_batch;
                let price = Some(PriceModel::flat(Money::from_usd(1)));
                if extra_site {
                    cfg.extra_ec_sites = vec![EcSiteConfig {
                        n_machines: 2,
                        speed: 1.5,
                        upload_model: cfg.upload_model.clone(),
                        download_model: cfg.download_model.clone(),
                        price: price.clone(),
                    }];
                }
                if faulty {
                    cfg.faults = Some(armed_fault_profile());
                }
                cfg.econ = Some(cloudburst_econ::EconConfig {
                    primary_price: price,
                    broker: BrokerPolicy::EarliestRoundTrip,
                    ..cloudburst_econ::EconConfig::dormant()
                });
                let (legacy, _) = run_experiment_detailed(&cfg);
                if let Some(e) = cfg.econ.as_mut() {
                    e.broker = BrokerPolicy::CostAware;
                }
                let (aware, _) = run_experiment_detailed(&cfg);
                prop_assert_eq!(aware.completion_times, legacy.completion_times);
                prop_assert_eq!(aware.makespan_secs, legacy.makespan_secs);
                prop_assert_eq!(aware.burst_ratio, legacy.burst_ratio);
            }
        }
    }
}

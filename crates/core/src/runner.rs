//! Multi-run drivers: replications across seeds (parallelized with
//! crossbeam scoped threads) and the bucket × scheduler sweeps the paper's
//! evaluation section is built from.

use cloudburst_sla::RunReport;
use cloudburst_workload::SizeBucket;

use crate::config::{ExperimentConfig, SchedulerKind};
use crate::engine::run_experiment;

/// Runs the same configuration across `seeds`, one OS thread per run
/// (bounded by available parallelism), returning reports in seed order.
pub fn run_replications(base: &ExperimentConfig, seeds: &[u64]) -> Vec<RunReport> {
    let max_par = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut out: Vec<Option<RunReport>> = vec![None; seeds.len()];
    for chunk in seeds
        .iter()
        .enumerate()
        .collect::<Vec<_>>()
        .chunks(max_par.max(1))
    {
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for &(i, &seed) in chunk {
                let mut cfg = base.clone();
                cfg.seed = seed;
                handles.push((i, scope.spawn(move |_| run_experiment(&cfg))));
            }
            for (i, h) in handles {
                out[i] = Some(h.join().expect("replication thread panicked"));
            }
        })
        .expect("crossbeam scope");
    }
    out.into_iter().map(|r| r.expect("all runs complete")).collect()
}

/// Runs one scheduler over all three buckets (Fig. 6's x-axis).
pub fn run_all_buckets(base: &ExperimentConfig) -> Vec<RunReport> {
    SizeBucket::ALL
        .iter()
        .map(|&bucket| {
            let mut cfg = base.clone();
            cfg.arrivals.bucket = bucket;
            run_experiment(&cfg)
        })
        .collect()
}

/// Mean of a metric over reports.
pub fn mean_of(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Runs the full scheduler line-up on one bucket and seed — the Table I
/// harness.
pub fn run_lineup(
    kinds: &[SchedulerKind],
    bucket: SizeBucket,
    seed: u64,
    tweak: impl Fn(&mut ExperimentConfig),
) -> Vec<RunReport> {
    kinds
        .iter()
        .map(|&k| {
            let mut cfg = ExperimentConfig::paper(k, bucket, seed);
            tweak(&mut cfg);
            run_experiment(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_workload::ArrivalConfig;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            arrivals: ArrivalConfig {
                n_batches: 2,
                jobs_per_batch: 4.0,
                bucket: SizeBucket::SmallBiased,
                ..ArrivalConfig::default()
            },
            training_docs: 120,
            scheduler: SchedulerKind::Greedy,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn replications_preserve_seed_order_and_determinism() {
        let reports = run_replications(&tiny(), &[11, 12, 11]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].seed, 11);
        assert_eq!(reports[1].seed, 12);
        assert_eq!(reports[0].makespan_secs, reports[2].makespan_secs, "same seed, same run");
        assert_ne!(reports[0].makespan_secs, reports[1].makespan_secs);
    }

    #[test]
    fn all_buckets_sweep() {
        let reports = run_all_buckets(&tiny());
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].bucket, "small");
        assert_eq!(reports[1].bucket, "uniform");
        assert_eq!(reports[2].bucket, "large");
    }

    #[test]
    fn mean_helper() {
        let reports = run_replications(&tiny(), &[1, 2]);
        let m = mean_of(&reports, |r| r.makespan_secs);
        assert!(m > 0.0);
        assert_eq!(mean_of(&[], |r| r.makespan_secs), 0.0);
    }
}

//! Multi-run drivers: replications across seeds and the bucket × scheduler
//! sweeps the paper's evaluation section is built from.
//!
//! Everything fans out through [`parallel_map_ordered`]: a fixed pool of
//! crossbeam scoped workers pulls indices off a shared atomic counter (a
//! work queue, so an early-finishing thread immediately picks up the next
//! run instead of idling at a chunk barrier) and writes each result into
//! its input slot — callers always see results in input order, identical
//! to a serial run.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use cloudburst_sla::RunReport;
use cloudburst_workload::SizeBucket;

use crate::config::{ExperimentConfig, SchedulerKind};
use crate::engine::run_experiment;

/// Maps `f` over `items` on a worker pool bounded by the machine's
/// available parallelism, returning the results in input order. `f` must
/// be deterministic per item for the output to match a serial run (every
/// driver in this crate is). Runs inline when a pool would not help.
pub fn parallel_map_ordered<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism().map_or(4, |c| c.get()).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                out.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker pool panicked");
    out.into_inner().into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// Runs the same configuration across `seeds` on the worker pool,
/// returning reports in seed order.
pub fn run_replications(base: &ExperimentConfig, seeds: &[u64]) -> Vec<RunReport> {
    parallel_map_ordered(seeds, |_, &seed| {
        let mut cfg = base.clone();
        cfg.seed = seed;
        run_experiment(&cfg)
    })
}

/// Runs one scheduler over all three buckets (Fig. 6's x-axis).
pub fn run_all_buckets(base: &ExperimentConfig) -> Vec<RunReport> {
    parallel_map_ordered(&SizeBucket::ALL, |_, &bucket| {
        let mut cfg = base.clone();
        cfg.arrivals.bucket = bucket;
        run_experiment(&cfg)
    })
}

/// Mean of a metric over reports.
pub fn mean_of(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Runs the full scheduler line-up on one bucket and seed — the Table I
/// harness.
pub fn run_lineup(
    kinds: &[SchedulerKind],
    bucket: SizeBucket,
    seed: u64,
    tweak: impl Fn(&mut ExperimentConfig) + Sync,
) -> Vec<RunReport> {
    parallel_map_ordered(kinds, |_, &k| {
        let mut cfg = ExperimentConfig::paper(k, bucket, seed);
        tweak(&mut cfg);
        run_experiment(&cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_workload::ArrivalConfig;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            arrivals: ArrivalConfig {
                n_batches: 2,
                jobs_per_batch: 4.0,
                bucket: SizeBucket::SmallBiased,
                ..ArrivalConfig::default()
            },
            training_docs: 120,
            scheduler: SchedulerKind::Greedy,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_ordered(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
        let empty: [u64; 0] = [];
        assert!(parallel_map_ordered(&empty, |_, &x| x).is_empty());
    }

    #[test]
    fn replications_preserve_seed_order_and_determinism() {
        let reports = run_replications(&tiny(), &[11, 12, 11]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].seed, 11);
        assert_eq!(reports[1].seed, 12);
        assert_eq!(reports[0].makespan_secs, reports[2].makespan_secs, "same seed, same run");
        assert_ne!(reports[0].makespan_secs, reports[1].makespan_secs);
    }

    #[test]
    fn all_buckets_sweep() {
        let reports = run_all_buckets(&tiny());
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].bucket, "small");
        assert_eq!(reports[1].bucket, "uniform");
        assert_eq!(reports[2].bucket, "large");
    }

    #[test]
    fn mean_helper() {
        let reports = run_replications(&tiny(), &[1, 2]);
        let m = mean_of(&reports, |r| r.makespan_secs);
        assert!(m > 0.0);
        assert_eq!(mean_of(&[], |r| r.makespan_secs), 0.0);
    }
}

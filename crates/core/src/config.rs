//! Experiment configuration.
//!
//! Defaults reproduce the paper's test-bed (Sec. V-A): 8 internal machines,
//! 2 external instances, ≈ 250 KB/s average pipe, batches of Poisson(15)
//! jobs every 3 minutes, 2-minute OO sampling.

use serde::{Deserialize, Serialize};

use cloudburst_econ::{EconConfig, PriceModel};
use cloudburst_net::profile::DEFAULT_MEAN_BPS;
use cloudburst_net::BandwidthModel;
use cloudburst_sim::SimDuration;
use cloudburst_sla::{OoConfig, WindowConfig};
use cloudburst_workload::{ArrivalConfig, ChunkPolicy, GroundTruth, OpenArrivalConfig, SizeBucket};

/// Which scheduler drives the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Baseline: never burst.
    IcOnly,
    /// Algorithm 1.
    Greedy,
    /// Algorithm 2.
    OrderPreserving,
    /// Algorithm 2 without the chunking phase (ablation).
    OrderPreservingNoChunk,
    /// Algorithm 2 + Algorithm 3 upload routing.
    Sibs,
}

impl SchedulerKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::IcOnly => "ic-only",
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::OrderPreserving => "op",
            SchedulerKind::OrderPreservingNoChunk => "op-nochunk",
            SchedulerKind::Sibs => "op+sibs",
        }
    }

    /// The scheduler line-up compared in Fig. 6.
    pub const FIG6: [SchedulerKind; 3] =
        [SchedulerKind::IcOnly, SchedulerKind::Greedy, SchedulerKind::OrderPreserving];
}

/// QRSM fitting method selector (mirrors `cloudburst_qrsm::Method`, kept
/// separate so configs serialize without foreign types).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FitKind {
    /// Ordinary least squares.
    Ols,
    /// Ridge with the given penalty.
    Ridge(f64),
    /// Least absolute deviations (LP-equivalent robust fit).
    Lad,
}

impl FitKind {
    /// Converts to the qrsm crate's method type.
    pub fn to_method(self) -> cloudburst_qrsm::Method {
        match self {
            FitKind::Ols => cloudburst_qrsm::Method::Ols,
            FitKind::Ridge(l) => cloudburst_qrsm::Method::Ridge(l),
            FitKind::Lad => cloudburst_qrsm::Method::Lad,
        }
    }
}

/// Elastic-EC scaling policy (extension; see `crate::scaling`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// Smallest EC pool size.
    pub min_instances: usize,
    /// Largest EC pool size.
    pub max_instances: usize,
    /// Evaluation period.
    pub period: SimDuration,
}

/// Open-system serving section (`crate::engine::serve_experiment` and the
/// `cloudburst serve` subcommand): the arrival stream's shape, the virtual
/// horizon it runs to, and the windowed-report granularity. Every field
/// has a default, so configs written before serving existed still decode
/// (the engine treats a missing section as "closed-batch mode").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Open arrival process: epoch length, baseline rate, size bucket,
    /// diurnal envelope and optional flash-crowd bursts.
    pub arrivals: OpenArrivalConfig,
    /// Virtual horizon: the last epoch released starts strictly before
    /// this instant; the pipeline then drains to empty.
    pub horizon: SimDuration,
    /// Windowed-aggregate granularity of the [`cloudburst_sla::ServeReport`].
    pub window: WindowConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrivals: OpenArrivalConfig::default(),
            // One virtual day: long enough to cover a full diurnal cycle.
            horizon: SimDuration::from_secs(86_400),
            window: WindowConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The EXPERIMENTS.md serving scenario: a full virtual day of diurnal
    /// demand (±80 % swing) with flash crowds.
    pub fn diurnal_day() -> ServeConfig {
        ServeConfig { arrivals: OpenArrivalConfig::diurnal_service(), ..ServeConfig::default() }
    }
}

/// Configuration of one additional external-cloud site (the multi-EC
/// extension; the primary EC comes from `n_ec`/`ec_speed` and the main
/// bandwidth models).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EcSiteConfig {
    /// Machines at this site.
    pub n_machines: usize,
    /// Machine speed relative to a standard machine.
    pub speed: f64,
    /// Upload pipe to this site.
    pub upload_model: BandwidthModel,
    /// Download pipe from this site.
    pub download_model: BandwidthModel,
    /// Price model of this site (econ extension). `None` — also what
    /// configs serialized before the econ layer existed decode to — means
    /// the site is free, and cost accounting for it stays dormant.
    pub price: Option<PriceModel>,
}

/// Full description of one experiment run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Arrival process (batches, λ, bucket).
    pub arrivals: ArrivalConfig,
    /// Internal-cloud machine count (paper: 8).
    pub n_ic: usize,
    /// External-cloud machine count (paper: max 2).
    pub n_ec: usize,
    /// IC machine speed relative to a standard machine.
    pub ic_speed: f64,
    /// EC machine speed relative to a standard machine.
    pub ec_speed: f64,
    /// Ground-truth upload pipe.
    pub upload_model: BandwidthModel,
    /// Ground-truth download pipe.
    pub download_model: BandwidthModel,
    /// Thread-saturation constant κ.
    pub kappa: f64,
    /// Link rate-revaluation slot.
    pub link_slot: SimDuration,
    /// Last-hop/connection-setup latency per transfer (both directions).
    pub last_hop_latency: SimDuration,
    /// Ground-truth processing-time law.
    pub truth: GroundTruth,
    /// Size of the initial QRSM training corpus.
    pub training_docs: usize,
    /// QRSM fitting method.
    pub fit: FitKind,
    /// Fit one QRSM per job class (with a pooled fallback) instead of a
    /// single pooled model — the multi-job-class extension (Sec. VII).
    pub per_class_qrsm: bool,
    /// Chunking policy for the Op/SIBS schedulers.
    pub chunk_policy: ChunkPolicy,
    /// Slack safety margin τ, seconds.
    pub tau_secs: f64,
    /// Ticket quoting margin: the completion promise issued at admission is
    /// the scheduler's estimate plus `k` training-RMSEs of the QRSM
    /// (`k ≈ 1` ⇒ roughly 84 % single-job coverage under normal residuals).
    pub ticket_margin_k: f64,
    /// OO-metric sampling.
    pub oo: OoConfig,
    /// EWMA weight α of the bandwidth predictor (paper's `S_n` update).
    pub ewma_alpha: f64,
    /// Time-of-day slots per day in the bandwidth predictor (1 = a single
    /// global EWMA, i.e. no time-of-day model — the `ablate-ewma` case).
    pub ewma_slots: usize,
    /// Bandwidth-probe interval (None disables autonomic probing).
    pub probe_interval: Option<SimDuration>,
    /// Enable the Sec. IV-D pull-back/push-out rescheduling extension.
    pub rescheduling: bool,
    /// Elastic-EC scaling extension.
    pub scaling: Option<ScalingPolicy>,
    /// Additional external-cloud sites (multi-EC extension); the engine's
    /// broker picks the site with the earliest estimated round trip per
    /// bursted job.
    pub extra_ec_sites: Vec<EcSiteConfig>,
    /// Fault-injection profile (chaos extension). `None` — and a profile
    /// that [`cloudburst_chaos::FaultProfile::is_dormant`] — leave the run
    /// byte-identical to a fault-free one.
    pub faults: Option<cloudburst_chaos::FaultProfile>,
    /// Worker threads for intra-run shard fan-outs (admission estimate
    /// precompute, report sections). `None` or `Some(0)` means auto (the
    /// machine's available parallelism); `Some(1)` pins the inline serial
    /// path. `Option` so configs serialized before the knob existed still
    /// deserialize (missing fields decode as null). Results are
    /// byte-identical for every value — the epoch-barrier merge makes the
    /// run a pure function of (config minus this knob, seed) — so the
    /// knob only trades wall-clock time, never reproducibility.
    pub shard_workers: Option<usize>,
    /// Open-system serving section. `None` (also what configs serialized
    /// before the mode existed decode to) runs the classic closed-batch
    /// experiment; `Some` arms `serve_experiment` / `cloudburst serve`.
    pub serve: Option<ServeConfig>,
    /// Economics section (pricing, penalties, commitments, cost-aware
    /// brokering). `None` — what legacy configs decode to — and a section
    /// that [`cloudburst_econ::EconConfig::is_dormant`] (with no per-site
    /// prices) leave the run byte-identical to an econ-free one.
    pub econ: Option<EconConfig>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            scheduler: SchedulerKind::OrderPreserving,
            arrivals: ArrivalConfig::default(),
            n_ic: 8,
            n_ec: 2,
            ic_speed: 1.0,
            ec_speed: 1.0,
            upload_model: BandwidthModel::Constant(DEFAULT_MEAN_BPS),
            download_model: BandwidthModel::Constant(DEFAULT_MEAN_BPS),
            kappa: cloudburst_net::link::DEFAULT_KAPPA,
            link_slot: SimDuration::from_secs(30),
            last_hop_latency: SimDuration::from_secs(2),
            truth: GroundTruth::default(),
            training_docs: 400,
            fit: FitKind::Ols,
            per_class_qrsm: false,
            chunk_policy: ChunkPolicy::default(),
            tau_secs: 0.0,
            ticket_margin_k: 1.0,
            oo: OoConfig::default(),
            ewma_alpha: 0.3,
            ewma_slots: 24,
            probe_interval: Some(SimDuration::from_mins(10)),
            rescheduling: false,
            scaling: None,
            extra_ec_sites: Vec::new(),
            faults: None,
            shard_workers: None,
            serve: None,
            econ: None,
        }
    }
}

impl ExperimentConfig {
    /// The paper's set-up for a given scheduler, bucket and seed.
    pub fn paper(scheduler: SchedulerKind, bucket: SizeBucket, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            scheduler,
            arrivals: ArrivalConfig { bucket, ..ArrivalConfig::default() },
            ..ExperimentConfig::default()
        }
    }

    /// A megascale stress configuration: ≈ `total_jobs` jobs (batches of
    /// ≈ 10 000) against a 256 + 64 machine estate — an estate sized for a
    /// million-job backlog, not the paper's 8-host cluster. Used by the
    /// `perfscale` probes to measure decision-loop and end-to-end
    /// throughput far beyond the paper's ≈ 105-job runs. Autonomic probing
    /// is off so the run measures the scheduler/engine path, not the probe
    /// cadence.
    pub fn megascale(scheduler: SchedulerKind, total_jobs: u64, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            scheduler,
            arrivals: ArrivalConfig::megascale(total_jobs),
            n_ic: 256,
            n_ec: 64,
            probe_interval: None,
            ..ExperimentConfig::default()
        }
    }

    /// Same, under the Fig. 9 "high network variation" pipe.
    pub fn paper_high_variation(
        scheduler: SchedulerKind,
        bucket: SizeBucket,
        seed: u64,
    ) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper(scheduler, bucket, seed);
        cfg.upload_model = BandwidthModel::high_variation(seed ^ 0x5eed_0001);
        cfg.download_model = BandwidthModel::high_variation(seed ^ 0x5eed_0002);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = ExperimentConfig::default();
        assert_eq!(c.n_ic, 8);
        assert_eq!(c.n_ec, 2);
        assert_eq!(c.arrivals.jobs_per_batch, 15.0);
        assert_eq!(c.arrivals.batch_interval, SimDuration::from_mins(3));
        assert_eq!(c.oo.sample_interval, SimDuration::from_mins(2));
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Sibs.label(), "op+sibs");
        assert_eq!(SchedulerKind::FIG6.len(), 3);
    }

    #[test]
    fn round_trips_through_json() {
        let c = ExperimentConfig::paper(SchedulerKind::Greedy, SizeBucket::LargeBiased, 7);
        let js = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back.scheduler, SchedulerKind::Greedy);
        assert_eq!(back.seed, 7);
    }

    #[test]
    fn shard_workers_defaults_for_legacy_configs() {
        // Configs serialized before the sharding knob existed must still
        // deserialize (auto worker count).
        let c = ExperimentConfig::default();
        let mut js = serde_json::to_string(&c).unwrap();
        js = js.replace(",\"shard_workers\":null", "");
        assert!(!js.contains("shard_workers"), "field should be stripped for the test");
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back.shard_workers, None);
    }

    #[test]
    fn serve_section_defaults_for_legacy_configs() {
        // Configs serialized before serving existed must still decode —
        // and decode to closed-batch mode.
        let c = ExperimentConfig::default();
        let mut js = serde_json::to_string(&c).unwrap();
        js = js.replace(",\"serve\":null", "");
        assert!(!js.contains("\"serve\""), "field should be stripped for the test");
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert!(back.serve.is_none());
        // And an armed section round-trips field-for-field.
        let armed =
            ExperimentConfig { serve: Some(ServeConfig::diurnal_day()), ..Default::default() };
        let js = serde_json::to_string(&armed).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        let s = back.serve.expect("section survives the round trip");
        assert_eq!(s.horizon, SimDuration::from_secs(86_400));
        assert!(s.arrivals.burst.is_some());
    }

    #[test]
    fn econ_section_defaults_for_legacy_configs() {
        // Configs serialized before the econ layer existed must still
        // decode — to no economics at all.
        let c = ExperimentConfig::default();
        let mut js = serde_json::to_string(&c).unwrap();
        js = js.replace(",\"econ\":null", "");
        assert!(!js.contains("\"econ\""), "field should be stripped for the test");
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert!(back.econ.is_none());
        // And an armed section round-trips field-for-field.
        let armed = ExperimentConfig {
            econ: Some(EconConfig {
                primary_price: Some(PriceModel::flat(cloudburst_econ::Money::from_cents(20))),
                ..EconConfig::dormant()
            }),
            ..Default::default()
        };
        let js = serde_json::to_string(&armed).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back.econ, armed.econ);
    }

    #[test]
    fn ec_site_price_defaults_for_legacy_configs() {
        // EcSiteConfig round trip with the new per-site `price` field:
        // a site serialized before the field existed decodes to a free
        // site, same pattern as `shard_workers`/`serve`.
        let site = EcSiteConfig {
            n_machines: 4,
            speed: 1.5,
            upload_model: BandwidthModel::Constant(1e5),
            download_model: BandwidthModel::Constant(2e5),
            price: None,
        };
        let mut js = serde_json::to_string(&site).unwrap();
        assert!(js.contains("\"price\":null"));
        js = js.replace(",\"price\":null", "");
        assert!(!js.contains("\"price\""), "field should be stripped for the test");
        let back: EcSiteConfig = serde_json::from_str(&js).unwrap();
        assert!(back.price.is_none(), "legacy sites decode as free");
        assert_eq!(back.n_machines, 4);
        assert_eq!(back.speed, 1.5);
        // A priced site round-trips exactly, spot trace and all.
        let priced = EcSiteConfig {
            price: Some(PriceModel::Spot {
                base_usd_per_machine_hour: cloudburst_econ::Money::from_cents(35),
                usd_per_gb_transfer: cloudburst_econ::Money::from_cents(2),
                multipliers: vec![(0.0, 700), (43_200.0, 1400)],
                period_secs: 86_400.0,
                revocation: Some(cloudburst_chaos::CrashLaw {
                    mean_uptime_secs: 7200.0,
                    mean_downtime_secs: 300.0,
                    max_faults_per_machine: 3,
                }),
            }),
            ..site
        };
        let js = serde_json::to_string(&priced).unwrap();
        let back: EcSiteConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back.price, priced.price);
    }

    #[test]
    fn fit_kind_converts() {
        assert_eq!(FitKind::Ols.to_method(), cloudburst_qrsm::Method::Ols);
        assert_eq!(FitKind::Ridge(0.5).to_method(), cloudburst_qrsm::Method::Ridge(0.5));
        assert_eq!(FitKind::Lad.to_method(), cloudburst_qrsm::Method::Lad);
    }

    #[test]
    fn megascale_targets_the_requested_job_count() {
        let c = ExperimentConfig::megascale(SchedulerKind::Greedy, 100_000, 1);
        let expected: f64 = (0..c.arrivals.n_batches).map(|b| c.arrivals.rate_for_batch(b)).sum();
        assert!((expected - 100_000.0).abs() < 1e-6);
        assert_eq!(c.n_ic, 256);
        assert_eq!(c.n_ec, 64);
        assert!(c.probe_interval.is_none());
        // One-job edge case still produces a single batch.
        let tiny = ExperimentConfig::megascale(SchedulerKind::Greedy, 1, 1);
        assert_eq!(tiny.arrivals.n_batches, 1);
    }

    #[test]
    fn high_variation_uses_jittered_models() {
        let c = ExperimentConfig::paper_high_variation(
            SchedulerKind::OrderPreserving,
            SizeBucket::LargeBiased,
            3,
        );
        assert!(matches!(c.upload_model, BandwidthModel::Jittered { .. }));
        assert!(matches!(c.download_model, BandwidthModel::Jittered { .. }));
    }
}

//! Multiple external clouds (extension).
//!
//! The paper's introduction anticipates choosing "from a pool of Cloud
//! Providers at run-time depending on the input job's service level
//! agreements" (Sec. I) and lists multi-EC bursting as future work
//! (Sec. VII). The engine already supports extra EC sites with independent
//! pipes; this module provides preset builders and the comparison used by
//! the `ablate-multiec` experiment: the broker (least-backlog site choice)
//! versus a single consolidated EC of equal total capacity.

use cloudburst_net::BandwidthModel;
use cloudburst_sla::RunReport;

use crate::config::{EcSiteConfig, ExperimentConfig};
use crate::engine::run_experiment;

/// Adds a second EC site with its own (typically slower) pipe.
pub fn with_second_site(
    mut cfg: ExperimentConfig,
    n_machines: usize,
    speed: f64,
    pipe_bps: f64,
) -> ExperimentConfig {
    cfg.extra_ec_sites.push(EcSiteConfig {
        n_machines,
        speed,
        upload_model: BandwidthModel::Constant(pipe_bps),
        download_model: BandwidthModel::Constant(pipe_bps),
        price: None,
    });
    cfg
}

/// Outcome of the multi-EC comparison.
#[derive(Clone, Debug)]
pub struct MultiEcComparison {
    /// Two sites, each with its own pipe.
    pub split: RunReport,
    /// One site with the machines consolidated behind a single pipe.
    pub consolidated: RunReport,
}

/// Runs the comparison: `base` with `(extra_machines, extra_pipe_bps)` as a
/// second site, versus the same total machine count behind the primary
/// pipe only.
pub fn compare_split_vs_consolidated(
    base: &ExperimentConfig,
    extra_machines: usize,
    extra_pipe_bps: f64,
) -> MultiEcComparison {
    let split_cfg = with_second_site(base.clone(), extra_machines, base.ec_speed, extra_pipe_bps);
    let mut consolidated_cfg = base.clone();
    consolidated_cfg.n_ec += extra_machines;
    MultiEcComparison {
        split: run_experiment(&split_cfg),
        consolidated: run_experiment(&consolidated_cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use cloudburst_workload::{ArrivalConfig, SizeBucket};

    fn base() -> ExperimentConfig {
        ExperimentConfig {
            scheduler: SchedulerKind::Greedy,
            n_ic: 2,
            arrivals: ArrivalConfig {
                n_batches: 2,
                jobs_per_batch: 6.0,
                bucket: SizeBucket::Uniform,
                ..ArrivalConfig::default()
            },
            training_docs: 120,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn builder_appends_site() {
        let cfg = with_second_site(base(), 2, 1.0, 100_000.0);
        assert_eq!(cfg.extra_ec_sites.len(), 1);
        assert_eq!(cfg.extra_ec_sites[0].n_machines, 2);
    }

    #[test]
    fn comparison_runs_both_variants() {
        let c = compare_split_vs_consolidated(&base(), 2, 250_000.0);
        assert!(c.split.makespan_secs > 0.0);
        assert!(c.consolidated.makespan_secs > 0.0);
        assert_eq!(c.split.n_jobs, c.consolidated.n_jobs, "same workload either way");
        // An extra independent pipe can only help relative to sharing one:
        // allow some tolerance for scheduling noise.
        assert!(c.split.makespan_secs <= c.consolidated.makespan_secs * 1.25);
    }
}

//! A live (real-thread) rendition of the Fig. 5 pipeline.
//!
//! The DES engine answers the paper's quantitative questions; this module
//! demonstrates the *architecture* — "pipelined and event-based … every
//! stage of the pipeline is executed in parallel" (Sec. III-B) — with real
//! concurrency: crossbeam channels as the asynchronous queues, a thread per
//! pipeline stage, a worker per machine. Service and transfer times are the
//! same ground-truth quantities, scaled down by `time_scale` so a demo run
//! finishes in milliseconds.
//!
//! Used by the `live_pipeline` example and by integration tests that check
//! the live pipeline and the DES agree on completion *order* for
//! deterministic workloads.
//!
//! Pacing is injected through the [`Clock`] trait: the caller supplies the
//! monotonic time source, so this crate never reads the wall clock itself
//! (conform rule `determinism/wall-clock`). The real-time implementation
//! lives in `cloudburst-bench` (`WallClock`), next to the other bin-side
//! timing code; [`ManualClock`] gives tests a deterministic virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::channel;
use parking_lot::Mutex;

use cloudburst_sched::Placement;
use cloudburst_workload::{Job, JobId};

/// A monotonic time source with a blocking sleep, shared by every pipeline
/// thread. `now` reports the offset since the clock's epoch; `sleep` blocks
/// the calling worker for a real or virtual duration, implementation's
/// choice.
pub trait Clock: Sync {
    /// Monotonic offset since the clock's epoch.
    fn now(&self) -> Duration;
    /// Blocks the calling thread for `d` (real or virtual time).
    fn sleep(&self, d: Duration);
}

/// A deterministic virtual clock: `sleep` advances a shared atomic counter
/// instead of blocking, so a run's timestamps are a pure function of the
/// sleeps performed. With a single worker thread the completion offsets are
/// exact prefix sums of the service times; with several workers the counter
/// still advances by exactly the total slept time.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock at virtual time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(add, Ordering::SeqCst);
    }
}

/// Configuration for a live pipeline run.
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// Real seconds per virtual second (e.g. `1e-4` → a 600 s job takes
    /// 60 ms of wall clock).
    pub time_scale: f64,
    /// IC worker threads.
    pub n_ic: usize,
    /// EC worker threads.
    pub n_ec: usize,
    /// Pipe rate in bytes per virtual second (both directions).
    pub bandwidth_bps: f64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig { time_scale: 1e-4, n_ic: 8, n_ec: 2, bandwidth_bps: 250_000.0 }
    }
}

/// One completed job as observed at the live result queue.
#[derive(Clone, Copy, Debug)]
pub struct LiveCompletion {
    /// Which job.
    pub id: JobId,
    /// Wall-clock completion offset from run start.
    pub at: Duration,
    /// Where it ran.
    pub placement: Placement,
}

/// Outcome of a live run.
#[derive(Clone, Debug)]
pub struct LiveOutcome {
    /// Completions in result-queue arrival order.
    pub completions: Vec<LiveCompletion>,
    /// Total wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LiveOutcome {
    /// Completion order as job ids.
    pub fn order(&self) -> Vec<JobId> {
        self.completions.iter().map(|c| c.id).collect()
    }
}

fn sleep_virtual(clock: &dyn Clock, cfg: &LiveConfig, virtual_secs: f64) {
    let real = virtual_secs.max(0.0) * cfg.time_scale;
    if real > 0.0 {
        clock.sleep(Duration::from_secs_f64(real));
    }
}

/// Runs jobs with the given placements through the live pipeline, paced by
/// the caller's [`Clock`]:
///
/// ```text
/// ic_tx ─► [IC worker × n] ─────────────────────────► results
/// up_tx ─► [uploader] ─► ec_tx ─► [EC worker × n] ─► [downloader] ─► results
/// ```
pub fn run_live(cfg: &LiveConfig, jobs: &[(Job, Placement)], clock: &dyn Clock) -> LiveOutcome {
    let start = clock.now();
    let results: Mutex<Vec<LiveCompletion>> = Mutex::new(Vec::with_capacity(jobs.len()));

    let (ic_tx, ic_rx) = channel::unbounded::<Job>();
    let (up_tx, up_rx) = channel::unbounded::<Job>();
    let (ec_tx, ec_rx) = channel::unbounded::<Job>();
    let (down_tx, down_rx) = channel::unbounded::<Job>();

    for (job, placement) in jobs {
        match placement {
            Placement::Internal => ic_tx.send(job.clone()).expect("open channel"),
            Placement::External => up_tx.send(job.clone()).expect("open channel"),
        }
    }
    // Close the intake ends so stage threads terminate on drain.
    drop(ic_tx);
    drop(up_tx);

    crossbeam::scope(|scope| {
        // IC workers.
        for _ in 0..cfg.n_ic.max(1) {
            let rx = ic_rx.clone();
            let results = &results;
            scope.spawn(move |_| {
                for job in rx.iter() {
                    sleep_virtual(clock, cfg, job.true_service_secs);
                    results.lock().push(LiveCompletion {
                        id: job.id,
                        at: clock.now().saturating_sub(start),
                        placement: Placement::Internal,
                    });
                }
            });
        }
        // Uploader: serial FIFO pipe into the EC.
        {
            let rx = up_rx.clone();
            let tx = ec_tx.clone();
            scope.spawn(move |_| {
                for job in rx.iter() {
                    sleep_virtual(clock, cfg, job.input_bytes() as f64 / cfg.bandwidth_bps);
                    if tx.send(job).is_err() {
                        break;
                    }
                }
            });
        }
        drop(ec_tx);
        // EC workers.
        for _ in 0..cfg.n_ec.max(1) {
            let rx = ec_rx.clone();
            let tx = down_tx.clone();
            scope.spawn(move |_| {
                for job in rx.iter() {
                    sleep_virtual(clock, cfg, job.true_service_secs);
                    if tx.send(job).is_err() {
                        break;
                    }
                }
            });
        }
        drop(down_tx);
        // Downloader: serial FIFO pipe back, then the result queue.
        {
            let rx = down_rx.clone();
            let results = &results;
            scope.spawn(move |_| {
                for job in rx.iter() {
                    sleep_virtual(clock, cfg, job.output_bytes as f64 / cfg.bandwidth_bps);
                    results.lock().push(LiveCompletion {
                        id: job.id,
                        at: clock.now().saturating_sub(start),
                        placement: Placement::External,
                    });
                }
            });
        }
    })
    .expect("live pipeline threads");

    LiveOutcome { completions: results.into_inner(), elapsed: clock.now().saturating_sub(start) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_sim::SimTime;
    use cloudburst_workload::{DocumentFeatures, JobType};

    /// Test-local real clock. The production wall clock lives in
    /// `cloudburst-bench` (bin-side code); depending on it here would cycle
    /// the workspace graph, so the handful of real-pacing tests carry their
    /// own copy.
    #[allow(clippy::disallowed_methods)] // test-only wall clock
    struct WallClock(std::time::Instant);

    impl WallClock {
        fn start() -> WallClock {
            #[allow(clippy::disallowed_methods)]
            WallClock(std::time::Instant::now())
        }
    }

    impl Clock for WallClock {
        fn now(&self) -> Duration {
            self.0.elapsed()
        }
        fn sleep(&self, d: Duration) {
            std::thread::sleep(d);
        }
    }

    fn job(id: u64, service_secs: f64, size_mb: u64) -> Job {
        Job {
            id: JobId(id),
            batch: 0,
            arrival: SimTime::ZERO,
            features: DocumentFeatures {
                size_bytes: size_mb * 1_000_000,
                pages: 10,
                images: 2,
                resolution_dpi: 600,
                color_fraction: 0.3,
                coverage: 0.5,
                text_ratio: 0.6,
                job_type: JobType::Book,
            },
            true_service_secs: service_secs,
            output_bytes: size_mb * 500_000,
            parent: None,
        }
    }

    fn fast() -> LiveConfig {
        LiveConfig { time_scale: 2e-5, n_ic: 2, n_ec: 1, bandwidth_bps: 250_000.0 }
    }

    #[test]
    fn all_jobs_complete() {
        let jobs: Vec<(Job, Placement)> = (0..6)
            .map(|i| {
                let p = if i % 3 == 0 { Placement::External } else { Placement::Internal };
                (job(i, 100.0, 20), p)
            })
            .collect();
        let out = run_live(&fast(), &jobs, &WallClock::start());
        assert_eq!(out.completions.len(), 6);
        let mut ids = out.order();
        ids.sort();
        assert_eq!(ids, (0..6).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn single_ic_worker_preserves_fifo() {
        let cfg = LiveConfig { n_ic: 1, ..fast() };
        let jobs: Vec<(Job, Placement)> =
            (0..5).map(|i| (job(i, 50.0, 5), Placement::Internal)).collect();
        let out = run_live(&cfg, &jobs, &WallClock::start());
        assert_eq!(out.order(), (0..5).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn bursted_jobs_pay_transfer_time() {
        // Same service time; the bursted job must finish after the local one
        // because it pays upload + download.
        let jobs = vec![
            (job(0, 200.0, 50), Placement::Internal),
            (job(1, 200.0, 50), Placement::External),
        ];
        let out = run_live(&fast(), &jobs, &WallClock::start());
        let find = |id: u64| out.completions.iter().find(|c| c.id == JobId(id)).unwrap().at;
        assert!(find(1) > find(0));
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // With 1 IC worker and work split across clouds, the live run should
        // take far less than the sequential sum of all stage times.
        let jobs = vec![
            (job(0, 400.0, 10), Placement::Internal),
            (job(1, 400.0, 10), Placement::External),
            (job(2, 400.0, 10), Placement::Internal),
            (job(3, 400.0, 10), Placement::External),
        ];
        let cfg = LiveConfig { n_ic: 1, n_ec: 2, ..fast() };
        let out = run_live(&cfg, &jobs, &WallClock::start());
        let sequential_virtual: f64 = jobs
            .iter()
            .map(|(j, _)| {
                j.true_service_secs
                    + (j.input_bytes() + j.output_bytes) as f64 / cfg.bandwidth_bps
            })
            .sum();
        let sequential_real = Duration::from_secs_f64(sequential_virtual * cfg.time_scale);
        assert!(
            out.elapsed < sequential_real,
            "pipeline {:?} should beat sequential {:?}",
            out.elapsed,
            sequential_real
        );
    }

    #[test]
    fn manual_clock_paces_deterministically() {
        // One IC worker, IC-only jobs: every sleep happens on that worker,
        // so completion offsets are exact prefix sums of the scaled service
        // times — no wall clock, identical on every run.
        let cfg = LiveConfig { n_ic: 1, ..fast() };
        let services = [100.0_f64, 250.0, 75.0];
        let jobs: Vec<(Job, Placement)> = services
            .iter()
            .enumerate()
            .map(|(i, s)| (job(i as u64, *s, 1), Placement::Internal))
            .collect();
        let run = || run_live(&cfg, &jobs, &ManualClock::new());
        let (a, b) = (run(), run());
        let mut expected = Duration::ZERO;
        for (c, s) in a.completions.iter().zip(services) {
            expected += Duration::from_secs_f64(s * cfg.time_scale);
            assert_eq!(c.at, expected, "prefix-sum pacing for {:?}", c.id);
        }
        assert_eq!(a.elapsed, expected);
        let at = |o: &LiveOutcome| o.completions.iter().map(|c| (c.id, c.at)).collect::<Vec<_>>();
        assert_eq!(at(&a), at(&b), "virtual pacing must be reproducible");
    }
}

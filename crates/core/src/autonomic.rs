//! Stand-alone autonomic calibration (Sec. III-A-2) — the machinery behind
//! Fig. 4: learning the time-of-day bandwidth profile and the per-slot
//! optimal thread counts by periodic probe transfers.
//!
//! Inside a full run the engine performs this continuously; this module
//! exposes the same loop against a bare [`BandwidthModel`] so the Fig. 4
//! experiments (and users integrating only the network layer) can calibrate
//! without a whole cluster simulation.

use cloudburst_net::{BandwidthEstimator, BandwidthModel, Link, ThreadTuner};
use cloudburst_sim::{SimDuration, SimTime};

/// Result of a calibration pass over one (virtual) day.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Ground-truth mean rate per hour (bytes/sec) — what Fig. 4(a) plots.
    pub hourly_true_bps: Vec<f64>,
    /// The estimator's per-hour predictions after calibration.
    pub hourly_est_bps: Vec<f64>,
    /// Tuned thread count per hour — what Fig. 4(b) plots.
    pub hourly_threads: Vec<u32>,
    /// Number of probe transfers performed.
    pub probes: u64,
}

impl CalibrationReport {
    /// Mean absolute percentage error of the hourly estimates vs truth.
    pub fn mape(&self) -> f64 {
        let n = self.hourly_true_bps.len() as f64;
        self.hourly_true_bps
            .iter()
            .zip(&self.hourly_est_bps)
            .map(|(t, e)| ((e - t) / t).abs())
            .sum::<f64>()
            / n
    }
}

/// Calibrates an estimator and thread tuner against a ground-truth model by
/// running `probes_per_hour` probe measurements per hour for `days` virtual
/// days. Each probe measures the effective rate at the tuner's proposed
/// thread count (including its ±1 exploration), mirroring the engine's
/// in-run behaviour. Uses the paper-default estimator (hourly slots,
/// α = 0.3); see [`calibrate_with`] to sweep those.
pub fn calibrate(
    model: &BandwidthModel,
    days: u32,
    probes_per_hour: u32,
    kappa: f64,
) -> CalibrationReport {
    calibrate_with(model, days, probes_per_hour, kappa, 24, 0.3)
}

/// [`calibrate`] with an explicit estimator configuration: `n_slots`
/// time-of-day slots (1 = a single global EWMA, no time-of-day model) and
/// EWMA weight `alpha` — the knobs the `ablate-ewma` experiment sweeps.
pub fn calibrate_with(
    model: &BandwidthModel,
    days: u32,
    probes_per_hour: u32,
    kappa: f64,
    n_slots: usize,
    alpha: f64,
) -> CalibrationReport {
    assert!(days >= 1 && probes_per_hour >= 1);
    let mut est = BandwidthEstimator::new(n_slots, alpha);
    let mut tuner = ThreadTuner::hourly();
    let step = SimDuration::from_secs(3_600 / probes_per_hour as u64);
    let mut t = SimTime::ZERO;
    let horizon = SimTime::from_secs(86_400 * days as u64);
    let mut probes = 0;
    while t < horizon {
        let threads = tuner.threads_for(t);
        let raw = model.rate_bps(t);
        let effective = Link::effective_rate(raw, threads, kappa);
        tuner.report(t, threads, effective);
        // The estimator learns the raw pipe via the saturation-law inverse,
        // exactly as the engine does for real transfers.
        let raw_est = effective * (threads as f64 + kappa) / threads as f64;
        est.observe(t, raw_est);
        probes += 1;
        t += step;
    }

    // Evaluate per hour at the middle of each slot on the *last* day.
    let base = 86_400 * (days as u64 - 1);
    let mut hourly_true = Vec::with_capacity(24);
    let mut hourly_est = Vec::with_capacity(24);
    let mut hourly_threads = Vec::with_capacity(24);
    for h in 0..24u64 {
        let mid = SimTime::from_secs(base + h * 3_600 + 1_800);
        hourly_true.push(model.rate_bps(mid));
        hourly_est.push(est.predict(mid));
        hourly_threads.push(tuner.current_best(mid));
    }
    CalibrationReport {
        hourly_true_bps: hourly_true,
        hourly_est_bps: hourly_est,
        hourly_threads,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_learns_a_diurnal_profile() {
        let model = BandwidthModel::Diurnal {
            base: 250_000.0,
            amplitude: 150_000.0,
            phase_secs: 0.0,
        };
        let rep = calibrate(&model, 3, 6, 1.5);
        assert_eq!(rep.hourly_true_bps.len(), 24);
        assert_eq!(rep.probes, 3 * 24 * 6);
        // Estimates track the diurnal shape within ~20 %.
        assert!(rep.mape() < 0.2, "mape={}", rep.mape());
        // The profile's peak and trough are reflected in the estimates.
        let peak_h = 6; // sin peaks a quarter-day in
        let trough_h = 18;
        assert!(rep.hourly_est_bps[peak_h] > rep.hourly_est_bps[trough_h]);
    }

    #[test]
    fn thread_counts_follow_bandwidth() {
        // Fast hours deserve more threads than slow hours (Fig. 4(b)).
        let mut rates = vec![40_000.0; 24];
        for r in rates.iter_mut().take(12) {
            *r = 500_000.0;
        }
        let model = BandwidthModel::Hourly { rates };
        let rep = calibrate(&model, 6, 12, 1.5);
        let fast: f64 = rep.hourly_threads[..12].iter().map(|&k| k as f64).sum::<f64>() / 12.0;
        let slow: f64 = rep.hourly_threads[12..].iter().map(|&k| k as f64).sum::<f64>() / 12.0;
        assert!(fast > slow, "fast hours {fast} vs slow hours {slow}");
    }

    #[test]
    fn constant_profile_estimates_exactly() {
        let model = BandwidthModel::Constant(300_000.0);
        let rep = calibrate(&model, 2, 4, 1.5);
        for e in &rep.hourly_est_bps {
            assert!((e / 300_000.0 - 1.0).abs() < 1e-6);
        }
    }
}

//! Criterion benches for the network substrate: fluid-flow link advancing
//! under contention, bandwidth-model evaluation, and the SIBS bound
//! computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_net::queues::SibsCandidate;
use cloudburst_net::{sibs_bounds, BandwidthModel, Link, TransferId};
use cloudburst_sim::{SimDuration, SimTime};

fn bench_link_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/link_drain");
    for n in [4usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut link = Link::new(
                    BandwidthModel::high_variation(7),
                    1.5,
                    SimDuration::from_secs(30),
                );
                for i in 0..n {
                    link.start(SimTime::ZERO, TransferId(i as u64), 5_000_000, 4);
                }
                let mut completions = 0;
                let mut buf = Vec::new();
                while let Some(w) = link.next_wake() {
                    buf.clear();
                    link.advance_into(w, &mut buf);
                    completions += buf.len();
                }
                black_box(completions)
            })
        });
    }
    group.finish();
}

fn bench_model_eval(c: &mut Criterion) {
    let model = BandwidthModel::high_variation(3);
    c.bench_function("net/model_rate_eval", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 17;
            black_box(model.rate_bps(SimTime::from_secs(t % 86_400)))
        })
    });
}

fn bench_sibs_bounds(c: &mut Criterion) {
    let batch: Vec<SibsCandidate> = (0..512)
        .map(|i| SibsCandidate {
            size: 1_000_000 + (i as u64 * 2_654_435_761) % 299_000_000,
            t_up: 100.0,
            e_ec: 300.0,
            t_down: 60.0,
            e_ic: 300.0,
        })
        .collect();
    c.bench_function("net/sibs_bounds_512", |b| {
        b.iter(|| black_box(sibs_bounds(&batch, 100_000.0, 8, (1_000, 2_000, 3_000))))
    });
}

criterion_group!(benches, bench_link_contention, bench_model_eval, bench_sibs_bounds);
criterion_main!(benches);

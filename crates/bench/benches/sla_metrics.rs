//! Criterion benches for SLA computations: the OO-metric series (the most
//! quadratic-ish cost in the reporting path) and the scalar metrics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_sim::{SimDuration, SimTime};
use cloudburst_sla::{metrics, oo_series, CompletionRecord, OoConfig, OoSample};

/// The pre-streaming per-sample rescan, kept here as the bench baseline
/// (the library's copy is `#[cfg(test)]`-gated as the equivalence oracle).
fn oo_series_rescan(
    completions: &[CompletionRecord],
    total_jobs: usize,
    horizon: SimTime,
    cfg: OoConfig,
) -> Vec<OoSample> {
    let mut by_time: Vec<&CompletionRecord> = completions.iter().collect();
    by_time.sort_by_key(|c| (c.at, c.id));
    let mut complete = vec![false; total_jobs];
    let mut bytes = vec![0u64; total_jobs];
    let mut samples = Vec::new();
    let mut next = 0usize;
    let mut m_t: Option<u64> = None;
    let mut t = SimTime::ZERO + cfg.sample_interval;
    while t <= horizon {
        while next < by_time.len() && by_time[next].at <= t {
            let c = by_time[next];
            complete[c.id as usize] = true;
            bytes[c.id as usize] = c.bytes;
            next += 1;
        }
        let mut best: Option<u64> = None;
        let mut prefix = 0u64;
        for i in 0..total_jobs as u64 {
            if complete[i as usize] {
                prefix += 1;
                if (i + 1).saturating_sub(cfg.tolerance) <= prefix {
                    best = Some(i);
                }
            }
        }
        m_t = best.or(m_t);
        let o_t = match m_t {
            None => 0,
            Some(m) => (0..=m).filter(|&i| complete[i as usize]).map(|i| bytes[i as usize]).sum(),
        };
        samples.push(OoSample { at: t, m_t, o_t, completed: prefix as usize });
        t += cfg.sample_interval;
    }
    samples
}

fn completions(n: usize) -> Vec<CompletionRecord> {
    (0..n)
        .map(|i| CompletionRecord {
            id: i as u64,
            // Shuffle completion times so the metric has real gaps to track.
            at: SimTime::from_secs(((i as u64 * 2_654_435_761) % (n as u64 * 60)) + 1),
            bytes: 1_000_000 + (i as u64 % 100) * 10_000,
        })
        .collect()
}

fn bench_oo_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("sla/oo_series");
    for n in [100usize, 500, 2_000] {
        let comps = completions(n);
        let horizon = SimTime::from_secs(n as u64 * 60 + 120);
        let cfg = OoConfig { tolerance: 4, sample_interval: SimDuration::from_mins(2) };
        group.bench_with_input(BenchmarkId::new("streaming", n), &n, |b, _| {
            b.iter(|| black_box(oo_series(&comps, n, horizon, cfg)))
        });
        group.bench_with_input(BenchmarkId::new("rescan", n), &n, |b, _| {
            b.iter(|| black_box(oo_series_rescan(&comps, n, horizon, cfg)))
        });
    }
    group.finish();
}

fn bench_scalar_metrics(c: &mut Criterion) {
    let times: Vec<SimTime> = completions(2_000).iter().map(|r| r.at).collect();
    c.bench_function("sla/makespan_and_delays_2000", |b| {
        b.iter(|| {
            let m = metrics::makespan(&times, SimTime::ZERO);
            let d = metrics::completion_delay_series(&times, SimTime::ZERO);
            let p = metrics::peak_stats(&d, 60.0);
            black_box((m, p))
        })
    });
}

criterion_group!(benches, bench_oo_series, bench_scalar_metrics);
criterion_main!(benches);

//! Criterion benches for scheduler decision throughput: how fast each
//! scheduler places a batch, as a function of batch size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_qrsm::{Method, QrsModel};
use cloudburst_sched::{
    BurstScheduler, EstimateProvider, GreedyScheduler, IcOnlyScheduler, LoadModelBuf,
    OrderPreservingScheduler, SibsScheduler,
};
use cloudburst_sim::{RngFactory, SimTime};
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::{ArrivalConfig, BatchArrivals, GroundTruth, Job, SizeBucket};

fn fixture(batch_size: f64) -> (EstimateProvider, Vec<Job>, LoadModelBuf) {
    let rngs = RngFactory::new(77);
    let truth = GroundTruth::default();
    let corpus = training_corpus(&mut rngs.stream("train"), &truth, 300);
    let xs: Vec<Vec<f64>> = corpus.iter().map(|(f, _)| f.regressors()).collect();
    let ys: Vec<f64> = corpus.iter().map(|(_, t)| *t).collect();
    let est = EstimateProvider::new(QrsModel::fit(&xs, &ys, Method::Ols).unwrap())
        .with_bandwidth_prior(250_000.0);
    let gen = BatchArrivals::new(ArrivalConfig {
        n_batches: 1,
        jobs_per_batch: batch_size,
        bucket: SizeBucket::Uniform,
        ..ArrivalConfig::default()
    });
    let jobs = gen.generate_flat(&rngs, &truth);
    let mut load = LoadModelBuf::idle(SimTime::ZERO, 8, 2);
    load.ic_free_secs = vec![2_000.0; 8];
    load.outstanding_est_completions = vec![SimTime::from_secs(2_000)];
    (est, jobs, load)
}

fn bench_schedulers(c: &mut Criterion) {
    for batch in [15usize, 60, 240] {
        let (est, jobs, load) = fixture(batch as f64);
        let mut group = c.benchmark_group(format!("sched/batch_{batch}"));
        group.bench_function(BenchmarkId::from_parameter("ic-only"), |b| {
            b.iter(|| {
                let mut s = IcOnlyScheduler::new();
                black_box(s.schedule_batch(jobs.clone(), &load.as_model(), &est))
            })
        });
        group.bench_function(BenchmarkId::from_parameter("greedy"), |b| {
            b.iter(|| {
                let mut s = GreedyScheduler::new();
                black_box(s.schedule_batch(jobs.clone(), &load.as_model(), &est))
            })
        });
        group.bench_function(BenchmarkId::from_parameter("op"), |b| {
            b.iter(|| {
                let mut s = OrderPreservingScheduler::default_with_seed(1);
                black_box(s.schedule_batch(jobs.clone(), &load.as_model(), &est))
            })
        });
        group.bench_function(BenchmarkId::from_parameter("op+sibs"), |b| {
            b.iter(|| {
                let mut s = SibsScheduler::default_with_seed(1);
                black_box(s.schedule_batch(jobs.clone(), &load.as_model(), &est))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);

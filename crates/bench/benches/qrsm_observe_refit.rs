//! Criterion benches for the online-tuning fast path: the legacy
//! refit-from-scratch (rebuild the design matrix over the window, re-run a
//! batch fit) against the sliding-window RLS refit (rank-1 maintained
//! normal equations + Cholesky solve), across window sizes, plus the
//! allocation-free non-refit observe step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_qrsm::{design::QuadraticDesign, fit, Method, QrsModel};
use cloudburst_sim::RngFactory;
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::GroundTruth;

fn corpus(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let rngs = RngFactory::new(1234);
    let truth = GroundTruth::default();
    let c = training_corpus(&mut rngs.stream("bench"), &truth, n);
    (c.iter().map(|(f, _)| f.regressors()).collect(), c.iter().map(|(_, t)| *t).collect())
}

/// What every refit cost before the RLS rewrite: expand the whole window
/// into a design matrix and solve from scratch.
fn batch_refit(xs: &[Vec<f64>], ys: &[f64]) -> Vec<f64> {
    let d = QuadraticDesign::new(xs[0].len());
    let m = d.design_matrix(xs);
    fit::fit(&m, ys, Method::Ols).unwrap()
}

fn bench_refit_batch_vs_rls(c: &mut Criterion) {
    let (xs, ys) = corpus(1_600);
    let mut group = c.benchmark_group("qrsm/observe_refit");
    // 400 is the engine's default window (training corpus size).
    for w in [100usize, 400, 1_000] {
        let wxs = &xs[..w];
        let wys = &ys[..w];
        group.bench_with_input(BenchmarkId::new("batch", w), &w, |b, _| {
            b.iter(|| black_box(batch_refit(wxs, wys)))
        });
        group.bench_with_input(BenchmarkId::new("rls", w), &w, |b, _| {
            let mut m = QrsModel::fit(wxs, wys, Method::Ols)
                .unwrap()
                .with_window_capacity(w)
                .with_refit_every(1);
            let mut i = 0usize;
            b.iter(|| {
                // One full observe→refit step: eviction down-date, row
                // up-date, Cholesky solve, streaming residual stats.
                let k = i % xs.len();
                i += 1;
                black_box(m.observe(&xs[k], ys[k]))
            })
        });
        group.bench_with_input(BenchmarkId::new("observe_only", w), &w, |b, _| {
            let mut m = QrsModel::fit(wxs, wys, Method::Ols)
                .unwrap()
                .with_window_capacity(w)
                .with_refit_every(0);
            let mut i = 0usize;
            b.iter(|| {
                let k = i % xs.len();
                i += 1;
                black_box(m.observe(&xs[k], ys[k]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refit_batch_vs_rls);
criterion_main!(benches);

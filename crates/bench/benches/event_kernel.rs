//! Criterion benches for the DES kernel: scheduling throughput, mixed
//! schedule/fire workloads, and cancellation cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_sim::{Sim, SimTime};

fn bench_schedule_and_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/schedule_and_run");
    for n in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim: Sim<u64> = Sim::new();
                for i in 0..n {
                    // Scatter times so the heap actually works.
                    let t = SimTime::from_micros((i * 2_654_435_761) % 1_000_000_000);
                    sim.schedule_at(t, |w, _| *w += 1);
                }
                let mut world = 0u64;
                sim.run(&mut world);
                black_box(world)
            })
        });
    }
    group.finish();
}

fn bench_cascading_events(c: &mut Criterion) {
    c.bench_function("sim/cascade_100k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            fn chain(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if *w < 100_000 {
                    sim.schedule_in(cloudburst_sim::SimDuration::from_micros(1), chain);
                }
            }
            sim.schedule_now(chain);
            let mut world = 0u64;
            sim.run(&mut world);
            black_box(world)
        })
    });
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("sim/schedule_cancel_50k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let ids: Vec<_> = (0..50_000u64)
                .map(|i| sim.schedule_at(SimTime::from_micros(i), |w, _| *w += 1))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            let mut world = 0u64;
            sim.run(&mut world);
            black_box(world)
        })
    });
}

criterion_group!(benches, bench_schedule_and_run, bench_cascading_events, bench_cancellation);
criterion_main!(benches);

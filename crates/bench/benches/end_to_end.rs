//! Criterion benches for whole experiment runs — the cost of regenerating
//! one paper data point per scheduler, plus simulator event throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_workload::{ArrivalConfig, SizeBucket};

fn cfg(kind: SchedulerKind) -> ExperimentConfig {
    ExperimentConfig {
        scheduler: kind,
        arrivals: ArrivalConfig {
            n_batches: 4,
            jobs_per_batch: 10.0,
            bucket: SizeBucket::Uniform,
            ..ArrivalConfig::default()
        },
        training_docs: 200,
        ..ExperimentConfig::default()
    }
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/full_run_4x10");
    group.sample_size(20);
    for kind in [
        SchedulerKind::IcOnly,
        SchedulerKind::Greedy,
        SchedulerKind::OrderPreserving,
        SchedulerKind::Sibs,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| b.iter(|| black_box(run_experiment(&cfg(kind)))),
        );
    }
    group.finish();
}

fn bench_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/paper_scale_7x15");
    group.sample_size(10);
    group.bench_function("op_large_highvar", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::paper_high_variation(
                SchedulerKind::OrderPreserving,
                SizeBucket::LargeBiased,
                42,
            );
            black_box(run_experiment(&cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_paper_scale);
criterion_main!(benches);

//! Criterion benches for the QRSM stack: design expansion, OLS / ridge /
//! LAD fitting, prediction and online refits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cloudburst_qrsm::{design::QuadraticDesign, fit, Matrix, Method, QrsModel};
use cloudburst_sim::RngFactory;
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::GroundTruth;

fn corpus(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let rngs = RngFactory::new(1234);
    let truth = GroundTruth::default();
    let c = training_corpus(&mut rngs.stream("bench"), &truth, n);
    (c.iter().map(|(f, _)| f.regressors()).collect(), c.iter().map(|(_, t)| *t).collect())
}

fn bench_design_expansion(c: &mut Criterion) {
    let (xs, _) = corpus(500);
    let d = QuadraticDesign::new(xs[0].len());
    c.bench_function("qrsm/design_matrix_500x28", |b| {
        b.iter(|| black_box(d.design_matrix(&xs)))
    });
}

fn bench_fits(c: &mut Criterion) {
    let (xs, ys) = corpus(500);
    let d = QuadraticDesign::new(xs[0].len());
    let m: Matrix = d.design_matrix(&xs);
    let mut group = c.benchmark_group("qrsm/fit_500x28");
    for (label, method) in
        [("ols", Method::Ols), ("ridge", Method::Ridge(1.0)), ("lad", Method::Lad)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &method, |b, &method| {
            b.iter(|| black_box(fit::fit(&m, &ys, method).unwrap()))
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (xs, ys) = corpus(500);
    let model = QrsModel::fit(&xs, &ys, Method::Ols).unwrap();
    let probe = xs[0].clone();
    c.bench_function("qrsm/predict", |b| b.iter(|| black_box(model.predict(&probe))));
}

fn bench_online_refit(c: &mut Criterion) {
    let (xs, ys) = corpus(300);
    c.bench_function("qrsm/refit_300_window", |b| {
        b.iter_batched(
            || QrsModel::fit(&xs, &ys, Method::Ols).unwrap(),
            |mut m| {
                m.refit().unwrap();
                black_box(m)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_design_expansion, bench_fits, bench_predict, bench_online_refit);
criterion_main!(benches);

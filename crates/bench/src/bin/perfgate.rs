//! `perfgate` — loose performance floors for CI.
//!
//! Compares a freshly measured probe line (from `perfsmoke` or
//! `perfscale`) against a checked-in baseline (`BENCH_PR2.json`,
//! `BENCH_PR4.json`): every throughput key — one ending in `_per_sec` —
//! present in *both* files must be at least `baseline / headroom`. The
//! default headroom of 5× makes the gate a regression tripwire (an
//! accidental return to a linear or allocating path shows up as 10–100×),
//! not a flakiness source on busy CI machines.
//!
//! ```text
//! perfgate <fresh.json> <baseline.json> [headroom]
//! ```
//!
//! Exits non-zero if any floor is broken, or if the two files share no
//! throughput keys (a silently toothless gate is itself a failure).

use std::process::ExitCode;

fn load(path: &str) -> serde_json::Map {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perfgate: cannot read {path}: {e}"));
    match serde_json::from_str_value(text.trim()) {
        Ok(serde_json::Value::Object(m)) => m,
        _ => panic!("perfgate: {path} is not a one-line JSON object"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, base_path) = match (args.first(), args.get(1)) {
        (Some(f), Some(b)) => (f.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: perfgate <fresh.json> <baseline.json> [headroom]");
            return ExitCode::FAILURE;
        }
    };
    let headroom: f64 = args.get(2).map_or(5.0, |h| h.parse().expect("numeric headroom"));
    assert!(headroom >= 1.0, "headroom must be >= 1");

    let fresh = load(fresh_path);
    let base = load(base_path);

    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut keys: Vec<&String> = base.keys().collect();
    keys.sort();
    for key in keys {
        if !key.ends_with("_per_sec") {
            continue;
        }
        let Some(b) = base[key].as_f64() else { continue };
        let Some(f) = fresh.get(key).and_then(|v| v.as_f64()) else { continue };
        checked += 1;
        let floor = b / headroom;
        let ok = f >= floor;
        if !ok {
            failed += 1;
        }
        println!(
            "{} {key}: fresh {f:.3e} vs floor {floor:.3e} (baseline {b:.3e} / {headroom}x)",
            if ok { "ok  " } else { "FAIL" },
        );
    }
    if checked == 0 {
        eprintln!("perfgate: no shared *_per_sec keys between {fresh_path} and {base_path}");
        return ExitCode::FAILURE;
    }
    println!("perfgate: {checked} floors checked, {failed} broken");
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `perfgate` — loose performance floors for CI.
//!
//! Compares a freshly measured probe line (from `perfsmoke` or
//! `perfscale`) against a checked-in baseline (`BENCH_PR2.json`,
//! `BENCH_PR4.json`): every throughput key — one ending in `_per_sec` —
//! present in *both* files must be at least `baseline / headroom`. The
//! default headroom of 5× makes the gate a regression tripwire (an
//! accidental return to a linear or allocating path shows up as 10–100×),
//! not a flakiness source on busy CI machines.
//!
//! ```text
//! perfgate <fresh.json> <baseline.json> [headroom] [curve_bound]
//! ```
//!
//! Besides the floors, the gate holds the decisions/s-vs-depth curve
//! flat: when the fresh line carries two or more
//! `decision_curve_*_decisions_per_sec` keys, their max/min ratio must
//! not exceed `curve_bound` (default 3×). A decision loop that regressed
//! to O(queue) shows up as a 10–40× spread across the probed depths long
//! before any absolute floor trips.
//!
//! The open-system serving record adds two memory-flatness rules and a
//! throughput-ratio rule, all on the *fresh* line (they assert physics of
//! the run itself, not drift against the baseline): the per-window
//! live-bytes curve (`serve_mem_curve_*_live_bytes`, key-sorted = time
//! order) and the serve-scale first/last window pair must each end within
//! 1.5× of where they started, and `serve_sustained_over_closed` — open
//! serving vs the closed-batch twin over the identical workload — must
//! hold ≥ 0.9×. The economics record adds one more fresh-line rule:
//! `econ_dormant_over_clean` — engine throughput with a dormant econ
//! section vs `econ: None` — must hold ≥ 0.95×, since a dormant section
//! is contractually the identical code path.
//!
//! When the fresh line carries the sharded-engine threads curve
//! (`threads_curve_w<N>_jobs_per_sec`), the gate also requires the
//! 4-worker end-to-end run to reach ≥ 2× the pinned-serial one — skipped
//! (with a notice) when the fresh record's `host_cores` is below 4, since
//! a single-core host measuring a flat curve is physics, not a
//! regression.
//!
//! Exits non-zero if any floor is broken, the curve ratio is exceeded,
//! the threads-curve speedup is gated and missed, or the two files share
//! no throughput keys (a silently toothless gate is itself a failure).

use std::process::ExitCode;

fn load(path: &str) -> serde_json::Map {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perfgate: cannot read {path}: {e}"));
    match serde_json::from_str_value(text.trim()) {
        Ok(serde_json::Value::Object(m)) => m,
        _ => panic!("perfgate: {path} is not a one-line JSON object"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, base_path) = match (args.first(), args.get(1)) {
        (Some(f), Some(b)) => (f.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: perfgate <fresh.json> <baseline.json> [headroom] [curve_bound]");
            return ExitCode::FAILURE;
        }
    };
    let headroom: f64 = args.get(2).map_or(5.0, |h| h.parse().expect("numeric headroom"));
    assert!(headroom >= 1.0, "headroom must be >= 1");
    let curve_bound: f64 = args.get(3).map_or(3.0, |b| b.parse().expect("numeric curve bound"));
    assert!(curve_bound >= 1.0, "curve bound must be >= 1");

    let fresh = load(fresh_path);
    let base = load(base_path);

    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut keys: Vec<&String> = base.keys().collect();
    keys.sort();
    for key in keys {
        if !key.ends_with("_per_sec") {
            continue;
        }
        let Some(b) = base[key].as_f64() else { continue };
        let Some(f) = fresh.get(key).and_then(|v| v.as_f64()) else { continue };
        checked += 1;
        let floor = b / headroom;
        let ok = f >= floor;
        if !ok {
            failed += 1;
        }
        println!(
            "{} {key}: fresh {f:.3e} vs floor {floor:.3e} (baseline {b:.3e} / {headroom}x)",
            if ok { "ok  " } else { "FAIL" },
        );
    }
    if checked == 0 {
        eprintln!("perfgate: no shared *_per_sec keys between {fresh_path} and {base_path}");
        return ExitCode::FAILURE;
    }

    // Depth-flatness: the fresh curve's spread across queue depths.
    let mut curve: Vec<(&String, f64)> = fresh
        .iter()
        .filter(|(k, _)| {
            k.starts_with("decision_curve_") && k.ends_with("_decisions_per_sec")
        })
        .filter_map(|(k, v)| v.as_f64().map(|f| (k, f)))
        .collect();
    curve.sort_by(|a, b| a.0.cmp(b.0));
    if curve.len() >= 2 {
        let max = curve.iter().map(|(_, f)| *f).fold(f64::MIN, f64::max);
        let min = curve.iter().map(|(_, f)| *f).fold(f64::MAX, f64::min);
        assert!(min > 0.0, "curve rates must be positive");
        let ratio = max / min;
        let ok = ratio <= curve_bound;
        if !ok {
            failed += 1;
        }
        for (k, f) in &curve {
            println!("     {k}: {f:.3e}");
        }
        println!(
            "{} decision curve: max/min ratio {ratio:.2} (bound {curve_bound}) over {} depths",
            if ok { "ok  " } else { "FAIL" },
            curve.len(),
        );
    }

    // Open-system serving gates (ISSUE 9). All three read the fresh line
    // only: memory flatness and the open/closed ratio are invariants of
    // the run itself, so comparing them against a baseline measured on
    // different hardware would add noise without adding teeth.
    //
    // (a) Sustained-serving memory flatness: the per-window live-bytes
    // high-water curve from perfsmoke must end within 1.5x of its first
    // post-warm-up window — a serving loop that re-grew whole-run state
    // shows up as a monotone ramp, typically 10x+ across the stream.
    let mut mem_curve: Vec<(&String, f64)> = fresh
        .iter()
        .filter(|(k, _)| k.starts_with("serve_mem_curve_") && k.ends_with("_live_bytes"))
        .filter_map(|(k, v)| v.as_f64().map(|f| (k, f)))
        .collect();
    mem_curve.sort_by(|a, b| a.0.cmp(b.0));
    if mem_curve.len() >= 2 {
        let (first_key, first) = mem_curve[0];
        let (last_key, last) = mem_curve[mem_curve.len() - 1];
        assert!(first > 0.0, "live-bytes high-water must be positive");
        let ratio = last / first;
        let ok = ratio <= 1.5;
        if !ok {
            failed += 1;
        }
        println!(
            "{} serve memory curve: {last_key} = {ratio:.2}x {first_key} \
             (bound 1.5x) over {} windows",
            if ok { "ok  " } else { "FAIL" },
            mem_curve.len(),
        );
    }

    // (b) The same flatness claim at megascale, from perfscale's
    // first/last post-warm-up window high-water pair.
    let sfirst = fresh.get("serve_scale_live_bytes_first_window").and_then(|v| v.as_f64());
    let slast = fresh.get("serve_scale_live_bytes_last_window").and_then(|v| v.as_f64());
    if let (Some(first), Some(last)) = (sfirst, slast) {
        assert!(first > 0.0, "live-bytes high-water must be positive");
        let ratio = last / first;
        let ok = ratio <= 1.5;
        if !ok {
            failed += 1;
        }
        println!(
            "{} serve scale memory: last window = {ratio:.2}x first (bound 1.5x)",
            if ok { "ok  " } else { "FAIL" },
        );
    }

    // (c) Sustained throughput: open serving must hold >= 0.9x the
    // closed-batch twin over the identical workload (ISSUE 9 acceptance).
    if let Some(ratio) = fresh.get("serve_sustained_over_closed").and_then(|v| v.as_f64()) {
        let ok = ratio >= 0.9;
        if !ok {
            failed += 1;
        }
        println!(
            "{} serve sustained throughput: {ratio:.3}x closed-batch (need >= 0.9x)",
            if ok { "ok  " } else { "FAIL" },
        );
    }

    // (d) Dormant-econ overhead: a dormant econ section must cost nothing
    // — the engine runs the literally identical code path, so the
    // best-of-blocks throughput ratio reads ~1.0 and 0.95 is pure noise
    // margin, not headroom. Fresh-line rule like (a)-(c): the claim is an
    // invariant of the build, not drift against the baseline.
    if let Some(ratio) = fresh.get("econ_dormant_over_clean").and_then(|v| v.as_f64()) {
        let ok = ratio >= 0.95;
        if !ok {
            failed += 1;
        }
        println!(
            "{} econ dormant throughput: {ratio:.3}x econ-free (need >= 0.95x)",
            if ok { "ok  " } else { "FAIL" },
        );
    }

    // Sharded-engine scaling gate: when the fresh record carries the
    // threads curve, the 4-worker end-to-end run must be at least 2× the
    // pinned-serial one — but only on a host that can actually scale
    // (`host_cores >= 4`, read from the fresh record itself: a 1-core CI
    // box measuring a flat curve is physics, not a regression).
    let w1 = fresh.get("threads_curve_w1_jobs_per_sec").and_then(|v| v.as_f64());
    let w4 = fresh.get("threads_curve_w4_jobs_per_sec").and_then(|v| v.as_f64());
    if let (Some(w1), Some(w4)) = (w1, w4) {
        let host_cores = fresh.get("host_cores").and_then(|v| v.as_f64()).unwrap_or(1.0);
        assert!(w1 > 0.0, "threads curve rates must be positive");
        let speedup = w4 / w1;
        if host_cores >= 4.0 {
            let ok = speedup >= 2.0;
            if !ok {
                failed += 1;
            }
            println!(
                "{} threads curve: 4 workers = {speedup:.2}x serial (need >= 2x; host has {host_cores} cores)",
                if ok { "ok  " } else { "FAIL" },
            );
        } else {
            println!(
                "skip threads curve: host has {host_cores} core(s), 4-worker speedup {speedup:.2}x not gated"
            );
        }
    }

    println!("perfgate: {checked} floors checked, {failed} broken");
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

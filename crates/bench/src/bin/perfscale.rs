//! `perfscale` — megascale decision-loop and end-to-end throughput probes.
//!
//! Two families of numbers, written as one line of JSON (the `BENCH_PR4`
//! record; `perfgate` later enforces loose floors against it):
//!
//! * **Decision loop** — an [`EngineHarness`] is advanced to a mid-run
//!   state with every batch admitted (tens of thousands of queued jobs),
//!   then `load_snapshot` is timed in place. The pre-PR engine's
//!   O(queue × machines) linear rescan is replayed over the same state via
//!   the public probe accessors, giving an apples-to-apples `decisions/s`
//!   pair and the speedup. The hybrid drain is also spot-checked bitwise
//!   against an independent full-rescan replica of its semantics at every
//!   probed scale.
//! * **Depth curve** — `decision_curve_<depth>_*`: full decision sweeps
//!   (load-model refresh + rescheduling evaluation) timed at queue depths
//!   from ≈ 50k to ≈ 2M. The hybrid drain makes one decision independent
//!   of backlog, so `perfgate` holds this curve flat (bounded max/min
//!   ratio across depths).
//! * **End to end** — full `run_with_batches` runs of the megascale
//!   workload (batches of ≈ 10 000 jobs, 64 + 64 machines) for the greedy,
//!   order-preserving and SIBS schedulers, reported as jobs per second.
//! * **Threads curve** — `threads_curve_w<N>_jobs_per_sec`: the same
//!   end-to-end run pinned to 1/2/4/8 shard workers (the `BENCH_PR7`
//!   record). Output bytes are worker-count invariant by construction;
//!   `perfgate` requires the 4-worker run to be ≥ 2× the serial one when
//!   the recorded `host_cores` shows the machine can actually scale.
//! * **Serve scale** — `serve_scale_*`: a stable open-system serving
//!   stream (10M jobs full mode, 150k reduced, utilization-matched)
//!   stepped window by window, reporting sustained jobs/s, the live-jobs
//!   high-water mark and the first/last post-warm-up window live-bytes
//!   high-water pair that `perfgate` holds within 1.5× (the serve-scale
//!   half of the `BENCH_PR9` record).
//!
//! ```text
//! perfscale                  full probe (100k and 1M jobs + 4-depth curve)
//! perfscale <path>           additionally write the JSON line to <path>
//! perfscale --reduced [path] CI mode: 20k jobs, 2-depth curve, fewer iters
//! ```
//!
//! Generic (unsuffixed) keys always describe the primary scale — 100k in
//! full mode, 20k in reduced mode — so a reduced CI run produces the same
//! key set that `perfgate` reads from the checked-in full-run baseline.

// Timing wall-clock durations is this binary's whole purpose; the
// disallowed-methods ban on Instant::now targets deterministic library
// code, not the perf harness.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::time::Instant;

use cloudburst_cluster::Cloud;
use cloudburst_core::engine::run_with_batches;
use cloudburst_core::{EngineHarness, ExperimentConfig, SchedulerKind, ServeConfig, ServeHarness};
use cloudburst_sched::{fluid_fill_level, DRAIN_WINDOW};
use cloudburst_sim::{RngFactory, SimDuration, SimTime};
use cloudburst_sla::WindowConfig;
use cloudburst_testsupport::{high_water_bytes, reset_high_water, CountingAlloc};
use cloudburst_workload::{BatchArrivals, JobId, OpenArrivalConfig};
use serde_json::json;

// The serve-scale probe reports per-window live-bytes high-water marks,
// so the binary runs under the counting allocator; its two relaxed
// atomics are noise against the 5x perfgate headroom, and the hot loop
// itself is allocation-free (alloc_free*.rs).
#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Mirror of the engine's dead-machine free-time sentinel. The probes run
/// fault-free, so no entry ever reaches it — the filter below is kept only
/// so the replica states the full production semantics.
const DEAD_FREE_SECS: f64 = 1_000_000_000.0;

/// Faithful replica of the pre-PR decision-loop inner step: rebuild the
/// machine free-time array with a fresh allocation and drain the FCFS
/// queue with a linear `min_by` rescan per queued job — O(queue × machines)
/// per call, exactly what `EngineWorld::est_free_secs` did before the
/// indexed fast path replaced it.
fn legacy_est_free_secs(
    est_exec: &[f64],
    cloud: &Cloud<JobId>,
    speed: f64,
    now: SimTime,
) -> Vec<f64> {
    let mut free = vec![0.0; cloud.n_machines()];
    for (key, machine, started) in cloud.running_detail() {
        let est = est_exec.get(key.0 as usize).copied().unwrap_or(60.0);
        let elapsed_std = (now - started).as_secs_f64() * speed;
        free[machine.0] = (est - elapsed_std).max(0.0) / speed;
    }
    for key in cloud.queued_keys() {
        let est = est_exec.get(key.0 as usize).copied().unwrap_or(60.0);
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("machines exist");
        free[idx] += est / speed;
    }
    free
}

/// Independent full-rescan replica of the engine's *hybrid* drain
/// semantics: fluid water-fill of the first `queue − DRAIN_WINDOW` jobs'
/// maintained tick cost onto the live bases, then a linear `min_by`
/// replay of the exact tail window. Release-mode counterpart of the
/// engine's `#[cfg(test)]` oracle, so every probed scale re-proves the
/// production drain bitwise before it is timed.
fn hybrid_est_free_secs(
    est_exec: &[f64],
    cloud: &Cloud<JobId>,
    speed: f64,
    now: SimTime,
) -> Vec<f64> {
    let mut free = vec![0.0; cloud.n_machines()];
    for (key, machine, started) in cloud.running_detail() {
        let est = est_exec.get(key.0 as usize).copied().unwrap_or(60.0);
        let elapsed_std = (now - started).as_secs_f64() * speed;
        free[machine.0] = (est - elapsed_std).max(0.0) / speed;
    }
    let q = cloud.queued();
    let mut tail_start = 0;
    if q > DRAIN_WINDOW && free.iter().any(|v| *v < DEAD_FREE_SECS) {
        tail_start = q - DRAIN_WINDOW;
        let prefix_ticks: u64 = cloud.queued_detail().take(tail_start).map(|(_, t)| t).sum();
        let prefix_secs = SimDuration::from_micros(prefix_ticks).as_secs_f64();
        let mut bases: Vec<f64> = free.iter().copied().filter(|v| *v < DEAD_FREE_SECS).collect();
        bases.sort_unstable_by(f64::total_cmp);
        let level = fluid_fill_level(&bases, prefix_secs);
        for v in free.iter_mut() {
            if *v < DEAD_FREE_SECS && *v < level {
                *v = level;
            }
        }
    }
    for (key, _) in cloud.queued_detail().skip(tail_start) {
        let est = est_exec.get(key.0 as usize).copied().unwrap_or(60.0);
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("machines exist");
        free[idx] += est / speed;
    }
    free
}

/// Builds the megascale harness and advances it to the instant after the
/// last batch arrival — the deepest queue state of the run.
fn mid_run_harness(kind: SchedulerKind, total_jobs: u64, seed: u64) -> (EngineHarness, SimTime) {
    mid_run_harness_cfg(ExperimentConfig::megascale(kind, total_jobs, seed))
}

/// As [`mid_run_harness`], from an explicit (possibly customized) config.
fn mid_run_harness_cfg(cfg: ExperimentConfig) -> (EngineHarness, SimTime) {
    let rngs = RngFactory::new(cfg.seed);
    let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
    let last_arrival = batches.last().expect("at least one batch").arrival;
    let mut h = EngineHarness::new(&cfg, batches);
    h.run_until(last_arrival + cloudburst_sim::SimDuration::from_secs(1));
    let now = h.now();
    (h, now)
}

/// Decision-loop probe at one scale: (indexed decisions/s, legacy
/// decisions/s, queued jobs at the probed instant).
fn decision_probe(total_jobs: u64, iters: usize) -> (f64, f64, usize) {
    let (mut h, now) = mid_run_harness(SchedulerKind::OrderPreserving, total_jobs, 71);
    let w = h.world_mut();
    let queued = w.ic_cloud().queued();
    assert!(queued > 0, "mid-run probe state must have a backlog");

    // Spot-check: the hybrid drain agrees bitwise with the independent
    // full-rescan replica of its semantics over the megascale queue, IC
    // and EC.
    let speed = w.config().ic_speed;
    let ec_speed = w.config().ec_speed;
    let got_ic = w.load_snapshot(now).ic_free_secs.to_vec();
    let got_ec = w.load_snapshot(now).ec_free_secs.to_vec();
    let want_ic = hybrid_est_free_secs(w.est_exec_estimates(), w.ic_cloud(), speed, now);
    let want_ec = hybrid_est_free_secs(w.est_exec_estimates(), w.ec_cloud(0), ec_speed, now);
    assert_eq!(got_ic, want_ic, "hybrid IC drain diverged from the rescan replica at scale");
    assert_eq!(got_ec, want_ec, "hybrid EC drain diverged from the rescan replica at scale");

    // Warm, then time the indexed path.
    w.decision_sweep(now);
    let t0 = Instant::now();
    for _ in 0..iters {
        let load = w.load_snapshot(now);
        assert!(!load.ic_free_secs.is_empty());
    }
    let indexed = iters as f64 / t0.elapsed().as_secs_f64();

    // The legacy rescan is orders of magnitude slower; a few iterations
    // give a stable per-call time.
    let legacy_iters = (iters / 8).clamp(2, 24);
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..legacy_iters {
        sink += legacy_est_free_secs(w.est_exec_estimates(), w.ic_cloud(), speed, now)[0];
        sink += legacy_est_free_secs(w.est_exec_estimates(), w.ec_cloud(0), ec_speed, now)[0];
    }
    assert!(sink.is_finite());
    let legacy = legacy_iters as f64 / t0.elapsed().as_secs_f64();
    (indexed, legacy, queued)
}

/// Depth-curve probe: full decision sweeps (load-model refresh plus
/// pull-back/push-out evaluation, rescheduling on) timed at one queue
/// depth. Returns (decisions/s, queued jobs at the probed instant). Each
/// depth first re-proves the hybrid drain bitwise against the rescan
/// replica, so the curve only ever times verified decisions.
fn curve_probe(total_jobs: u64, iters: usize) -> (f64, usize) {
    let mut cfg = ExperimentConfig::megascale(SchedulerKind::OrderPreserving, total_jobs, 71);
    cfg.rescheduling = true;
    let (mut h, now) = mid_run_harness_cfg(cfg);
    let w = h.world_mut();
    let queued = w.ic_cloud().queued();
    assert!(queued > 0, "curve probe state must have a backlog");

    let speed = w.config().ic_speed;
    let got_ic = w.load_snapshot(now).ic_free_secs.to_vec();
    let want_ic = hybrid_est_free_secs(w.est_exec_estimates(), w.ic_cloud(), speed, now);
    assert_eq!(got_ic, want_ic, "hybrid IC drain diverged from the rescan replica on the curve");

    // Warm to the sweep's fixed point (the first sweeps may move a job
    // via push-out; the backlog dwarfs any handful of moves).
    let mut moves = (w.pull_backs(), w.push_outs());
    for _ in 0..32 {
        w.decision_sweep(now);
        let after = (w.pull_backs(), w.push_outs());
        if after == moves {
            break;
        }
        moves = after;
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        w.decision_sweep(now);
    }
    (iters as f64 / t0.elapsed().as_secs_f64(), queued)
}

/// End-to-end probe: a full megascale run, reported as jobs per second of
/// wall clock (workload generation excluded, training included — it is
/// part of every run). `workers` pins the engine's shard-worker count;
/// `None` leaves the config default (auto). The output is byte-identical
/// either way — only the wall clock moves.
fn e2e_probe(
    kind: SchedulerKind,
    total_jobs: u64,
    seed: u64,
    workers: Option<usize>,
) -> (f64, usize) {
    let mut cfg = ExperimentConfig::megascale(kind, total_jobs, seed);
    cfg.shard_workers = workers;
    let rngs = RngFactory::new(cfg.seed);
    let batches = BatchArrivals::new(cfg.arrivals.clone()).generate(&rngs, &cfg.truth);
    let t0 = Instant::now();
    let (report, _world) = run_with_batches(&cfg, batches);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.completion_times.len(), report.n_jobs, "megascale run must complete");
    (report.n_jobs as f64 / secs, report.n_jobs)
}

/// Open-stream megascale probe: a *stable* sustained stream of
/// ≈ `total_jobs` jobs against the megascale estate, stepped window by
/// window with closed rows drained as they land. Machine speed is scaled
/// with the offered rate so utilization stays ≈ 0.5 — comfortably stable,
/// because the point is sustained serving, not backlog growth (near
/// critical load the IC backlog spills into EC bursts that crawl behind
/// the WAN pipe and live state grows for the whole horizon). Returns
/// `(jobs_per_sec, jobs, first_window_hw_bytes, last_window_hw_bytes,
/// live_high_water_jobs)`: the two window high-water marks are the
/// memory-flatness record `perfgate` compares (first is the first
/// post-warm-up window).
fn serve_scale_probe(total_jobs: u64, ic_speed: f64, jobs_per_epoch: f64) -> (f64, u64, usize, usize, u64) {
    let epoch = SimDuration::from_secs(180);
    let epochs = ((total_jobs as f64 / jobs_per_epoch).ceil() as u64).max(1);
    let mut cfg = ExperimentConfig::megascale(SchedulerKind::OrderPreserving, total_jobs, 71);
    cfg.ic_speed = ic_speed;
    cfg.ec_speed = ic_speed;
    let horizon = epoch * epochs;
    const WINDOWS: u64 = 16;
    const WARMUP: u64 = 3;
    let window = SimDuration::from_secs_f64(horizon.as_secs_f64() / WINDOWS as f64);
    cfg.serve = Some(ServeConfig {
        arrivals: OpenArrivalConfig {
            epoch,
            jobs_per_epoch,
            bucket: cfg.arrivals.bucket,
            envelope: cloudburst_workload::RateEnvelope::Flat,
            burst: None,
        },
        horizon,
        window: WindowConfig { window, oo_tolerance: 0 },
    });

    let t0 = Instant::now();
    let mut h = ServeHarness::new(&cfg);
    h.run_until(SimTime::ZERO + window * WARMUP);
    h.world_mut().drain_serve_windows();
    let mut first = 0usize;
    let mut last = 0usize;
    for k in WARMUP..WINDOWS {
        reset_high_water();
        h.run_until(SimTime::ZERO + window * (k + 1));
        h.world_mut().drain_serve_windows();
        let hw = high_water_bytes();
        if k == WARMUP {
            first = hw;
        }
        last = hw;
    }
    h.run();
    let (report, _world) = h.finish();
    let jps = report.jobs_completed as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(report.jobs_completed, report.jobs_admitted, "serve stream must drain");
    (jps, report.jobs_completed, first, last, report.live_high_water)
}

const SCHEDULERS: [(SchedulerKind, &str); 3] = [
    (SchedulerKind::Greedy, "greedy"),
    (SchedulerKind::OrderPreserving, "op"),
    (SchedulerKind::Sibs, "op_sibs"),
];

/// Stage progress on stderr (stdout carries only the JSON line).
fn stage(t0: Instant, what: &str) {
    eprintln!("[perfscale {:7.1}s] {what}", t0.elapsed().as_secs_f64());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // One-shot mode: `perfscale --e2e <jobs> [workers]` runs a single
    // order-preserving end-to-end probe at an arbitrary scale and prints
    // one JSON line — how the EXPERIMENTS.md 10M-job sharded run is
    // reproduced (`perfscale --e2e 10000000 4`). Omitting `workers`
    // leaves the engine on auto (one worker per host core).
    if let Some(pos) = args.iter().position(|a| a == "--e2e") {
        let jobs: u64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("usage: perfscale --e2e <jobs> [workers]");
        let workers: Option<usize> = args.get(pos + 2).and_then(|s| s.parse().ok());
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let t0 = Instant::now();
        stage(t0, &format!("one-shot e2e op: {jobs} jobs, workers {workers:?}"));
        let (jps, n) = e2e_probe(SchedulerKind::OrderPreserving, jobs, 73, workers);
        stage(t0, "done");
        let doc = json!({
            "bench": "perfscale-e2e",
            "total_jobs": jobs,
            "shard_workers": workers,
            "host_cores": host_cores,
            "e2e_op_jobs_per_sec": jps,
            "e2e_op_jobs": n,
            "wall_secs": t0.elapsed().as_secs_f64(),
        });
        println!("{doc}");
        return;
    }

    // One-shot mode: `perfscale --serve-scale <jobs> [speed] [rate]` runs
    // only the open-stream serving probe at an arbitrary scale — how the
    // EXPERIMENTS.md 10M-job sustained-serving record (and the serve half
    // of BENCH_PR9.json) is reproduced without paying for the full probe
    // suite. `speed`/`rate` default to the full-mode shape (100x machines,
    // 6 000 jobs/epoch, utilization ~ 0.5); scale them together when
    // probing far smaller streams so utilization stays put.
    if let Some(pos) = args.iter().position(|a| a == "--serve-scale") {
        let jobs: u64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("usage: perfscale --serve-scale <jobs>");
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let t0 = Instant::now();
        stage(t0, &format!("one-shot serve-scale: {jobs} jobs"));
        let speed: f64 = args.get(pos + 2).and_then(|s| s.parse().ok()).unwrap_or(100.0);
        let rate: f64 = args.get(pos + 3).and_then(|s| s.parse().ok()).unwrap_or(6_000.0);
        let (jps, n, first, last, live_hw) = serve_scale_probe(jobs, speed, rate);
        stage(t0, "done");
        let doc = json!({
            "bench": "perfscale-serve",
            "host_cores": host_cores,
            "serve_scale_jobs_per_sec": jps,
            "serve_scale_jobs": n,
            "serve_scale_live_bytes_first_window": first,
            "serve_scale_live_bytes_last_window": last,
            "serve_scale_live_high_water_jobs": live_hw,
            "wall_secs": t0.elapsed().as_secs_f64(),
        });
        println!("{doc}");
        return;
    }

    let reduced = args.iter().any(|a| a == "--reduced");
    args.retain(|a| a != "--reduced");
    let out_path = args.first().cloned();

    let (primary, extra_scales, iters): (u64, &[(u64, &str)], usize) = if reduced {
        (20_000, &[], 40)
    } else {
        (100_000, &[(1_000_000, "1m")], 200)
    };
    // Depth curve: total jobs chosen so OP chunking (≈ 2× ids) lands the
    // probed queue near the labeled depth. Reduced CI mode runs the two
    // cheapest depths; the checked-in baseline carries all four.
    let curve: &[(u64, &str)] = if reduced {
        &[(25_000, "d50k"), (100_000, "d200k")]
    } else {
        &[(25_000, "d50k"), (100_000, "d200k"), (400_000, "d800k"), (1_000_000, "d2m")]
    };
    let curve_iters = if reduced { 40 } else { 100 };

    let t0 = Instant::now();
    let mut doc = serde_json::Map::new();
    doc.insert("bench".into(), json!("perfscale"));
    doc.insert("reduced".into(), json!(reduced));
    doc.insert("primary_scale_jobs".into(), json!(primary));
    // Host metadata: every record names the machine's core count and the
    // worker count the unpinned probes resolve to (`shard_workers: None`
    // = auto = host cores), so BENCH_*.json numbers — the threads curve
    // especially — stay interpretable across machines.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    doc.insert("host_cores".into(), json!(host_cores));
    doc.insert("default_shard_workers".into(), json!(host_cores));

    // Decision loop at the primary scale (generic keys: the perfgate set).
    stage(t0, "decision probe (primary scale)");
    let (indexed, legacy, queued) = decision_probe(primary, iters);
    doc.insert("decision_queue_depth".into(), json!(queued));
    doc.insert("decision_loop_decisions_per_sec".into(), json!(indexed));
    doc.insert("decision_loop_legacy_decisions_per_sec".into(), json!(legacy));
    doc.insert("decision_loop_speedup".into(), json!(indexed / legacy));

    // Decisions/s-vs-depth curve (the depth-flatness record perfgate
    // holds: max/min ratio across these keys stays bounded).
    for &(scale, label) in curve {
        stage(t0, &format!("decision curve {label}"));
        let (rate, queued) = curve_probe(scale, curve_iters);
        doc.insert(format!("decision_curve_{label}_decisions_per_sec"), json!(rate));
        doc.insert(format!("decision_curve_{label}_queue_depth"), json!(queued));
    }

    // End to end at the primary scale.
    for (kind, label) in SCHEDULERS {
        stage(t0, &format!("e2e {label} (primary scale)"));
        let (jps, n) = e2e_probe(kind, primary, 73, None);
        doc.insert(format!("e2e_{label}_jobs_per_sec"), json!(jps));
        doc.insert(format!("e2e_{label}_jobs"), json!(n));
    }

    // Threads-vs-throughput curve (sharded-engine record): the same
    // order-preserving megascale run pinned to 1/2/4/8 shard workers.
    // The byte-identical merge is enforced by the test suite; here only
    // the wall clock may move. `perfgate` requires ≥ 2× at 4 workers
    // when — per the `host_cores` field above — the measuring host
    // actually has 4 cores to scale onto.
    for workers in [1usize, 2, 4, 8] {
        stage(t0, &format!("threads curve: {workers} worker(s)"));
        let (jps, n) = e2e_probe(SchedulerKind::OrderPreserving, primary, 73, Some(workers));
        doc.insert(format!("threads_curve_w{workers}_jobs_per_sec"), json!(jps));
        doc.insert(format!("threads_curve_w{workers}_jobs"), json!(n));
    }

    // Open-stream sustained serving: full mode drives the >= 10M-job
    // stream behind the EXPERIMENTS.md record; reduced CI mode shrinks the
    // stream (and the machine speed, keeping utilization matched) but
    // emits the same generic keys, so the memory-flatness comparison
    // against the checked-in baseline stays well-typed.
    let (serve_jobs, serve_speed, serve_rate) =
        if reduced { (150_000, 10.0, 600.0) } else { (10_000_000, 100.0, 6_000.0) };
    stage(t0, &format!("serve-scale probe ({serve_jobs} jobs)"));
    let (sjps, sn, sfirst, slast, slive) = serve_scale_probe(serve_jobs, serve_speed, serve_rate);
    doc.insert("serve_scale_jobs_per_sec".into(), json!(sjps));
    doc.insert("serve_scale_jobs".into(), json!(sn));
    doc.insert("serve_scale_live_bytes_first_window".into(), json!(sfirst));
    doc.insert("serve_scale_live_bytes_last_window".into(), json!(slast));
    doc.insert("serve_scale_live_high_water_jobs".into(), json!(slive));

    // Larger scales (full mode only): suffixed record keys.
    for &(scale, suffix) in extra_scales {
        stage(t0, &format!("decision probe ({suffix})"));
        let (indexed, legacy, queued) = decision_probe(scale, iters / 4);
        doc.insert(format!("decision_queue_depth_{suffix}"), json!(queued));
        doc.insert(format!("decision_loop_decisions_per_sec_{suffix}"), json!(indexed));
        doc.insert(format!("decision_loop_legacy_decisions_per_sec_{suffix}"), json!(legacy));
        doc.insert(format!("decision_loop_speedup_{suffix}"), json!(indexed / legacy));
        for (kind, label) in SCHEDULERS {
            stage(t0, &format!("e2e {label} ({suffix})"));
            let (jps, n) = e2e_probe(kind, scale, 73, None);
            doc.insert(format!("e2e_{label}_jobs_per_sec_{suffix}"), json!(jps));
            doc.insert(format!("e2e_{label}_jobs_{suffix}"), json!(n));
        }
    }
    stage(t0, "done");

    let line = serde_json::to_string(&serde_json::Value::Object(doc)).expect("serialize");
    println!("{line}");
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        writeln!(f, "{line}").expect("write output file");
    }
}

//! `cloudburst` — config-driven CLI around the simulation engine.
//!
//! ```text
//! cloudburst template                          print a default config (JSON)
//! cloudburst run --config cfg.json            run one experiment, report to stdout
//! cloudburst run --config cfg.json --out r.json --timelines t.json
//! cloudburst run --config cfg.json --workload trace.json   replay a saved trace
//! cloudburst run --config cfg.json --fault-profile faults.json   inject faults
//! cloudburst sweep --config cfg.json --seeds 1,2,3 --out dir/
//! cloudburst trace --config cfg.json --out trace.json      export the workload
//! cloudburst serve --config cfg.json           open-system serving run, windowed report
//!     [--diurnal-day]                          ... the EXPERIMENTS.md diurnal+flash-crowd day
//! cloudburst econ-sweep --config cfg.json --seeds 41,42,43   price-regime x scheduler cost grid
//! ```
//!
//! Everything an experiment needs lives in one `ExperimentConfig` JSON
//! value (workload, pools, pipe models, scheduler, extensions), so runs
//! are shareable, diffable artifacts.
//!
//! `--fault-profile` (on `run` and `sweep`) loads a
//! `cloudburst_chaos::FaultProfile` JSON file and overrides the config's
//! `faults` field: the same config can be exercised clean and under chaos
//! without editing it. Faulty runs stay fully deterministic — the profile
//! is compiled against the experiment seed.

use std::fs;
use std::process::exit;

use cloudburst_core::{run_experiment_detailed, ExperimentConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cloudburst template\n  cloudburst run --config <cfg.json> [--workload <trace.json>] [--fault-profile <faults.json>] [--out <report.json>] [--timelines <t.json>]\n  cloudburst sweep --config <cfg.json> --seeds <a,b,c> [--fault-profile <faults.json>] --out <dir>\n  cloudburst trace --config <cfg.json> [--out <trace.json>]\n  cloudburst serve --config <cfg.json> [--diurnal-day] [--fault-profile <faults.json>] [--out <report.json>]\n  cloudburst econ-sweep --config <cfg.json> [--seeds <a,b,c>] [--out <table.txt>]"
    );
    exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn load_config(args: &[String]) -> ExperimentConfig {
    let path = arg_value(args, "--config").unwrap_or_else(|| usage());
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("invalid config {path}: {e}");
        exit(1);
    })
}

/// Overrides `cfg.faults` from `--fault-profile <path>` when present.
fn apply_fault_profile(cfg: &mut ExperimentConfig, args: &[String]) {
    let Some(path) = arg_value(args, "--fault-profile") else { return };
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read fault profile {path}: {e}");
        exit(1);
    });
    let profile: cloudburst_chaos::FaultProfile =
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid fault profile {path}: {e}");
            exit(1);
        });
    cfg.faults = Some(profile);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("template") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&ExperimentConfig::default()).expect("serialize")
            );
        }
        Some("trace") => {
            let cfg = load_config(&args);
            let rngs = cloudburst_sim::RngFactory::new(cfg.seed);
            let batches = cloudburst_workload::BatchArrivals::new(cfg.arrivals.clone())
                .generate(&rngs, &cfg.truth);
            let trace = cloudburst_workload::WorkloadTrace::new(
                format!("generated from config, seed {}", cfg.seed),
                batches,
            );
            match arg_value(&args, "--out") {
                Some(path) => {
                    trace.save(&path).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    });
                    println!("{} jobs in {} batches written to {path}", trace.n_jobs(), trace.batches.len());
                }
                None => println!("{}", trace.to_json()),
            }
        }
        Some("run") => {
            let mut cfg = load_config(&args);
            apply_fault_profile(&mut cfg, &args);
            let (report, world) = match arg_value(&args, "--workload") {
                Some(path) => {
                    let trace =
                        cloudburst_workload::WorkloadTrace::load(&path).unwrap_or_else(|e| {
                            eprintln!("cannot load workload {path}: {e}");
                            exit(1);
                        });
                    cloudburst_core::run_with_batches(&cfg, trace.batches)
                }
                None => run_experiment_detailed(&cfg),
            };
            let json = serde_json::to_string_pretty(&report).expect("serialize report");
            match arg_value(&args, "--out") {
                Some(path) => {
                    fs::write(&path, &json).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    });
                    println!("{}", report.summary_line());
                    println!("report written to {path}");
                }
                None => println!("{json}"),
            }
            if let Some(path) = arg_value(&args, "--timelines") {
                let tj = serde_json::to_string_pretty(world.timelines())
                    .expect("serialize timelines");
                fs::write(&path, tj).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                println!("timelines written to {path}");
            }
        }
        Some("serve") => {
            // Open-system serving: the config's `serve` section shapes the
            // stream; configs written before serving existed (no section)
            // run the default 24h flat stream. `--diurnal-day` overrides
            // the section with the EXPERIMENTS.md scenario: a full virtual
            // day of +-80% diurnal demand plus flash crowds.
            let mut cfg = load_config(&args);
            apply_fault_profile(&mut cfg, &args);
            if args.iter().any(|a| a == "--diurnal-day") {
                cfg.serve = Some(cloudburst_core::ServeConfig::diurnal_day());
            }
            let report = cloudburst_core::serve_experiment(&cfg);
            let json = serde_json::to_string_pretty(&report).expect("serialize serve report");
            let summary = format!(
                "serve[{}] seed={} horizon={:.0}s drained={:.0}s jobs={}/{} rate={:.3}/s live_hw={} windows={}",
                report.scheduler,
                report.seed,
                report.horizon_secs,
                report.drained_at_secs,
                report.jobs_completed,
                report.jobs_admitted,
                report.mean_completion_rate_per_sec,
                report.live_high_water,
                report.windows.len(),
            );
            match arg_value(&args, "--out") {
                Some(path) => {
                    fs::write(&path, &json).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    });
                    println!("{summary}");
                    println!("report written to {path}");
                }
                None => println!("{json}"),
            }
        }
        Some("econ-sweep") => {
            // Price-regime x scheduler cost grid. The config supplies the
            // workload, estate and pipes; the scheduler and `econ` section
            // are overridden per grid cell (built-in regimes, see
            // `cloudburst_bench::price_regimes`). Output is byte-identical
            // across reruns of the same config and seed list.
            let cfg = load_config(&args);
            let seeds: Vec<u64> = match arg_value(&args, "--seeds") {
                Some(list) => list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid seed: {s}");
                            exit(1);
                        })
                    })
                    .collect(),
                None => vec![cfg.seed],
            };
            let table = cloudburst_bench::econ_sweep_table(&cfg, &seeds);
            match arg_value(&args, "--out") {
                Some(path) => {
                    fs::write(&path, &table).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    });
                    println!("econ-sweep table written to {path}");
                }
                None => print!("{table}"),
            }
        }
        Some("sweep") => {
            let mut cfg = load_config(&args);
            apply_fault_profile(&mut cfg, &args);
            let seeds: Vec<u64> = arg_value(&args, "--seeds")
                .unwrap_or_else(|| usage())
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("invalid seed: {s}");
                        exit(1);
                    })
                })
                .collect();
            let dir = arg_value(&args, "--out").unwrap_or_else(|| usage());
            fs::create_dir_all(&dir).unwrap_or_else(|e| {
                eprintln!("cannot create {dir}: {e}");
                exit(1);
            });
            let reports = cloudburst_core::run_replications(&cfg, &seeds);
            for r in &reports {
                let path = format!("{dir}/report-seed{}.json", r.seed);
                fs::write(&path, serde_json::to_string_pretty(r).expect("serialize"))
                    .unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    });
                println!("{}", r.summary_line());
            }
            // Aggregate line: mean makespan/speedup across seeds.
            let n = reports.len() as f64;
            println!(
                "mean over {} seeds: makespan={:.0}s speedup={:.2}",
                reports.len(),
                reports.iter().map(|r| r.makespan_secs).sum::<f64>() / n,
                reports.iter().map(|r| r.speedup).sum::<f64>() / n,
            );
        }
        _ => usage(),
    }
}

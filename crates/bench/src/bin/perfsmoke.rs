//! `perfsmoke` — a one-command perf trajectory probe.
//!
//! Times the raw event kernel (schedule/fire cascade and schedule/cancel
//! churn, reported as events per second) plus a representative subset of
//! the `repro` experiments, and prints a single line of JSON so successive
//! runs can be collected as `BENCH_<n>.json` files and diffed:
//!
//! ```text
//! perfsmoke            print the JSON line to stdout
//! perfsmoke <path>     additionally write it to <path>
//! ```

use std::io::Write as _;
use std::time::Instant;

use cloudburst_bench::run_experiment_by_id;
use cloudburst_sim::{Sim, SimDuration};
use serde_json::json;

/// Experiments that together touch every subsystem: the Fig. 6 sweep
/// (bucket × scheduler), the burstiness timeline, and the SIBS bound path.
const REPRO_SUBSET: [&str; 3] = ["fig6", "fig4a", "sibs"];

/// Self-rescheduling cascade: one live chain, `n` sequential fires — the
/// pure schedule→fire hot path with maximal slot reuse.
fn kernel_cascade(n: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    fn chain(remaining: u64) -> impl FnOnce(&mut u64, &mut Sim<u64>) + 'static {
        move |w, sim| {
            *w += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_micros(1), chain(remaining - 1));
            }
        }
    }
    sim.schedule_now(chain(n - 1));
    let mut fired = 0u64;
    let t0 = Instant::now();
    sim.run(&mut fired);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(fired, n);
    n as f64 / secs
}

/// Schedule/cancel churn: batches where half the scheduled events are
/// cancelled before firing — the tombstone-free cancellation path.
fn kernel_churn(batches: u64, per_batch: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut ops = 0u64;
    let t0 = Instant::now();
    for b in 0..batches {
        let ids: Vec<_> = (0..per_batch)
            .map(|i| {
                sim.schedule_in(SimDuration::from_micros(1 + (i % 7)), |w: &mut u64, _| *w += 1)
            })
            .collect();
        for id in ids.iter().skip(b as usize % 2).step_by(2) {
            sim.cancel(*id);
        }
        let mut fired = 0u64;
        sim.run(&mut fired);
        ops += per_batch;
    }
    let secs = t0.elapsed().as_secs_f64();
    ops as f64 / secs
}

fn main() {
    let out_path = std::env::args().nth(1);

    // Warm-up keeps first-touch page faults and lazy init out of the numbers.
    kernel_cascade(10_000);
    let cascade_eps = kernel_cascade(200_000);
    let churn_eps = kernel_churn(100, 1_000);

    let mut repro = serde_json::Map::new();
    let t_all = Instant::now();
    for id in REPRO_SUBSET {
        let t0 = Instant::now();
        run_experiment_by_id(id).expect("known experiment id");
        repro.insert(format!("repro_{id}_secs"), json!(t0.elapsed().as_secs_f64()));
    }
    let repro_total = t_all.elapsed().as_secs_f64();

    let mut doc = serde_json::Map::new();
    doc.insert("bench".into(), json!("perfsmoke"));
    doc.insert("kernel_cascade_events_per_sec".into(), json!(cascade_eps));
    doc.insert("kernel_churn_events_per_sec".into(), json!(churn_eps));
    doc.insert("repro_subset_secs".into(), json!(repro_total));
    doc.insert(
        "threads".into(),
        json!(std::thread::available_parallelism().map_or(1, |n| n.get())),
    );
    for (k, v) in repro {
        doc.insert(k, v);
    }

    let line = serde_json::to_string(&serde_json::Value::Object(doc)).expect("serialize");
    println!("{line}");
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        writeln!(f, "{line}").expect("write output file");
    }
}

//! `perfsmoke` — a one-command perf trajectory probe.
//!
//! Times the raw event kernel (schedule/fire cascade and schedule/cancel
//! churn, reported as events per second), the autonomic-model fast paths
//! (sliding-window RLS refit vs the legacy batch refit; streaming OO
//! series vs the legacy per-sample rescan, both reported with speedups),
//! plus a representative subset of the `repro` experiments, a dormant-chaos
//! probe (full engine runs with a zero-probability fault profile armed — the
//! recovery plumbing must cost nothing when dormant), and prints a single
//! line of JSON so successive runs can be collected as `BENCH_<n>.json`
//! files and diffed:
//!
//! ```text
//! perfsmoke            print the JSON line to stdout
//! perfsmoke <path>     additionally write it to <path>
//! ```

// Timing wall-clock durations is this binary's whole purpose; the
// disallowed-methods ban on Instant::now targets deterministic library
// code, not the perf harness.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::time::Instant;

use cloudburst_bench::run_experiment_by_id;
use cloudburst_chaos::FaultProfile;
use cloudburst_core::{run_experiment, ExperimentConfig, SchedulerKind};
use cloudburst_qrsm::{design::QuadraticDesign, fit, Method, QrsModel};
use cloudburst_sim::{RngFactory, Sim, SimDuration, SimTime};
use cloudburst_sla::{oo_series, CompletionRecord, OoConfig, OoSample};
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::GroundTruth;
use serde_json::json;

/// Experiments that together touch every subsystem: the Fig. 6 sweep
/// (bucket × scheduler), the burstiness timeline, and the SIBS bound path.
const REPRO_SUBSET: [&str; 3] = ["fig6", "fig4a", "sibs"];

/// Self-rescheduling cascade: one live chain, `n` sequential fires — the
/// pure schedule→fire hot path with maximal slot reuse.
fn kernel_cascade(n: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    fn chain(remaining: u64) -> impl FnOnce(&mut u64, &mut Sim<u64>) + 'static {
        move |w, sim| {
            *w += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_micros(1), chain(remaining - 1));
            }
        }
    }
    sim.schedule_now(chain(n - 1));
    let mut fired = 0u64;
    let t0 = Instant::now();
    sim.run(&mut fired);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(fired, n);
    n as f64 / secs
}

/// Schedule/cancel churn: batches where half the scheduled events are
/// cancelled before firing — the tombstone-free cancellation path.
fn kernel_churn(batches: u64, per_batch: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut ops = 0u64;
    let t0 = Instant::now();
    for b in 0..batches {
        let ids: Vec<_> = (0..per_batch)
            .map(|i| {
                sim.schedule_in(SimDuration::from_micros(1 + (i % 7)), |w: &mut u64, _| *w += 1)
            })
            .collect();
        for id in ids.iter().skip(b as usize % 2).step_by(2) {
            sim.cancel(*id);
        }
        let mut fired = 0u64;
        sim.run(&mut fired);
        ops += per_batch;
    }
    let secs = t0.elapsed().as_secs_f64();
    ops as f64 / secs
}

/// Legacy vs RLS refit at the engine's default window size (400, the
/// training-corpus size). Returns `(batch_secs_per_refit,
/// rls_secs_per_refit)` — the RLS number times a full observe→refit step
/// (eviction down-date, row up-date, Cholesky solve, residual stats).
fn qrsm_refit_probe(window: usize, iters: usize) -> (f64, f64) {
    let rngs = RngFactory::new(1234);
    let truth = GroundTruth::default();
    let c = training_corpus(&mut rngs.stream("perfsmoke/qrsm"), &truth, window + iters);
    let xs: Vec<Vec<f64>> = c.iter().map(|(f, _)| f.regressors()).collect();
    let ys: Vec<f64> = c.iter().map(|(_, t)| *t).collect();
    let (wxs, wys) = (&xs[..window], &ys[..window]);

    // Legacy path: every refit re-expands the window and solves cold.
    let d = QuadraticDesign::new(xs[0].len());
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters.min(60) {
        let m = d.design_matrix(wxs);
        sink += fit::fit(&m, wys, Method::Ols).expect("batch fit")[0];
    }
    let batch = t0.elapsed().as_secs_f64() / iters.min(60) as f64;

    let mut m = QrsModel::fit(wxs, wys, Method::Ols)
        .expect("seed fit")
        .with_window_capacity(window)
        .with_refit_every(1);
    let t0 = Instant::now();
    for i in 0..iters {
        m.observe(&xs[window + i], ys[window + i]);
    }
    let rls = t0.elapsed().as_secs_f64() / iters as f64;
    assert!(sink.is_finite() && m.rmse().is_finite());
    (batch, rls)
}

/// Streaming vs rescan OO series at repro scale (jobs × a full-horizon
/// 2-minute sampling grid). Returns `(rescan_secs, streaming_secs)` per
/// full-series computation.
fn oo_series_probe(jobs: usize, reps: usize) -> (f64, f64) {
    let comps: Vec<CompletionRecord> = (0..jobs)
        .map(|i| CompletionRecord {
            id: i as u64,
            at: SimTime::from_secs(((i as u64 * 2_654_435_761) % (jobs as u64 * 60)) + 1),
            bytes: 1_000_000 + (i as u64 % 100) * 10_000,
        })
        .collect();
    let horizon = SimTime::from_secs(jobs as u64 * 60 + 120);
    let cfg = OoConfig { tolerance: 4, sample_interval: SimDuration::from_mins(2) };

    let t0 = Instant::now();
    let mut last: Vec<OoSample> = Vec::new();
    for _ in 0..reps {
        last = oo_series_rescan(&comps, jobs, horizon, cfg);
    }
    let rescan = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = Instant::now();
    let mut stream_last: Vec<OoSample> = Vec::new();
    for _ in 0..reps {
        stream_last = oo_series(&comps, jobs, horizon, cfg);
    }
    let streaming = t0.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(last, stream_last, "streaming series must match the rescan");
    (rescan, streaming)
}

/// The pre-streaming per-sample rescan (the library's copy is
/// `#[cfg(test)]`-gated as the equivalence oracle).
fn oo_series_rescan(
    completions: &[CompletionRecord],
    total_jobs: usize,
    horizon: SimTime,
    cfg: OoConfig,
) -> Vec<OoSample> {
    let mut by_time: Vec<&CompletionRecord> = completions.iter().collect();
    by_time.sort_by_key(|c| (c.at, c.id));
    let mut complete = vec![false; total_jobs];
    let mut bytes = vec![0u64; total_jobs];
    let mut samples = Vec::new();
    let mut next = 0usize;
    let mut m_t: Option<u64> = None;
    let mut t = SimTime::ZERO + cfg.sample_interval;
    while t <= horizon {
        while next < by_time.len() && by_time[next].at <= t {
            let c = by_time[next];
            complete[c.id as usize] = true;
            bytes[c.id as usize] = c.bytes;
            next += 1;
        }
        let mut best: Option<u64> = None;
        let mut prefix = 0u64;
        for i in 0..total_jobs as u64 {
            if complete[i as usize] {
                prefix += 1;
                if (i + 1).saturating_sub(cfg.tolerance) <= prefix {
                    best = Some(i);
                }
            }
        }
        m_t = best.or(m_t);
        let o_t = match m_t {
            None => 0,
            Some(m) => (0..=m).filter(|&i| complete[i as usize]).map(|i| bytes[i as usize]).sum(),
        };
        samples.push(OoSample { at: t, m_t, o_t, completed: prefix as usize });
        t += cfg.sample_interval;
    }
    samples
}

/// Dormant-chaos overhead: full (small) engine runs with `faults: None` vs
/// a zero-probability profile armed. A dormant profile compiles to an empty
/// plan, so both configurations must take the same code path; the gated
/// throughput key catches any accidental cost creeping into the hot loop
/// when no faults are scheduled. Returns `(dormant_runs_per_sec,
/// dormant_over_clean_ratio)`.
fn chaos_dormant_probe(reps: usize) -> (f64, f64) {
    let mk = |faults: Option<FaultProfile>| {
        let mut cfg = ExperimentConfig::paper(
            SchedulerKind::OrderPreserving,
            cloudburst_workload::SizeBucket::Uniform,
            7,
        );
        cfg.arrivals.n_batches = 3;
        cfg.arrivals.jobs_per_batch = 8.0;
        cfg.n_ic = 2;
        cfg.training_docs = 150;
        cfg.faults = faults;
        cfg
    };
    let clean = mk(None);
    let dormant = mk(Some(FaultProfile::dormant()));
    run_experiment(&clean); // warm-up
    run_experiment(&dormant);

    let t0 = Instant::now();
    for _ in 0..reps {
        run_experiment(&clean);
    }
    let clean_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        run_experiment(&dormant);
    }
    let dormant_secs = t0.elapsed().as_secs_f64();
    (reps as f64 / dormant_secs, dormant_secs / clean_secs)
}

fn main() {
    let out_path = std::env::args().nth(1);

    // Warm-up keeps first-touch page faults and lazy init out of the numbers.
    kernel_cascade(10_000);
    let cascade_eps = kernel_cascade(200_000);
    let churn_eps = kernel_churn(100, 1_000);

    qrsm_refit_probe(400, 50); // warm-up
    let (refit_batch, refit_rls) = qrsm_refit_probe(400, 2_000);
    let (oo_rescan, oo_stream) = oo_series_probe(2_000, 30);
    let (chaos_dormant_rps, chaos_dormant_ratio) = chaos_dormant_probe(20);

    let mut repro = serde_json::Map::new();
    let t_all = Instant::now();
    for id in REPRO_SUBSET {
        let t0 = Instant::now();
        run_experiment_by_id(id).expect("known experiment id");
        repro.insert(format!("repro_{id}_secs"), json!(t0.elapsed().as_secs_f64()));
    }
    let repro_total = t_all.elapsed().as_secs_f64();

    let mut doc = serde_json::Map::new();
    doc.insert("bench".into(), json!("perfsmoke"));
    doc.insert("kernel_cascade_events_per_sec".into(), json!(cascade_eps));
    doc.insert("kernel_churn_events_per_sec".into(), json!(churn_eps));
    doc.insert("qrsm_refit_batch_secs".into(), json!(refit_batch));
    doc.insert("qrsm_refit_rls_secs".into(), json!(refit_rls));
    doc.insert("qrsm_refit_speedup".into(), json!(refit_batch / refit_rls));
    doc.insert("oo_series_rescan_secs".into(), json!(oo_rescan));
    doc.insert("oo_series_streaming_secs".into(), json!(oo_stream));
    doc.insert("oo_series_speedup".into(), json!(oo_rescan / oo_stream));
    doc.insert("chaos_dormant_runs_per_sec".into(), json!(chaos_dormant_rps));
    doc.insert("chaos_dormant_overhead_ratio".into(), json!(chaos_dormant_ratio));
    doc.insert("repro_subset_secs".into(), json!(repro_total));
    // Host metadata, uniform across every BENCH_*.json record: core count
    // and the shard-worker count unpinned engine runs resolve to (auto =
    // host cores), so numbers stay interpretable across machines.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    doc.insert("threads".into(), json!(host_cores));
    doc.insert("host_cores".into(), json!(host_cores));
    doc.insert("default_shard_workers".into(), json!(host_cores));
    for (k, v) in repro {
        doc.insert(k, v);
    }

    let line = serde_json::to_string(&serde_json::Value::Object(doc)).expect("serialize");
    println!("{line}");
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        writeln!(f, "{line}").expect("write output file");
    }
}

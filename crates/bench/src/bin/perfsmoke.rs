//! `perfsmoke` — a one-command perf trajectory probe.
//!
//! Times the raw event kernel (schedule/fire cascade and schedule/cancel
//! churn, reported as events per second), the autonomic-model fast paths
//! (sliding-window RLS refit vs the legacy batch refit; streaming OO
//! series vs the legacy per-sample rescan, both reported with speedups),
//! plus a representative subset of the `repro` experiments, a dormant-chaos
//! probe (full engine runs with a zero-probability fault profile armed — the
//! recovery plumbing must cost nothing when dormant), the matching
//! dormant-econ probe and the cost-aware broker decision rate (the
//! `BENCH_PR10.json` record), and the sustained
//! open-system serving probe (a 24-virtual-hour stream vs its draw-identical
//! closed-batch twin, plus the per-window live-bytes high-water curve that
//! `perfgate` holds flat — the `BENCH_PR9.json` record), and prints a single
//! line of JSON so successive runs can be collected as `BENCH_<n>.json`
//! files and diffed:
//!
//! ```text
//! perfsmoke            print the JSON line to stdout
//! perfsmoke <path>     additionally write it to <path>
//! ```

// Timing wall-clock durations is this binary's whole purpose; the
// disallowed-methods ban on Instant::now targets deterministic library
// code, not the perf harness.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::time::Instant;

use cloudburst_bench::run_experiment_by_id;
use cloudburst_chaos::FaultProfile;
use cloudburst_core::config::EcSiteConfig;
use cloudburst_core::{
    run_experiment, EngineHarness, ExperimentConfig, SchedulerKind, ServeConfig, ServeHarness,
};
use cloudburst_econ::{BrokerPolicy, EconConfig, Money, PriceModel};
use cloudburst_qrsm::{design::QuadraticDesign, fit, Method, QrsModel};
use cloudburst_sim::{RngFactory, Sim, SimDuration, SimTime};
use cloudburst_sla::{oo_series, CompletionRecord, OoConfig, OoSample, WindowConfig};
use cloudburst_testsupport::{high_water_bytes, reset_high_water, CountingAlloc};
use cloudburst_workload::arrival::training_corpus;
use cloudburst_workload::{ArrivalConfig, GroundTruth, OpenArrivalConfig, SizeBucket};
use serde_json::json;

// The sustained-serving probe reports per-window live-bytes high-water
// marks, so the whole binary runs under the counting allocator. Its two
// relaxed atomics cost every probe low single-digit percent at most —
// far inside the 5x perfgate headroom — and the BENCH_PR9 baseline was
// recorded under the same allocator.
#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Experiments that together touch every subsystem: the Fig. 6 sweep
/// (bucket × scheduler), the burstiness timeline, and the SIBS bound path.
const REPRO_SUBSET: [&str; 3] = ["fig6", "fig4a", "sibs"];

/// Self-rescheduling cascade: one live chain, `n` sequential fires — the
/// pure schedule→fire hot path with maximal slot reuse.
fn kernel_cascade(n: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    fn chain(remaining: u64) -> impl FnOnce(&mut u64, &mut Sim<u64>) + 'static {
        move |w, sim| {
            *w += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_micros(1), chain(remaining - 1));
            }
        }
    }
    sim.schedule_now(chain(n - 1));
    let mut fired = 0u64;
    let t0 = Instant::now();
    sim.run(&mut fired);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(fired, n);
    n as f64 / secs
}

/// Schedule/cancel churn: batches where half the scheduled events are
/// cancelled before firing — the tombstone-free cancellation path.
fn kernel_churn(batches: u64, per_batch: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut ops = 0u64;
    let t0 = Instant::now();
    for b in 0..batches {
        let ids: Vec<_> = (0..per_batch)
            .map(|i| {
                sim.schedule_in(SimDuration::from_micros(1 + (i % 7)), |w: &mut u64, _| *w += 1)
            })
            .collect();
        for id in ids.iter().skip(b as usize % 2).step_by(2) {
            sim.cancel(*id);
        }
        let mut fired = 0u64;
        sim.run(&mut fired);
        ops += per_batch;
    }
    let secs = t0.elapsed().as_secs_f64();
    ops as f64 / secs
}

/// Legacy vs RLS refit at the engine's default window size (400, the
/// training-corpus size). Returns `(batch_secs_per_refit,
/// rls_secs_per_refit)` — the RLS number times a full observe→refit step
/// (eviction down-date, row up-date, Cholesky solve, residual stats).
fn qrsm_refit_probe(window: usize, iters: usize) -> (f64, f64) {
    let rngs = RngFactory::new(1234);
    let truth = GroundTruth::default();
    let c = training_corpus(&mut rngs.stream("perfsmoke/qrsm"), &truth, window + iters);
    let xs: Vec<Vec<f64>> = c.iter().map(|(f, _)| f.regressors()).collect();
    let ys: Vec<f64> = c.iter().map(|(_, t)| *t).collect();
    let (wxs, wys) = (&xs[..window], &ys[..window]);

    // Legacy path: every refit re-expands the window and solves cold.
    let d = QuadraticDesign::new(xs[0].len());
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters.min(60) {
        let m = d.design_matrix(wxs);
        sink += fit::fit(&m, wys, Method::Ols).expect("batch fit")[0];
    }
    let batch = t0.elapsed().as_secs_f64() / iters.min(60) as f64;

    let mut m = QrsModel::fit(wxs, wys, Method::Ols)
        .expect("seed fit")
        .with_window_capacity(window)
        .with_refit_every(1);
    let t0 = Instant::now();
    for i in 0..iters {
        m.observe(&xs[window + i], ys[window + i]);
    }
    let rls = t0.elapsed().as_secs_f64() / iters as f64;
    assert!(sink.is_finite() && m.rmse().is_finite());
    (batch, rls)
}

/// Streaming vs rescan OO series at repro scale (jobs × a full-horizon
/// 2-minute sampling grid). Returns `(rescan_secs, streaming_secs)` per
/// full-series computation.
fn oo_series_probe(jobs: usize, reps: usize) -> (f64, f64) {
    let comps: Vec<CompletionRecord> = (0..jobs)
        .map(|i| CompletionRecord {
            id: i as u64,
            at: SimTime::from_secs(((i as u64 * 2_654_435_761) % (jobs as u64 * 60)) + 1),
            bytes: 1_000_000 + (i as u64 % 100) * 10_000,
        })
        .collect();
    let horizon = SimTime::from_secs(jobs as u64 * 60 + 120);
    let cfg = OoConfig { tolerance: 4, sample_interval: SimDuration::from_mins(2) };

    let t0 = Instant::now();
    let mut last: Vec<OoSample> = Vec::new();
    for _ in 0..reps {
        last = oo_series_rescan(&comps, jobs, horizon, cfg);
    }
    let rescan = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = Instant::now();
    let mut stream_last: Vec<OoSample> = Vec::new();
    for _ in 0..reps {
        stream_last = oo_series(&comps, jobs, horizon, cfg);
    }
    let streaming = t0.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(last, stream_last, "streaming series must match the rescan");
    (rescan, streaming)
}

/// The pre-streaming per-sample rescan (the library's copy is
/// `#[cfg(test)]`-gated as the equivalence oracle).
fn oo_series_rescan(
    completions: &[CompletionRecord],
    total_jobs: usize,
    horizon: SimTime,
    cfg: OoConfig,
) -> Vec<OoSample> {
    let mut by_time: Vec<&CompletionRecord> = completions.iter().collect();
    by_time.sort_by_key(|c| (c.at, c.id));
    let mut complete = vec![false; total_jobs];
    let mut bytes = vec![0u64; total_jobs];
    let mut samples = Vec::new();
    let mut next = 0usize;
    let mut m_t: Option<u64> = None;
    let mut t = SimTime::ZERO + cfg.sample_interval;
    while t <= horizon {
        while next < by_time.len() && by_time[next].at <= t {
            let c = by_time[next];
            complete[c.id as usize] = true;
            bytes[c.id as usize] = c.bytes;
            next += 1;
        }
        let mut best: Option<u64> = None;
        let mut prefix = 0u64;
        for i in 0..total_jobs as u64 {
            if complete[i as usize] {
                prefix += 1;
                if (i + 1).saturating_sub(cfg.tolerance) <= prefix {
                    best = Some(i);
                }
            }
        }
        m_t = best.or(m_t);
        let o_t = match m_t {
            None => 0,
            Some(m) => (0..=m).filter(|&i| complete[i as usize]).map(|i| bytes[i as usize]).sum(),
        };
        samples.push(OoSample { at: t, m_t, o_t, completed: prefix as usize });
        t += cfg.sample_interval;
    }
    samples
}

/// Dormant-chaos overhead: full (small) engine runs with `faults: None` vs
/// a zero-probability profile armed. A dormant profile compiles to an empty
/// plan, so both configurations must take the same code path; the gated
/// throughput key catches any accidental cost creeping into the hot loop
/// when no faults are scheduled. Returns `(dormant_runs_per_sec,
/// dormant_over_clean_ratio)`.
fn chaos_dormant_probe(reps: usize) -> (f64, f64) {
    let mk = |faults: Option<FaultProfile>| {
        let mut cfg = ExperimentConfig::paper(
            SchedulerKind::OrderPreserving,
            cloudburst_workload::SizeBucket::Uniform,
            7,
        );
        cfg.arrivals.n_batches = 3;
        cfg.arrivals.jobs_per_batch = 8.0;
        cfg.n_ic = 2;
        cfg.training_docs = 150;
        cfg.faults = faults;
        cfg
    };
    let clean = mk(None);
    let dormant = mk(Some(FaultProfile::dormant()));
    run_experiment(&clean); // warm-up
    run_experiment(&dormant);

    let t0 = Instant::now();
    for _ in 0..reps {
        run_experiment(&clean);
    }
    let clean_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        run_experiment(&dormant);
    }
    let dormant_secs = t0.elapsed().as_secs_f64();
    (reps as f64 / dormant_secs, dormant_secs / clean_secs)
}

/// Dormant-econ overhead: the same small engine runs with `econ: None` vs
/// a dormant `EconConfig` section armed (no prices anywhere). A dormant
/// section never builds `EconState`, so both configurations must execute
/// the literally identical code path (the engine byte-identity test pins
/// the semantic half of that claim); this probe pins the wall-clock half.
/// Both sides are timed as the best of `blocks` interleaved blocks of
/// `reps` runs, so the gated ratio survives noisy CI neighbours. Returns
/// `(dormant_runs_per_sec, dormant_over_clean_throughput_ratio)`.
fn econ_dormant_probe(reps: usize, blocks: usize) -> (f64, f64) {
    let mk = |econ: Option<EconConfig>| {
        let mut cfg = ExperimentConfig::paper(
            SchedulerKind::OrderPreserving,
            cloudburst_workload::SizeBucket::Uniform,
            7,
        );
        cfg.arrivals.n_batches = 3;
        cfg.arrivals.jobs_per_batch = 8.0;
        cfg.n_ic = 2;
        cfg.training_docs = 150;
        cfg.econ = econ;
        cfg
    };
    let clean = mk(None);
    let dormant = mk(Some(EconConfig::default()));
    run_experiment(&clean); // warm-up
    run_experiment(&dormant);

    let time_block = |cfg: &ExperimentConfig| {
        let t0 = Instant::now();
        for _ in 0..reps {
            run_experiment(cfg);
        }
        t0.elapsed().as_secs_f64()
    };
    let mut clean_best = f64::INFINITY;
    let mut dormant_best = f64::INFINITY;
    for _ in 0..blocks {
        clean_best = clean_best.min(time_block(&clean));
        dormant_best = dormant_best.min(time_block(&dormant));
    }
    (reps as f64 / dormant_best, clean_best / dormant_best)
}

/// Cost-aware broker decision throughput: one armed world with a priced
/// primary site plus three priced extra sites, timed over repeated
/// `broker_site_choice` calls — the per-burst site pick the econ layer
/// adds to the hot path (a bounded scan over sites, never the queue).
fn econ_broker_probe(n: usize) -> f64 {
    let mut cfg = ExperimentConfig::default();
    let site = |rate_cents: u64| EcSiteConfig {
        n_machines: 2,
        speed: 1.0,
        upload_model: cfg.upload_model.clone(),
        download_model: cfg.download_model.clone(),
        price: Some(PriceModel::OnDemand {
            usd_per_machine_hour: Money::from_cents(rate_cents as i64),
            usd_per_gb_transfer: Money::from_cents(9),
        }),
    };
    cfg.extra_ec_sites = vec![site(240), site(180), site(300)];
    cfg.econ = Some(EconConfig {
        primary_price: Some(PriceModel::flat(Money::from_cents(210))),
        broker: BrokerPolicy::CostAware,
        ..EconConfig::default()
    });
    let h = EngineHarness::new(&cfg, Vec::new());
    let mut sink = 0usize;
    let t0 = Instant::now();
    for i in 0..n {
        sink += h.world().broker_site_choice(SimTime::from_secs((i % 3_600) as u64));
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(sink < n * 8, "broker picked an out-of-range site");
    n as f64 / secs
}

/// Sustained open-system serving vs its closed-batch twin over the
/// draw-identical workload (flat envelope, no bursts): a 24-simulated-hour
/// stream on a stable estate, stepped window by window with closed rows
/// drained as they land. Returns `(sustained_jobs_per_sec,
/// closed_jobs_per_sec, jobs, live_high_water, mem_curve)` where
/// `mem_curve` is the post-warm-up per-window live-bytes high-water marks
/// — the O(live-jobs) memory record `perfgate` holds flat.
fn serve_sustained_probe() -> (f64, f64, u64, u64, Vec<(u64, usize)>) {
    const EPOCHS: u32 = 720; // 24h of 2-minute epochs
    const WINDOWS: u64 = 12; // 2h windows
    const WARMUP: u64 = 3;
    let mut cfg = ExperimentConfig {
        seed: 97,
        scheduler: SchedulerKind::OrderPreserving,
        ..ExperimentConfig::default()
    };
    // Stable service: fast machines + small-biased jobs keep utilization
    // well under 1, so live jobs (and live bytes) plateau.
    cfg.ic_speed = 4.0;
    cfg.arrivals = ArrivalConfig {
        n_batches: EPOCHS,
        jobs_per_batch: 10.0,
        bucket: SizeBucket::SmallBiased,
        batch_interval: SimDuration::from_secs(120),
        ..ArrivalConfig::default()
    };
    let window = SimDuration::from_secs(7_200);
    cfg.serve = Some(ServeConfig {
        arrivals: OpenArrivalConfig::matching_closed(&cfg.arrivals),
        horizon: cfg.arrivals.batch_interval * EPOCHS as u64,
        window: WindowConfig { window, oo_tolerance: 0 },
    });

    // One serve pass: window-stepped with rows drained as they land,
    // recording the per-window live-bytes high-water curve.
    let serve_pass = |cfg: &ExperimentConfig| {
        let mut h = ServeHarness::new(cfg);
        h.run_until(SimTime::ZERO + window * WARMUP);
        h.world_mut().drain_serve_windows();
        let mut curve = Vec::new();
        for k in WARMUP..WINDOWS {
            reset_high_water();
            h.run_until(SimTime::ZERO + window * (k + 1));
            h.world_mut().drain_serve_windows();
            curve.push((k, high_water_bytes()));
        }
        h.run();
        let (report, _world) = h.finish();
        assert_eq!(report.jobs_completed, report.jobs_admitted, "serve stream must drain");
        (report, curve)
    };

    // Closed-batch twin: same draws, whole-run accumulation. Both paths
    // get an untimed warm-up (first-touch pages, lazy init), then the
    // best of three timed runs each — the ratio of two ~tens-of-ms
    // sections would otherwise be at the mercy of scheduler noise.
    const TIMED_RUNS: usize = 3;
    let closed_cfg = {
        let mut c = cfg.clone();
        c.serve = None;
        c
    };
    run_experiment(&closed_cfg); // warm-up
    serve_pass(&cfg); // warm-up
    let mut closed_best = f64::INFINITY;
    let mut closed = run_experiment(&closed_cfg);
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        closed = run_experiment(&closed_cfg);
        closed_best = closed_best.min(t0.elapsed().as_secs_f64());
    }
    let closed_jps = closed.n_jobs as f64 / closed_best;

    let mut serve_best = f64::INFINITY;
    let (mut report, mut curve) = serve_pass(&cfg);
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        (report, curve) = serve_pass(&cfg);
        serve_best = serve_best.min(t0.elapsed().as_secs_f64());
    }
    let sustained_jps = report.jobs_completed as f64 / serve_best;
    assert_eq!(
        report.jobs_admitted as usize, closed.n_jobs,
        "matching_closed stream must admit the closed run's jobs"
    );
    (sustained_jps, closed_jps, report.jobs_completed, report.live_high_water, curve)
}

fn main() {
    let out_path = std::env::args().nth(1);

    // Warm-up keeps first-touch page faults and lazy init out of the numbers.
    kernel_cascade(10_000);
    let cascade_eps = kernel_cascade(200_000);
    let churn_eps = kernel_churn(100, 1_000);

    qrsm_refit_probe(400, 50); // warm-up
    let (refit_batch, refit_rls) = qrsm_refit_probe(400, 2_000);
    let (oo_rescan, oo_stream) = oo_series_probe(2_000, 30);
    let (chaos_dormant_rps, chaos_dormant_ratio) = chaos_dormant_probe(20);
    let (econ_dormant_rps, econ_dormant_over_clean) = econ_dormant_probe(20, 3);
    let econ_broker_dps = econ_broker_probe(2_000_000);
    let (serve_jps, serve_closed_jps, serve_jobs, serve_live_hw, serve_mem_curve) =
        serve_sustained_probe();

    let mut repro = serde_json::Map::new();
    let t_all = Instant::now();
    for id in REPRO_SUBSET {
        let t0 = Instant::now();
        run_experiment_by_id(id).expect("known experiment id");
        repro.insert(format!("repro_{id}_secs"), json!(t0.elapsed().as_secs_f64()));
    }
    let repro_total = t_all.elapsed().as_secs_f64();

    let mut doc = serde_json::Map::new();
    doc.insert("bench".into(), json!("perfsmoke"));
    doc.insert("kernel_cascade_events_per_sec".into(), json!(cascade_eps));
    doc.insert("kernel_churn_events_per_sec".into(), json!(churn_eps));
    doc.insert("qrsm_refit_batch_secs".into(), json!(refit_batch));
    doc.insert("qrsm_refit_rls_secs".into(), json!(refit_rls));
    doc.insert("qrsm_refit_speedup".into(), json!(refit_batch / refit_rls));
    doc.insert("oo_series_rescan_secs".into(), json!(oo_rescan));
    doc.insert("oo_series_streaming_secs".into(), json!(oo_stream));
    doc.insert("oo_series_speedup".into(), json!(oo_rescan / oo_stream));
    doc.insert("chaos_dormant_runs_per_sec".into(), json!(chaos_dormant_rps));
    doc.insert("chaos_dormant_overhead_ratio".into(), json!(chaos_dormant_ratio));
    doc.insert("econ_dormant_runs_per_sec".into(), json!(econ_dormant_rps));
    doc.insert("econ_dormant_over_clean".into(), json!(econ_dormant_over_clean));
    doc.insert("econ_broker_decisions_per_sec".into(), json!(econ_broker_dps));
    doc.insert("serve_sustained_jobs_per_sec".into(), json!(serve_jps));
    doc.insert("serve_closed_jobs_per_sec".into(), json!(serve_closed_jps));
    doc.insert("serve_sustained_over_closed".into(), json!(serve_jps / serve_closed_jps));
    doc.insert("serve_jobs".into(), json!(serve_jobs));
    doc.insert("serve_live_high_water_jobs".into(), json!(serve_live_hw));
    for (k, bytes) in &serve_mem_curve {
        doc.insert(format!("serve_mem_curve_w{k:02}_live_bytes"), json!(bytes));
    }
    doc.insert("repro_subset_secs".into(), json!(repro_total));
    // Host metadata, uniform across every BENCH_*.json record: core count
    // and the shard-worker count unpinned engine runs resolve to (auto =
    // host cores), so numbers stay interpretable across machines.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    doc.insert("threads".into(), json!(host_cores));
    doc.insert("host_cores".into(), json!(host_cores));
    doc.insert("default_shard_workers".into(), json!(host_cores));
    for (k, v) in repro {
        doc.insert(k, v);
    }

    let line = serde_json::to_string(&serde_json::Value::Object(doc)).expect("serialize");
    println!("{line}");
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        writeln!(f, "{line}").expect("write output file");
    }
}

//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <exp-id>...      run the named experiments (see `repro list`)
//! repro all              run everything, in DESIGN.md §4 order
//! repro list             print the experiment ids
//! repro --json <dir> …   additionally write per-experiment JSON summaries
//! repro --svg <dir> …    additionally render the figures as SVG files
//! ```

use std::io::Write as _;

use cloudburst_bench::{all_ids, run_experiment_by_id};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut svg_dir: Option<String> = None;
    for (flag, slot) in [("--json", &mut json_dir), ("--svg", &mut svg_dir)] {
        if let Some(pos) = args.iter().position(|a| a == flag) {
            args.remove(pos);
            if pos < args.len() {
                *slot = Some(args.remove(pos));
            } else {
                eprintln!("{flag} requires a directory argument");
                std::process::exit(2);
            }
        }
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [--json <dir>] <exp-id>... | all | list");
        eprintln!("experiments: {}", all_ids().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "list" {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        all_ids().to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let mut failures = 0;
    for id in ids {
        let Some(out) = run_experiment_by_id(id) else {
            eprintln!("unknown experiment id: {id} (try `repro list`)");
            failures += 1;
            continue;
        };
        println!("================================================================");
        println!("== {id}");
        println!("================================================================");
        println!("{}", out.text);
        let shape_ok = out.summary.get("shape_ok").and_then(|v| v.as_bool());
        match shape_ok {
            Some(true) => println!("[shape-check] {id}: OK"),
            Some(false) => {
                println!("[shape-check] {id}: MISMATCH — see summary: {}", out.summary);
                failures += 1;
            }
            None => {}
        }
        println!();
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            writeln!(f, "{}", serde_json::to_string_pretty(&out.summary).expect("serialize"))
                .expect("write json");
        }
        if let Some(dir) = &svg_dir {
            std::fs::create_dir_all(dir).expect("create svg dir");
            for (stem, svg) in &out.charts {
                let path = format!("{dir}/{stem}.svg");
                std::fs::write(&path, svg).expect("write svg");
                println!("[figure] {path}");
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed their shape check");
        std::process::exit(1);
    }
}

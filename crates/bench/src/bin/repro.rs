//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <exp-id>...      run the named experiments (see `repro list`)
//! repro all              run everything, in DESIGN.md §4 order
//! repro list             print the experiment ids
//! repro --json <dir> …   additionally write per-experiment JSON summaries
//! repro --svg <dir> …    additionally render the figures as SVG files
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use cloudburst_bench::{all_ids, run_experiment_by_id, ExpOutput};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut svg_dir: Option<String> = None;
    for (flag, slot) in [("--json", &mut json_dir), ("--svg", &mut svg_dir)] {
        if let Some(pos) = args.iter().position(|a| a == flag) {
            args.remove(pos);
            if pos < args.len() {
                *slot = Some(args.remove(pos));
            } else {
                eprintln!("{flag} requires a directory argument");
                std::process::exit(2);
            }
        }
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [--json <dir>] <exp-id>... | all | list");
        eprintln!("experiments: {}", all_ids().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "list" {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        all_ids().to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    // Experiments run on a worker pool (each id's output is buffered), but
    // everything is printed and written strictly in id order as results
    // stream in — byte-identical to a serial run.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(ids.len()).max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Option<ExpOutput>)>();
    let ids_ref = &ids;
    let mut failures = 0;
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(id) = ids_ref.get(i) else { break };
                if tx.send((i, run_experiment_by_id(id))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut buffered: BTreeMap<usize, Option<ExpOutput>> = BTreeMap::new();
        let mut emit_next = 0usize;
        for (i, out) in rx.iter() {
            buffered.insert(i, out);
            while let Some(out) = buffered.remove(&emit_next) {
                emit(ids_ref[emit_next], out, &json_dir, &svg_dir, &mut failures);
                emit_next += 1;
            }
        }
    })
    .expect("experiment worker panicked");
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed their shape check");
        std::process::exit(1);
    }
}

/// Prints one experiment's buffered output and writes its JSON/SVG
/// artifacts. Always called in id order from the main thread.
fn emit(
    id: &str,
    out: Option<ExpOutput>,
    json_dir: &Option<String>,
    svg_dir: &Option<String>,
    failures: &mut u32,
) {
    let Some(out) = out else {
        eprintln!("unknown experiment id: {id} (try `repro list`)");
        *failures += 1;
        return;
    };
    println!("================================================================");
    println!("== {id}");
    println!("================================================================");
    println!("{}", out.text);
    let shape_ok = out.summary.get("shape_ok").and_then(|v| v.as_bool());
    match shape_ok {
        Some(true) => println!("[shape-check] {id}: OK"),
        Some(false) => {
            println!("[shape-check] {id}: MISMATCH — see summary: {}", out.summary);
            *failures += 1;
        }
        None => {}
    }
    println!();
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{id}.json");
        let mut f = std::fs::File::create(&path).expect("create json file");
        writeln!(f, "{}", serde_json::to_string_pretty(&out.summary).expect("serialize"))
            .expect("write json");
    }
    if let Some(dir) = svg_dir {
        std::fs::create_dir_all(dir).expect("create svg dir");
        for (stem, svg) in &out.charts {
            let path = format!("{dir}/{stem}.svg");
            std::fs::write(&path, svg).expect("write svg");
            println!("[figure] {path}");
        }
    }
}

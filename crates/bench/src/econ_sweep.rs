//! `cloudburst econ-sweep` — the price-regime × scheduler net-cost grid.
//!
//! Runs every bursting scheduler under each built-in price/penalty regime
//! and renders one aggregate table ranking them by mean net dollars. The
//! table is a pure function of (base config, seed list): every dollar
//! figure is integer [`Money`] end-to-end and the only floats printed are
//! makespans at fixed precision, so reruns are byte-identical — the same
//! determinism contract the run reports themselves carry.

use cloudburst_chaos::CrashLaw;
use cloudburst_core::{run_replications, ExperimentConfig, SchedulerKind};
use cloudburst_econ::{
    AdmissionPolicy, BrokerPolicy, EconConfig, Money, PenaltySchedule, PriceModel,
};
use cloudburst_sla::RunReport;

/// The schedulers the sweep ranks (the bursting trio; IC-only never
/// spends a dollar, which makes its "ranking" vacuous).
pub const SWEEP_SCHEDULERS: [SchedulerKind; 3] =
    [SchedulerKind::Greedy, SchedulerKind::OrderPreserving, SchedulerKind::Sibs];

/// The built-in price/penalty regimes, in presentation order.
///
/// All three share one lateness penalty (60 ¢ per hour late, uncapped) so
/// the compute-billing discipline is the only axis that moves between
/// regimes: metered on-demand, whole-hour rental, and a revocable spot
/// market whose price trace doubles mid-day.
pub fn price_regimes() -> Vec<(&'static str, EconConfig)> {
    let penalty = PenaltySchedule::PerHourLate { usd_per_hour: Money::from_cents(60) };
    let regime = |primary_price| EconConfig {
        primary_price: Some(primary_price),
        penalty,
        admission: AdmissionPolicy::AdmitAll,
        broker: BrokerPolicy::CostAware,
    };
    vec![
        (
            "on-demand",
            regime(PriceModel::OnDemand {
                usd_per_machine_hour: Money::from_cents(240),
                usd_per_gb_transfer: Money::from_cents(9),
            }),
        ),
        (
            "hourly-rental",
            regime(PriceModel::HourlyRental {
                usd_per_machine_hour: Money::from_cents(180),
                usd_per_gb_transfer: Money::from_cents(9),
            }),
        ),
        (
            "spot-revocable",
            regime(PriceModel::Spot {
                base_usd_per_machine_hour: Money::from_cents(120),
                usd_per_gb_transfer: Money::from_cents(9),
                multipliers: vec![(0.0, 700), (14_400.0, 1_500), (28_800.0, 1_000)],
                period_secs: 43_200.0,
                revocation: Some(CrashLaw {
                    mean_uptime_secs: 7_200.0,
                    mean_downtime_secs: 300.0,
                    max_faults_per_machine: 1,
                }),
            }),
        ),
    ]
}

/// One aggregated cell of the grid: a scheduler's mean economics over the
/// seed list under one regime.
struct SweepRow {
    scheduler: &'static str,
    net: Money,
    compute: Money,
    transfer: Money,
    penalty: Money,
    late: u64,
    revocations: u64,
    makespan_secs: f64,
}

/// Integer mean of a dollar total over `n` seeds (micro-dollar floor —
/// deterministic, unlike a float mean).
fn mean_money(total: Money, n: usize) -> Money {
    Money::from_micros(total.micros() / n as i64)
}

fn aggregate(scheduler: SchedulerKind, reports: &[RunReport]) -> SweepRow {
    let mut row = SweepRow {
        scheduler: scheduler.label(),
        net: Money::ZERO,
        compute: Money::ZERO,
        transfer: Money::ZERO,
        penalty: Money::ZERO,
        late: 0,
        revocations: 0,
        makespan_secs: 0.0,
    };
    for r in reports {
        if let Some(m) = &r.econ {
            row.net += m.net_cost();
            row.compute += m.compute;
            row.transfer += m.transfer;
            row.penalty += m.penalty;
            row.late += m.late_completions + m.commitment_violations;
            row.revocations += m.spot_revocations;
        }
        row.makespan_secs += r.makespan_secs;
    }
    let n = reports.len().max(1);
    row.net = mean_money(row.net, n);
    row.compute = mean_money(row.compute, n);
    row.transfer = mean_money(row.transfer, n);
    row.penalty = mean_money(row.penalty, n);
    row.makespan_secs /= n as f64;
    row
}

/// Runs the full regime × scheduler grid over `seeds` and renders the
/// aggregate table. Byte-identical across reruns of the same inputs.
pub fn econ_sweep_table(base: &ExperimentConfig, seeds: &[u64]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "econ-sweep: {} regimes x {} schedulers, {} seed(s) {:?}, bucket {:?}\n",
        price_regimes().len(),
        SWEEP_SCHEDULERS.len(),
        seeds.len(),
        seeds,
        base.arrivals.bucket,
    ));
    out.push_str(
        "regime          rank  scheduler   net$/run      compute$      transfer$     penalty$      late  revoked  makespan\n",
    );
    for (name, econ) in price_regimes() {
        let mut rows: Vec<SweepRow> = SWEEP_SCHEDULERS
            .iter()
            .map(|&scheduler| {
                let mut cfg = base.clone();
                cfg.scheduler = scheduler;
                cfg.econ = Some(econ.clone());
                aggregate(scheduler, &run_replications(&cfg, seeds))
            })
            .collect();
        rows.sort_by(|a, b| (a.net, a.scheduler).cmp(&(b.net, b.scheduler)));
        for (rank, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "{:<15} {:>4}  {:<10} {:>13} {:>13} {:>13} {:>13} {:>5} {:>8}  {:>7.0}s\n",
                name,
                rank + 1,
                row.scheduler,
                row.net.to_string(),
                row.compute.to_string(),
                row.transfer.to_string(),
                row.penalty.to_string(),
                row.late,
                row.revocations,
                row.makespan_secs,
            ));
        }
        let ranking: Vec<&str> = rows.iter().map(|r| r.scheduler).collect();
        out.push_str(&format!("{name} ranking (cheapest first): {}\n", ranking.join(" < ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_workload::{ArrivalConfig, SizeBucket};

    fn tiny_base() -> ExperimentConfig {
        ExperimentConfig {
            arrivals: ArrivalConfig {
                n_batches: 2,
                jobs_per_batch: 8.0,
                bucket: SizeBucket::SmallBiased,
                ..ArrivalConfig::default()
            },
            n_ic: 1,
            training_docs: 150,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn sweep_table_is_byte_identical_and_covers_the_grid() {
        let base = tiny_base();
        let table = econ_sweep_table(&base, &[41]);
        assert_eq!(table, econ_sweep_table(&base, &[41]), "rerun changed the table");
        for (name, _) in price_regimes() {
            assert!(table.contains(name), "regime {name} missing from table:\n{table}");
        }
        for scheduler in SWEEP_SCHEDULERS {
            assert!(table.contains(scheduler.label()), "{} missing:\n{table}", scheduler.label());
        }
        // Every regime prices compute and this workload bursts under all
        // three schedulers, so no grid cell should come out free.
        let names: Vec<&str> = price_regimes().iter().map(|(n, _)| *n).collect();
        for line in table.lines().filter(|l| names.iter().any(|n| l.starts_with(n))) {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.get(1).is_some_and(|f| f.parse::<u32>().is_ok()) {
                assert_ne!(fields[3], "$0.000000", "free net cost in row: {line}");
                assert_ne!(fields[4], "$0.000000", "free compute in row: {line}");
            }
        }
    }

    #[test]
    fn regimes_cover_at_least_two_billing_disciplines() {
        let regimes = price_regimes();
        assert!(regimes.len() >= 2);
        let spot = regimes.iter().any(|(_, e)| {
            matches!(e.primary_price, Some(PriceModel::Spot { .. }))
        });
        let metered = regimes.iter().any(|(_, e)| {
            matches!(e.primary_price, Some(PriceModel::OnDemand { .. }))
        });
        assert!(spot && metered, "regime set lost its billing diversity");
    }
}

//! The real-time [`Clock`] implementation for live-pipeline demos.
//!
//! `cloudburst-core` is a deterministic crate and must not read the wall
//! clock (conform rule `determinism/wall-clock`), so its live pipeline
//! takes the time source from the caller. This is that source: bin-side
//! code (the bench harness, examples) hands a [`WallClock`] to
//! `cloudburst_core::live::run_live` when it wants real pacing.

use std::time::{Duration, Instant};

use cloudburst_core::live::Clock;

/// Monotonic wall-clock time with a real blocking sleep.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    #[allow(clippy::disallowed_methods)] // the one sanctioned wall-clock read for live pacing
    pub fn start() -> WallClock {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

//! Minimal, dependency-free SVG chart rendering for the repro harness —
//! the figures of the paper as actual figures.
//!
//! Only what the experiments need: multi-series line/step charts with
//! axes, ticks and a legend. Output is deliberately plain (black axes,
//! per-series strokes) and deterministic, so regenerated figures diff
//! cleanly in version control.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { label: label.into(), points }
    }
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

/// Stroke colors cycled across series (colorblind-safe-ish defaults).
const STROKES: [&str; 5] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

impl Chart {
    /// A chart with default canvas size.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
            width: 720,
            height: 420,
        }
    }

    /// Renders the chart to an SVG document string.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let plot_w = (w - MARGIN_L - MARGIN_R).max(1.0);
        let plot_h = (h - MARGIN_T - MARGIN_B).max(1.0);

        // Data bounds (include y = 0 so magnitudes read honestly).
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min: f64 = 0.0;
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() {
            x_min = 0.0;
            x_max = 1.0;
        }
        if !y_max.is_finite() {
            y_max = 1.0;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let sx = move |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut svg = String::new();
        writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#
        )
        .expect("fmt write to String cannot fail");
        writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#).expect("fmt write to String cannot fail");
        // Title and axis labels.
        writeln!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            w / 2.0,
            escape(&self.title)
        )
        .expect("fmt write to String cannot fail");
        writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            h - 10.0,
            escape(&self.x_label)
        )
        .expect("fmt write to String cannot fail");
        writeln!(
            svg,
            r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        )
        .expect("fmt write to String cannot fail");
        // Axes.
        writeln!(
            svg,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_L,
            MARGIN_T,
            MARGIN_L,
            MARGIN_T + plot_h
        )
        .expect("fmt write to String cannot fail");
        writeln!(
            svg,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_L,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        )
        .expect("fmt write to String cannot fail");
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
            let fy = y_min + (y_max - y_min) * i as f64 / 4.0;
            writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="10">{}</text>"#,
                sx(fx),
                MARGIN_T + plot_h + 16.0,
                tick(fx)
            )
            .expect("fmt write to String cannot fail");
            writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="10">{}</text>"#,
                MARGIN_L - 6.0,
                sy(fy) + 4.0,
                tick(fy)
            )
            .expect("fmt write to String cannot fail");
            writeln!(
                svg,
                r##"<line x1="{}" y1="{:.1}" x2="{}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_L,
                sy(fy),
                MARGIN_L + plot_w,
                sy(fy)
            )
            .expect("fmt write to String cannot fail");
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let stroke = STROKES[i % STROKES.len()];
            let pts: Vec<String> =
                s.points.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
            if pts.len() > 1 {
                writeln!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="1.5"/>"#,
                    pts.join(" ")
                )
                .expect("fmt write to String cannot fail");
            } else if pts.len() == 1 {
                let &(x, y) = &s.points[0];
                writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{stroke}"/>"#,
                    sx(x),
                    sy(y)
                )
                .expect("fmt write to String cannot fail");
            }
            // Legend entry.
            let ly = MARGIN_T + 6.0 + i as f64 * 16.0;
            writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{stroke}" stroke-width="2"/>"#,
                MARGIN_L + plot_w - 110.0,
                MARGIN_L + plot_w - 90.0,
            )
            .expect("fmt write to String cannot fail");
            writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
                MARGIN_L + plot_w - 84.0,
                ly + 4.0,
                escape(&s.label)
            )
            .expect("fmt write to String cannot fail");
        }
        writeln!(svg, "</svg>").expect("fmt write to String cannot fail");
        svg
    }
}

fn tick(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart::new(
            "Makespan",
            "batch",
            "seconds",
            vec![
                Series::new("greedy", vec![(0.0, 100.0), (1.0, 250.0), (2.0, 180.0)]),
                Series::new("op", vec![(0.0, 120.0), (1.0, 200.0), (2.0, 160.0)]),
            ],
        )
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("greedy"));
        assert!(svg.contains("op"));
        assert!(svg.contains("Makespan"));
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(chart().to_svg(), chart().to_svg());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let c = Chart::new("a<b & c>", "x", "y", vec![Series::new("s<1>", vec![(0.0, 1.0)])]);
        let svg = c.to_svg();
        assert!(svg.contains("a&lt;b &amp; c&gt;"));
        assert!(!svg.contains("s<1>"));
    }

    #[test]
    fn handles_degenerate_inputs() {
        // Empty chart and single-point series must not panic or divide by 0.
        let empty = Chart::new("t", "x", "y", vec![]);
        assert!(empty.to_svg().contains("</svg>"));
        let point = Chart::new("t", "x", "y", vec![Series::new("p", vec![(5.0, 5.0)])]);
        assert!(point.to_svg().contains("<circle"));
        let flat = Chart::new(
            "t",
            "x",
            "y",
            vec![Series::new("f", vec![(0.0, 3.0), (1.0, 3.0)])],
        );
        assert!(flat.to_svg().contains("<polyline"));
    }
}

//! `cloudburst-bench` — the experiment harness.
//!
//! One function per table/figure of the paper (plus the ablations and
//! extensions listed in DESIGN.md §4), each returning an [`ExpOutput`] with
//! the rendered rows/series and a machine-readable JSON summary. The
//! `repro` binary dispatches on experiment id:
//!
//! ```text
//! cargo run --release -p cloudburst-bench --bin repro -- fig6
//! cargo run --release -p cloudburst-bench --bin repro -- all
//! ```
//!
//! Criterion micro-benchmarks for the hot components live in `benches/`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod clock;
pub mod econ_sweep;
pub mod experiments;
pub mod svg;

pub use clock::WallClock;
pub use econ_sweep::{econ_sweep_table, price_regimes};
pub use experiments::{all_ids, run_experiment_by_id, ExpOutput};
pub use svg::{Chart, Series};
